#include "bo/additive_gp.hpp"

#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>

#include "bo/nelder_mead.hpp"
#include "common/log.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vecops.hpp"

namespace tunekit::bo {

double AdditiveGp::Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

AdditiveGp::AdditiveGp(std::vector<std::vector<std::size_t>> groups, KernelKind kind)
    : groups_(std::move(groups)), kind_(kind) {
  if (groups_.empty()) throw std::invalid_argument("AdditiveGp: no groups");
  std::set<std::size_t> seen;
  for (const auto& g : groups_) {
    if (g.empty()) throw std::invalid_argument("AdditiveGp: empty group");
    for (std::size_t idx : g) {
      if (!seen.insert(idx).second) {
        throw std::invalid_argument("AdditiveGp: groups must be disjoint");
      }
      dim_ = std::max(dim_, idx + 1);
    }
  }
  signal_.assign(groups_.size(), 1.0 / static_cast<double>(groups_.size()));
  lengthscale_.assign(groups_.size(), 0.3);
}

double AdditiveGp::group_kernel(std::size_t g, const std::vector<double>& a,
                                const std::vector<double>& b) const {
  double r2 = 0.0;
  for (std::size_t idx : groups_[g]) {
    const double d = (a[idx] - b[idx]) / lengthscale_[g];
    r2 += d * d;
  }
  switch (kind_) {
    case KernelKind::RBF: return signal_[g] * std::exp(-0.5 * r2);
    case KernelKind::Matern32: {
      const double r = std::sqrt(3.0 * r2);
      return signal_[g] * (1.0 + r) * std::exp(-r);
    }
    case KernelKind::Matern52: {
      const double r = std::sqrt(5.0 * r2);
      return signal_[g] * (1.0 + r + r * r / 3.0) * std::exp(-r);
    }
  }
  return 0.0;
}

void AdditiveGp::refit() {
  const std::size_t n = x_.rows();
  double mean = 0.0;
  for (double v : y_raw_) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y_raw_) var += (v - mean) * (v - mean);
  var = n > 1 ? var / static_cast<double>(n - 1) : 1.0;
  y_shift_ = mean;
  y_scale_ = var > 1e-300 ? std::sqrt(var) : 1.0;

  std::vector<double> y_std(n);
  for (std::size_t i = 0; i < n; ++i) y_std[i] = (y_raw_[i] - y_shift_) / y_scale_;

  linalg::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = x_.row(i);
    for (std::size_t j = i; j < n; ++j) {
      const auto xj = x_.row(j);
      double k = 0.0;
      for (std::size_t g = 0; g < groups_.size(); ++g) k += group_kernel(g, xi, xj);
      if (i == j) k += noise_;
      gram(i, j) = k;
      gram(j, i) = k;
    }
  }
  chol_ = linalg::cholesky(gram);
  alpha_ = linalg::solve_with_cholesky(chol_, y_std);
  const double quad = linalg::dot(y_std, alpha_);
  lml_ = -0.5 * quad - 0.5 * linalg::log_det_from_cholesky(chol_) -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  fitted_ = true;
}

void AdditiveGp::fit(linalg::Matrix x, std::vector<double> y) {
  if (x.rows() != y.size() || x.rows() == 0 || x.cols() < dim_) {
    throw std::invalid_argument("AdditiveGp::fit: bad training data");
  }
  x_ = std::move(x);
  y_raw_ = std::move(y);
  refit();
}

void AdditiveGp::fit_with_hyperopt(linalg::Matrix x, std::vector<double> y,
                                   tunekit::Rng& rng, std::size_t n_restarts,
                                   std::size_t max_iters) {
  if (x.rows() != y.size() || x.rows() == 0 || x.cols() < dim_) {
    throw std::invalid_argument("AdditiveGp::fit_with_hyperopt: bad data");
  }
  x_ = std::move(x);
  y_raw_ = std::move(y);
  const std::size_t g_count = groups_.size();

  // theta = [log sv_0.., log ls_0.., log noise]
  auto apply = [&](const std::vector<double>& theta) {
    for (std::size_t g = 0; g < g_count; ++g) {
      signal_[g] = std::exp(theta[g]);
      lengthscale_[g] = std::exp(theta[g_count + g]);
    }
    noise_ = std::exp(theta[2 * g_count]);
  };
  auto neg_lml = [&](const std::vector<double>& theta) {
    const auto sv = signal_;
    const auto ls = lengthscale_;
    const double nv = noise_;
    apply(theta);
    double value;
    try {
      refit();
      value = -lml_;
    } catch (const std::exception&) {
      value = 1e12;
    }
    signal_ = sv;
    lengthscale_ = ls;
    noise_ = nv;
    return value;
  };

  NelderMeadOptions nm;
  nm.max_iters = max_iters;
  nm.initial_step = 0.5;
  nm.lower.assign(2 * g_count + 1, std::log(1e-4));
  nm.upper.assign(2 * g_count + 1, std::log(1e2));
  nm.lower[2 * g_count] = std::log(1e-8);
  nm.upper[2 * g_count] = std::log(1.0);

  std::vector<double> best_theta;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, n_restarts);
       ++restart) {
    std::vector<double> theta0(2 * g_count + 1);
    for (std::size_t g = 0; g < g_count; ++g) {
      theta0[g] = restart == 0 ? std::log(signal_[g]) : rng.uniform(-2.0, 1.0);
      theta0[g_count + g] =
          restart == 0 ? std::log(lengthscale_[g]) : rng.uniform(-2.5, 0.5);
    }
    theta0[2 * g_count] = restart == 0 ? std::log(std::max(noise_, 1e-8))
                                       : rng.uniform(std::log(1e-6), std::log(1e-2));
    const auto res = nelder_mead(neg_lml, std::move(theta0), nm);
    if (res.value < best) {
      best = res.value;
      best_theta = res.x;
    }
  }
  if (!best_theta.empty() && best < 1e12) {
    apply(best_theta);
  } else {
    log_warn("AdditiveGp: hyperopt failed; keeping previous hyperparameters");
  }
  refit();
}

AdditiveGp::Prediction AdditiveGp::predict(const std::vector<double>& point) const {
  if (!fitted_) throw std::runtime_error("AdditiveGp::predict before fit");
  if (point.size() < dim_) {
    throw std::invalid_argument("AdditiveGp::predict: dimension mismatch");
  }
  const std::size_t n = x_.rows();
  std::vector<double> k(n);
  double k_self = noise_;
  for (std::size_t g = 0; g < groups_.size(); ++g) k_self += signal_[g];
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = x_.row(i);
    double acc = 0.0;
    for (std::size_t g = 0; g < groups_.size(); ++g) acc += group_kernel(g, xi, point);
    k[i] = acc;
  }
  const double mean_std = linalg::dot(k, alpha_);
  const auto v = linalg::solve_lower(chol_, k);
  const double var_std = std::max(0.0, k_self - linalg::dot(v, v));

  Prediction p;
  p.mean = y_shift_ + y_scale_ * mean_std;
  p.variance = y_scale_ * y_scale_ * var_std;
  return p;
}

AdditiveGp::Prediction AdditiveGp::predict_group(std::size_t g,
                                                 const std::vector<double>& point) const {
  if (!fitted_) throw std::runtime_error("AdditiveGp::predict_group before fit");
  if (g >= groups_.size()) throw std::out_of_range("AdditiveGp::predict_group");
  const std::size_t n = x_.rows();
  std::vector<double> kg(n);
  for (std::size_t i = 0; i < n; ++i) kg[i] = group_kernel(g, x_.row(i), point);
  const double mean_std = linalg::dot(kg, alpha_);
  const auto v = linalg::solve_lower(chol_, kg);
  const double var_std = std::max(0.0, signal_[g] - linalg::dot(v, v));

  Prediction p;
  p.mean = y_scale_ * mean_std;  // contribution: no shift (it is shared)
  p.variance = y_scale_ * y_scale_ * var_std;
  return p;
}

}  // namespace tunekit::bo
