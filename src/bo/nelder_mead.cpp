#include "bo/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tunekit::bo {

namespace {
void clamp_to_bounds(std::vector<double>& x, const NelderMeadOptions& opt) {
  if (!opt.lower.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], opt.lower[i]);
  }
  if (!opt.upper.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], opt.upper[i]);
  }
}
}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options) {
  const std::size_t d = x0.size();
  if (d == 0) throw std::invalid_argument("nelder_mead: empty start point");
  if (!options.lower.empty() && options.lower.size() != d) {
    throw std::invalid_argument("nelder_mead: lower bound arity mismatch");
  }
  if (!options.upper.empty() && options.upper.size() != d) {
    throw std::invalid_argument("nelder_mead: upper bound arity mismatch");
  }

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  NelderMeadResult result;
  clamp_to_bounds(x0, options);

  std::vector<std::vector<double>> simplex(d + 1, x0);
  for (std::size_t i = 0; i < d; ++i) {
    simplex[i + 1][i] += options.initial_step;
    clamp_to_bounds(simplex[i + 1], options);
    // If clamping collapsed the vertex onto x0, step the other way.
    if (simplex[i + 1][i] == x0[i]) {
      simplex[i + 1][i] -= options.initial_step;
      clamp_to_bounds(simplex[i + 1], options);
    }
  }

  std::vector<double> values(d + 1);
  for (std::size_t i = 0; i <= d; ++i) {
    values[i] = f(simplex[i]);
    ++result.evaluations;
  }

  std::vector<std::size_t> order(d + 1);
  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    ++result.iterations;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[d > 0 ? d - 1 : 0];

    const bool f_converged = std::abs(values[worst] - values[best]) <= options.f_tol;
    if (f_converged) {
      double diameter = 0.0;
      for (std::size_t i = 0; i <= d; ++i) {
        for (std::size_t k = 0; k < d; ++k) {
          diameter = std::max(diameter, std::abs(simplex[i][k] - simplex[best][k]));
        }
      }
      if (diameter <= options.x_tol) break;
      // Equal values over a non-degenerate simplex (e.g. a symmetric
      // objective): shrink toward the best vertex and keep going.
      for (std::size_t i = 0; i <= d; ++i) {
        if (i == best) continue;
        for (std::size_t k = 0; k < d; ++k) {
          simplex[i][k] = simplex[best][k] + kShrink * (simplex[i][k] - simplex[best][k]);
        }
        clamp_to_bounds(simplex[i], options);
        values[i] = f(simplex[i]);
        ++result.evaluations;
      }
      continue;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t i = 0; i <= d; ++i) {
      if (i == worst) continue;
      for (std::size_t k = 0; k < d; ++k) centroid[k] += simplex[i][k];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    auto blend = [&](double coef) {
      std::vector<double> x(d);
      for (std::size_t k = 0; k < d; ++k) {
        x[k] = centroid[k] + coef * (centroid[k] - simplex[worst][k]);
      }
      clamp_to_bounds(x, options);
      return x;
    };

    std::vector<double> reflected = blend(kReflect);
    const double fr = f(reflected);
    ++result.evaluations;

    if (fr < values[best]) {
      std::vector<double> expanded = blend(kExpand);
      const double fe = f(expanded);
      ++result.evaluations;
      if (fe < fr) {
        simplex[worst] = std::move(expanded);
        values[worst] = fe;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = fr;
    } else {
      std::vector<double> contracted = blend(-kContract);
      const double fc = f(contracted);
      ++result.evaluations;
      if (fc < values[worst]) {
        simplex[worst] = std::move(contracted);
        values[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= d; ++i) {
          if (i == best) continue;
          for (std::size_t k = 0; k < d; ++k) {
            simplex[i][k] =
                simplex[best][k] + kShrink * (simplex[i][k] - simplex[best][k]);
          }
          clamp_to_bounds(simplex[i], options);
          values[i] = f(simplex[i]);
          ++result.evaluations;
        }
      }
    }
  }

  const auto best_it = std::min_element(values.begin(), values.end());
  const auto best_idx = static_cast<std::size_t>(best_it - values.begin());
  result.x = simplex[best_idx];
  result.value = values[best_idx];
  return result;
}

}  // namespace tunekit::bo
