#include "bo/kernels.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vecops.hpp"

namespace tunekit::bo {

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::RBF: return "rbf";
    case KernelKind::Matern32: return "matern32";
    case KernelKind::Matern52: return "matern52";
  }
  return "?";
}

GpHyperparams GpHyperparams::isotropic(std::size_t dim, double lengthscale,
                                       double signal_variance, double noise_variance) {
  GpHyperparams hp;
  hp.signal_variance = signal_variance;
  hp.lengthscales.assign(dim, lengthscale);
  hp.noise_variance = noise_variance;
  return hp;
}

double kernel_value(KernelKind kind, const std::vector<double>& a,
                    const std::vector<double>& b, const GpHyperparams& hp) {
  if (hp.lengthscales.size() != a.size()) {
    throw std::invalid_argument("kernel_value: lengthscale arity mismatch");
  }
  const double r2 = linalg::scaled_squared_distance(a, b, hp.lengthscales);
  switch (kind) {
    case KernelKind::RBF:
      return hp.signal_variance * std::exp(-0.5 * r2);
    case KernelKind::Matern32: {
      const double r = std::sqrt(3.0 * r2);
      return hp.signal_variance * (1.0 + r) * std::exp(-r);
    }
    case KernelKind::Matern52: {
      const double r = std::sqrt(5.0 * r2);
      return hp.signal_variance * (1.0 + r + r * r / 3.0) * std::exp(-r);
    }
  }
  return 0.0;
}

linalg::Matrix kernel_gram(KernelKind kind, const linalg::Matrix& x,
                           const GpHyperparams& hp) {
  const std::size_t n = x.rows();
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = x.row(i);
    k(i, i) = hp.signal_variance + hp.noise_variance;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = kernel_value(kind, xi, x.row(j), hp);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

std::vector<double> kernel_cross(KernelKind kind, const linalg::Matrix& x,
                                 const std::vector<double>& point,
                                 const GpHyperparams& hp) {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = kernel_value(kind, x.row(i), point, hp);
  }
  return out;
}

}  // namespace tunekit::bo
