#pragma once
// Random EMbedding Bayesian Optimization (Wang et al., IJCAI'13) — the
// "embedded strategy" of the paper's related work: optimize a random
// low-dimensional linear subspace y ∈ [-√d, √d]^d, project x = A·y back to
// the full space (clipped to the box), and evaluate there. Projection
// distortions near the box boundary are the weakness the paper cites.

#include "bo/acquisition.hpp"
#include "linalg/matrix.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::bo {

struct RemboOptions {
  std::size_t max_evals = 100;
  std::size_t n_init = 5;
  /// Embedding dimensionality d << D.
  std::size_t embedding_dims = 5;

  KernelKind kernel = KernelKind::Matern52;
  AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;
  AcquisitionParams acq_params;
  AcquisitionMaximizerOptions maximizer;
  std::size_t hyperopt_every = 5;
  std::size_t hyperopt_restarts = 1;
  std::size_t hyperopt_max_iters = 60;
  std::uint64_t seed = 1;
};

class Rembo {
 public:
  explicit Rembo(RemboOptions options = {}) : options_(options) {}

  search::SearchResult run(search::Objective& objective,
                           const search::SearchSpace& space) const;

  /// The projection used internally, exposed for tests: y in the embedded
  /// box maps to a unit-cube point (clipped).
  static std::vector<double> project(const linalg::Matrix& embedding,
                                     const std::vector<double>& y);

 private:
  RemboOptions options_;
};

}  // namespace tunekit::bo
