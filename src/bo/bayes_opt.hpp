#pragma once
// The Bayesian-optimization search driver (the GPTune stand-in).
//
// Loop: LHS initial design (5 random configurations, as the paper uses) ->
// fit GP (periodic hyperparameter optimization) -> maximize acquisition
// under the space's validity constraints -> evaluate -> repeat until the
// evaluation budget (the paper's criterion: 10 x num_parameters) is spent.
//
// Features carried over from GPTune because the paper depends on them:
//  * hard search-space constraints (candidates are filtered for validity),
//  * crash recovery (JSON checkpoints via EvalDb; run() resumes from them),
//  * transfer learning (TransferPrior as GP prior mean).

#include <optional>
#include <string>

#include "bo/acquisition.hpp"
#include "bo/transfer.hpp"
#include "search/eval_db.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::bo {

enum class InitialDesign { LatinHypercube, Sobol, UniformRandom };

struct BoOptions {
  /// Total evaluation budget (including the initial design).
  std::size_t max_evals = 100;
  /// Initial random configurations (paper: 5).
  std::size_t n_init = 5;
  /// Space-filling design used for the initial configurations.
  InitialDesign init_design = InitialDesign::LatinHypercube;

  KernelKind kernel = KernelKind::Matern52;
  AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;
  AcquisitionParams acq_params;
  AcquisitionMaximizerOptions maximizer;

  /// Re-optimize GP hyperparameters every this many BO iterations (1 =
  /// every iteration). Between re-optimizations the GP refits with the
  /// current hyperparameters only.
  std::size_t hyperopt_every = 5;
  std::size_t hyperopt_restarts = 2;
  /// Nelder-Mead iteration cap per hyperparameter optimization.
  std::size_t hyperopt_max_iters = 120;

  std::uint64_t seed = 1;

  /// Duplicate proposals (common in small discrete spaces) are replaced by
  /// random valid configs after this many repeats of an already-evaluated
  /// configuration.
  std::size_t duplicate_retries = 3;

  /// Checkpointing: empty path disables. When `resume` is true and the file
  /// exists, previous evaluations are loaded and the budget continues from
  /// there.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 10;
  bool resume = false;

  /// Optional transfer-learning prior fitted on a source task.
  std::optional<TransferPrior> transfer;

  /// Warm-start configurations evaluated before the random initial design
  /// (e.g. the source task's best configurations) — the second half of the
  /// transfer-learning mechanism. Invalid or duplicate entries are skipped;
  /// they count toward n_init and the total budget.
  std::vector<search::Config> warm_start;

  /// Evaluations whose objective exceeds this are recorded but reported to
  /// the GP clamped at the value (simulates the paper's 15-minute timeout
  /// during Case Study 2's search). infinity = disabled.
  double timeout_value = std::numeric_limits<double>::infinity();

  /// Objective exceptions (application crashes) are caught and recorded as
  /// failed evaluations. A finite failure_penalty feeds that value to the
  /// surrogate, steering it away from the crashing region; the default NaN
  /// excludes failed points from the surrogate entirely. Failures count
  /// toward the budget, so a crash-looping application still terminates.
  double failure_penalty = std::numeric_limits<double>::quiet_NaN();

  /// Spans ("bo.iteration" → "eval"), evaluation counters, and GP-fit /
  /// acquisition-argmax timing histograms (null = disabled, the default).
  obs::Telemetry* telemetry = nullptr;
};

class BayesOpt {
 public:
  explicit BayesOpt(BoOptions options = {}) : options_(std::move(options)) {}

  const BoOptions& options() const { return options_; }

  /// Run the search. The returned SearchResult's trajectory includes any
  /// checkpoint-restored evaluations first.
  search::SearchResult run(search::Objective& objective,
                           const search::SearchSpace& space) const;

  /// As run(), but also exposes the evaluation database (for transfer
  /// learning into a later task).
  search::SearchResult run(search::Objective& objective, const search::SearchSpace& space,
                           search::EvalDb& db) const;

  /// Suggest `k` configurations to evaluate in parallel, without evaluating
  /// anything (constant-liar batching): each accepted suggestion is added to
  /// the surrogate as a pseudo-observation at the incumbent best value, so
  /// later suggestions explore elsewhere. Requires a non-empty database.
  std::vector<search::Config> suggest_batch(const search::EvalDb& db,
                                            const search::SearchSpace& space,
                                            std::size_t k) const;

 private:
  BoOptions options_;
};

}  // namespace tunekit::bo
