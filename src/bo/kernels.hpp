#pragma once
// Covariance kernels with ARD (per-dimension) lengthscales. All kernels
// operate on unit-cube coordinates produced by SearchSpace::encode_unit.

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace tunekit::bo {

enum class KernelKind { RBF, Matern32, Matern52 };

const char* to_string(KernelKind kind);

struct GpHyperparams {
  double signal_variance = 1.0;
  /// One lengthscale per input dimension (ARD).
  std::vector<double> lengthscales;
  double noise_variance = 1e-6;

  static GpHyperparams isotropic(std::size_t dim, double lengthscale = 0.3,
                                 double signal_variance = 1.0,
                                 double noise_variance = 1e-6);
};

/// k(a, b) for the given kind and hyperparameters.
double kernel_value(KernelKind kind, const std::vector<double>& a,
                    const std::vector<double>& b, const GpHyperparams& hp);

/// Gram matrix K(X, X) + noise_variance * I, X given row-per-point.
linalg::Matrix kernel_gram(KernelKind kind, const linalg::Matrix& x,
                           const GpHyperparams& hp);

/// Cross-covariance vector k(X, x*).
std::vector<double> kernel_cross(KernelKind kind, const linalg::Matrix& x,
                                 const std::vector<double>& point,
                                 const GpHyperparams& hp);

}  // namespace tunekit::bo
