#include "bo/bayes_opt.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "robust/outcome.hpp"
#include "search/samplers.hpp"
#include "search/sobol.hpp"

namespace tunekit::bo {

namespace {

bool nearly_equal_config(const search::Config& a, const search::Config& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-9 * std::max(1.0, std::abs(a[i]))) return false;
  }
  return true;
}

bool already_evaluated(const std::vector<search::Evaluation>& evals,
                       const search::Config& c) {
  return std::any_of(evals.begin(), evals.end(), [&](const search::Evaluation& e) {
    return nearly_equal_config(e.config, c);
  });
}

}  // namespace

search::SearchResult BayesOpt::run(search::Objective& objective,
                                   const search::SearchSpace& space) const {
  search::EvalDb db;
  return run(objective, space, db);
}

search::SearchResult BayesOpt::run(search::Objective& objective,
                                   const search::SearchSpace& space,
                                   search::EvalDb& db) const {
  Stopwatch watch;
  tunekit::Rng rng(options_.seed);
  obs::Telemetry* telemetry = options_.telemetry;
  const bool traced = telemetry != nullptr && telemetry->enabled();

  // Crash recovery: restore prior evaluations if asked to.
  if (options_.resume && !options_.checkpoint_path.empty() &&
      std::filesystem::exists(options_.checkpoint_path)) {
    db = search::EvalDb::load(options_.checkpoint_path, space);
    log_info("bo: resumed ", db.size(), " evaluations from ", options_.checkpoint_path);
  }

  auto evaluate_and_record = [&](const search::Config& config) {
    obs::ScopedSpan eval_span(telemetry, "eval");
    if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
    Stopwatch eval_watch;
    double value = std::numeric_limits<double>::quiet_NaN();
    robust::EvalOutcome outcome = robust::EvalOutcome::Ok;
    try {
      value = objective.evaluate(config);
      outcome = robust::classify_value(value);
    } catch (const robust::EvalFailure& e) {
      // A hardened objective already classified the failure; keep the why.
      log_warn("bo: evaluation failed (", e.what(), "); recording as ",
               robust::to_string(e.outcome()));
      outcome = e.outcome();
    } catch (const std::invalid_argument& e) {
      log_warn("bo: invalid configuration (", e.what(), "); recording as failure");
      outcome = robust::EvalOutcome::InvalidConfig;
    } catch (const std::exception& e) {
      // Application crash: record the failure and keep searching.
      log_warn("bo: evaluation failed (", e.what(), "); recording as failure");
      outcome = robust::EvalOutcome::Crashed;
    } catch (...) {
      log_warn("bo: evaluation threw a non-standard exception; recording as crash");
      outcome = robust::EvalOutcome::Crashed;
    }
    const double seconds = eval_watch.seconds();
    eval_span.end();
    if (traced) {
      obs::outcome_counter(telemetry->metrics(), robust::to_string(outcome)).inc();
      telemetry->metrics()
          .histogram(obs::metric::kEvalSeconds, obs::default_time_buckets())
          .observe(seconds);
    }
    if (robust::is_failure(outcome)) value = std::numeric_limits<double>::quiet_NaN();
    db.record(config, value, seconds, outcome);
    if (!options_.checkpoint_path.empty() && options_.checkpoint_every > 0 &&
        db.size() % options_.checkpoint_every == 0) {
      db.save(options_.checkpoint_path);
    }
    return value;
  };

  // Warm start: source-task winners first (transfer learning).
  for (const auto& config : options_.warm_start) {
    if (db.size() >= options_.max_evals) break;
    if (!space.is_valid(config)) {
      log_warn("bo: skipping invalid warm-start configuration");
      continue;
    }
    if (already_evaluated(db.all(), config)) continue;
    evaluate_and_record(config);
  }

  // Initial design.
  if (db.size() < options_.n_init) {
    const std::size_t missing = options_.n_init - db.size();
    std::vector<search::Config> init;
    switch (options_.init_design) {
      case InitialDesign::LatinHypercube:
        init = search::sample_valid_configs(space, missing, rng, /*latin_hypercube=*/true);
        break;
      case InitialDesign::Sobol:
        init = search::SobolSequence::sample(space, missing, options_.seed | 1);
        break;
      case InitialDesign::UniformRandom:
        init = search::sample_valid_configs(space, missing, rng, /*latin_hypercube=*/false);
        break;
    }
    for (const auto& config : init) {
      if (db.size() >= options_.max_evals) break;
      evaluate_and_record(config);
    }
  }

  GaussianProcess gp(options_.kernel);
  if (options_.transfer) {
    const TransferPrior& prior = *options_.transfer;
    gp.set_prior_mean([&prior](const std::vector<double>& u) { return prior.mean_at(u); });
  }

  auto accept_unit = [&](const std::vector<double>& u) {
    return space.is_valid(space.decode_unit(u));
  };

  std::size_t iteration = 0;
  while (db.size() < options_.max_evals) {
    obs::ScopedSpan iter_span(telemetry, "bo.iteration");
    // Assemble training data in unit coordinates; clamp timeouts and handle
    // failed evaluations per failure_penalty.
    const auto evals = db.all();
    std::vector<std::vector<double>> unit_points;
    std::vector<double> targets;
    double best_value = std::numeric_limits<double>::infinity();
    std::vector<double> best_unit;
    for (const auto& e : evals) {
      double value = e.value;
      // Any non-finite observation (NaN crash sentinel or an overflowed +inf
      // timing) is a failure: penalize or exclude, never feed it to the GP.
      if (!std::isfinite(value)) {
        if (std::isnan(options_.failure_penalty)) continue;  // exclude failures
        value = options_.failure_penalty;
      }
      value = std::min(value, options_.timeout_value);
      auto unit = space.encode_unit(e.config);
      if (value < best_value) {
        best_value = value;
        best_unit = unit;
      }
      unit_points.push_back(std::move(unit));
      targets.push_back(value);
    }
    if (unit_points.empty()) {
      // Everything failed so far: explore at random.
      evaluate_and_record(space.sample_valid(rng));
      ++iteration;
      continue;
    }
    linalg::Matrix x(unit_points.size(), space.size());
    std::vector<double> y = std::move(targets);
    for (std::size_t i = 0; i < unit_points.size(); ++i) {
      for (std::size_t k = 0; k < space.size(); ++k) x(i, k) = unit_points[i][k];
    }

    try {
      Stopwatch fit_watch;
      if (options_.hyperopt_every > 0 && iteration % options_.hyperopt_every == 0) {
        gp.fit_with_hyperopt(std::move(x), std::move(y), rng, options_.hyperopt_restarts,
                             options_.hyperopt_max_iters);
      } else {
        gp.fit(std::move(x), std::move(y));
      }
      if (traced) {
        telemetry->metrics()
            .histogram(obs::metric::kGpFitSeconds, obs::default_time_buckets())
            .observe(fit_watch.seconds());
      }
    } catch (const std::exception& e) {
      // Surrogate breakdown (e.g. all-identical targets): fall back to a
      // random valid evaluation and keep going — robustness over elegance.
      log_warn("bo: surrogate fit failed (", e.what(), "); random fallback");
      evaluate_and_record(space.sample_valid(rng));
      ++iteration;
      continue;
    }

    Stopwatch acq_watch;
    std::vector<double> proposal_unit = maximize_acquisition(
        gp, options_.acquisition, options_.acq_params, best_value, best_unit, rng,
        options_.maximizer, accept_unit);
    search::Config proposal = space.decode_unit(proposal_unit);

    // Duplicate handling for small/discrete spaces.
    std::size_t retries = 0;
    while (already_evaluated(evals, proposal) && retries < options_.duplicate_retries) {
      proposal_unit = maximize_acquisition(gp, options_.acquisition, options_.acq_params,
                                           best_value, best_unit, rng, options_.maximizer,
                                           accept_unit);
      proposal = space.decode_unit(proposal_unit);
      ++retries;
    }
    if (already_evaluated(evals, proposal)) {
      proposal = space.sample_valid(rng);
    }
    // Proposal-selection time including duplicate retries: each retry is a
    // full argmax, and their cost is what this histogram exists to expose.
    if (traced) {
      telemetry->metrics()
          .histogram(obs::metric::kAcqArgmaxSeconds, obs::default_time_buckets())
          .observe(acq_watch.seconds());
    }

    evaluate_and_record(proposal);
    ++iteration;
  }

  if (!options_.checkpoint_path.empty()) {
    db.save(options_.checkpoint_path);
  }

  // Package the result.
  search::SearchResult result;
  result.method = "bo";
  const auto evals = db.all();
  result.values.reserve(evals.size());
  for (const auto& e : evals) {
    result.values.push_back(e.value);
    if (std::isfinite(e.value) && e.value < result.best_value) {
      result.best_value = e.value;
      result.best_config = e.config;
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = evals.size();
  result.seconds = watch.seconds();
  return result;
}

std::vector<search::Config> BayesOpt::suggest_batch(const search::EvalDb& db,
                                                    const search::SearchSpace& space,
                                                    std::size_t k) const {
  const auto evals = db.all();
  if (evals.empty()) {
    throw std::invalid_argument("BayesOpt::suggest_batch: empty evaluation database");
  }
  tunekit::Rng rng(options_.seed ^ 0xba7c4);
  obs::Telemetry* telemetry = options_.telemetry;
  const bool traced = telemetry != nullptr && telemetry->enabled();

  // Observed data plus the growing liar set.
  std::vector<std::vector<double>> unit_points;
  std::vector<double> y;
  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_unit;
  for (const auto& e : evals) {
    if (!std::isfinite(e.value)) continue;  // failed evaluations carry no target
    unit_points.push_back(space.encode_unit(e.config));
    const double v = std::min(e.value, options_.timeout_value);
    y.push_back(v);
    if (v < best_value) {
      best_value = v;
      best_unit = unit_points.back();
    }
  }
  if (unit_points.empty()) {
    throw std::invalid_argument("BayesOpt::suggest_batch: no successful evaluations");
  }

  auto accept_unit = [&](const std::vector<double>& u) {
    return space.is_valid(space.decode_unit(u));
  };

  GaussianProcess gp(options_.kernel);
  if (options_.transfer) {
    const TransferPrior& prior = *options_.transfer;
    gp.set_prior_mean([&prior](const std::vector<double>& u) { return prior.mean_at(u); });
  }

  std::vector<search::Config> batch;
  std::vector<search::Evaluation> seen;
  for (const auto& e : evals) seen.push_back(e);

  for (std::size_t b = 0; b < k; ++b) {
    linalg::Matrix x(unit_points.size(), space.size());
    for (std::size_t i = 0; i < unit_points.size(); ++i) {
      for (std::size_t c = 0; c < space.size(); ++c) x(i, c) = unit_points[i][c];
    }
    try {
      Stopwatch fit_watch;
      if (b == 0) {
        gp.fit_with_hyperopt(std::move(x), y, rng, options_.hyperopt_restarts,
                             options_.hyperopt_max_iters);
      } else {
        gp.fit(std::move(x), y);
      }
      if (traced) {
        telemetry->metrics()
            .histogram(obs::metric::kGpFitSeconds, obs::default_time_buckets())
            .observe(fit_watch.seconds());
      }
    } catch (const std::exception& e) {
      log_warn("bo: suggest_batch surrogate failed (", e.what(), "); random fill");
      batch.push_back(space.sample_valid(rng));
      continue;
    }

    Stopwatch acq_watch;
    auto proposal_unit =
        maximize_acquisition(gp, options_.acquisition, options_.acq_params, best_value,
                             best_unit, rng, options_.maximizer, accept_unit);
    search::Config proposal = space.decode_unit(proposal_unit);
    std::size_t retries = 0;
    while (already_evaluated(seen, proposal) && retries < options_.duplicate_retries) {
      proposal_unit =
          maximize_acquisition(gp, options_.acquisition, options_.acq_params, best_value,
                               best_unit, rng, options_.maximizer, accept_unit);
      proposal = space.decode_unit(proposal_unit);
      ++retries;
    }
    if (already_evaluated(seen, proposal)) proposal = space.sample_valid(rng);
    if (traced) {
      telemetry->metrics()
          .histogram(obs::metric::kAcqArgmaxSeconds, obs::default_time_buckets())
          .observe(acq_watch.seconds());
    }

    // Constant liar: pretend the proposal observed the incumbent best.
    unit_points.push_back(space.encode_unit(proposal));
    y.push_back(best_value);
    seen.push_back({proposal, best_value, 0.0});
    batch.push_back(std::move(proposal));
  }
  return batch;
}

}  // namespace tunekit::bo
