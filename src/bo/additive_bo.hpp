#pragma once
// Additive Bayesian optimization (Kandasamy et al., ICML'15): a single
// additive GP over a coordinate decomposition, with the acquisition
// maximized group-by-group (each group's component is independent given the
// decomposition). The paper inverts this idea — instead of decomposing a
// joint search into additive pieces after an expensive analysis, it merges
// cheap searches that show interdependence.

#include "bo/acquisition.hpp"
#include "bo/additive_gp.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::bo {

struct AdditiveBoOptions {
  std::size_t max_evals = 100;
  std::size_t n_init = 5;

  KernelKind kernel = KernelKind::Matern52;
  AcquisitionKind acquisition = AcquisitionKind::LowerConfidenceBound;
  /// Per-group LCB exploration weight; 1.0 works best on additive
  /// objectives (each component is low-dimensional, so less exploration is
  /// needed than in a joint search).
  AcquisitionParams acq_params{0.01, 1.0};
  /// Candidates per group when maximizing the per-group acquisition.
  std::size_t group_candidates = 128;
  std::size_t hyperopt_every = 5;
  std::size_t hyperopt_restarts = 1;
  std::size_t hyperopt_max_iters = 60;
  std::uint64_t seed = 1;
};

class AdditiveBo {
 public:
  /// `groups`: disjoint coordinate groups (from a known decomposition or an
  /// orthogonality analysis).
  AdditiveBo(std::vector<std::vector<std::size_t>> groups, AdditiveBoOptions options = {});

  search::SearchResult run(search::Objective& objective,
                           const search::SearchSpace& space) const;

 private:
  std::vector<std::vector<std::size_t>> groups_;
  AdditiveBoOptions options_;
};

}  // namespace tunekit::bo
