#pragma once
// Additive Bayesian optimization (Kandasamy et al., ICML'15): a single
// additive GP over a coordinate decomposition, with the acquisition
// maximized group-by-group (each group's component is independent given the
// decomposition). The paper inverts this idea — instead of decomposing a
// joint search into additive pieces after an expensive analysis, it merges
// cheap searches that show interdependence.

#include <functional>
#include <optional>

#include "bo/acquisition.hpp"
#include "bo/additive_gp.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::bo {

/// Called after every evaluation with the full observation archive
/// (unit-cube rows) and objective values. Returning a non-empty group set
/// makes the search adopt that decomposition on the next iteration: the
/// additive GP is rebuilt over the new groups and refit from the complete
/// archive, so no observation is discarded on a re-cut. This is how the
/// online structure learner (structure::OnlineLearner) re-partitions a
/// running additive search.
using RegroupHook = std::function<std::optional<std::vector<std::vector<std::size_t>>>(
    const std::vector<std::vector<double>>& units, const std::vector<double>& values)>;

struct AdditiveBoOptions {
  std::size_t max_evals = 100;
  std::size_t n_init = 5;

  KernelKind kernel = KernelKind::Matern52;
  AcquisitionKind acquisition = AcquisitionKind::LowerConfidenceBound;
  /// Per-group LCB exploration weight; 1.0 works best on additive
  /// objectives (each component is low-dimensional, so less exploration is
  /// needed than in a joint search).
  AcquisitionParams acq_params{0.01, 1.0};
  /// Candidates per group when maximizing the per-group acquisition.
  std::size_t group_candidates = 128;
  std::size_t hyperopt_every = 5;
  std::size_t hyperopt_restarts = 1;
  std::size_t hyperopt_max_iters = 60;
  std::uint64_t seed = 1;

  /// Optional online-repartition hook (null = static decomposition).
  RegroupHook regroup_hook;
};

class AdditiveBo {
 public:
  /// `groups`: disjoint coordinate groups (from a known decomposition or an
  /// orthogonality analysis).
  AdditiveBo(std::vector<std::vector<std::size_t>> groups, AdditiveBoOptions options = {});

  search::SearchResult run(search::Objective& objective,
                           const search::SearchSpace& space) const;

 private:
  std::vector<std::vector<std::size_t>> groups_;
  AdditiveBoOptions options_;
};

}  // namespace tunekit::bo
