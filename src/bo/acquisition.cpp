#include "bo/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "bo/nelder_mead.hpp"

namespace tunekit::bo {

const char* to_string(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::ExpectedImprovement: return "ei";
    case AcquisitionKind::ProbabilityOfImprovement: return "pi";
    case AcquisitionKind::LowerConfidenceBound: return "lcb";
  }
  return "?";
}

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double acquisition_score(AcquisitionKind kind, double mean, double sd, double best,
                         const AcquisitionParams& params) {
  switch (kind) {
    case AcquisitionKind::ExpectedImprovement: {
      if (sd <= 1e-12) return std::max(0.0, best - mean - params.xi);
      const double z = (best - mean - params.xi) / sd;
      return (best - mean - params.xi) * normal_cdf(z) + sd * normal_pdf(z);
    }
    case AcquisitionKind::ProbabilityOfImprovement: {
      if (sd <= 1e-12) return best - mean - params.xi > 0.0 ? 1.0 : 0.0;
      return normal_cdf((best - mean - params.xi) / sd);
    }
    case AcquisitionKind::LowerConfidenceBound:
      // Minimization: prefer the lowest optimistic bound.
      return -(mean - params.beta * sd);
  }
  return 0.0;
}

std::vector<double> maximize_acquisition(
    const GaussianProcess& gp, AcquisitionKind kind, const AcquisitionParams& params,
    double best_value, const std::vector<double>& incumbent_unit, tunekit::Rng& rng,
    const AcquisitionMaximizerOptions& options,
    const std::function<bool(const std::vector<double>&)>& accept) {
  if (!gp.fitted()) throw std::runtime_error("maximize_acquisition: GP not fitted");
  const std::size_t d = gp.dim();

  auto score_at = [&](const std::vector<double>& u) {
    const auto pred = gp.predict(u);
    return acquisition_score(kind, pred.mean, pred.stddev(), best_value, params);
  };

  std::vector<double> best_point;
  double best_score = -std::numeric_limits<double>::infinity();

  const std::size_t n_local =
      incumbent_unit.empty()
          ? 0
          : static_cast<std::size_t>(options.local_fraction *
                                     static_cast<double>(options.n_candidates));

  std::vector<double> candidate(d);
  std::size_t accepted = 0;
  for (std::size_t c = 0; c < options.n_candidates; ++c) {
    if (c < n_local) {
      for (std::size_t k = 0; k < d; ++k) {
        candidate[k] =
            std::clamp(incumbent_unit[k] + rng.normal(0.0, options.local_sigma), 0.0, 1.0);
      }
    } else {
      for (std::size_t k = 0; k < d; ++k) candidate[k] = rng.uniform();
    }
    if (accept && !accept(candidate)) continue;
    ++accepted;
    const double s = score_at(candidate);
    if (s > best_score) {
      best_score = s;
      best_point = candidate;
    }
  }

  if (best_point.empty()) {
    // No candidate survived the feasibility filter; fall back to rejection
    // sampling so callers always get a point.
    for (std::size_t tries = 0; tries < 50000; ++tries) {
      for (std::size_t k = 0; k < d; ++k) candidate[k] = rng.uniform();
      if (!accept || accept(candidate)) return candidate;
    }
    throw std::runtime_error(
        "maximize_acquisition: feasibility filter rejected every candidate");
  }

  if (options.refine_iters > 0) {
    NelderMeadOptions nm;
    nm.max_iters = options.refine_iters;
    nm.initial_step = 0.05;
    nm.lower.assign(d, 0.0);
    nm.upper.assign(d, 1.0);
    const auto res = nelder_mead([&](const std::vector<double>& u) { return -score_at(u); },
                                 best_point, nm);
    if (-res.value > best_score && (!accept || accept(res.x))) {
      best_point = res.x;
    }
  }
  (void)accepted;
  return best_point;
}

}  // namespace tunekit::bo
