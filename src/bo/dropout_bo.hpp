#pragma once
// Dropout Bayesian optimization (Li et al., IJCAI'17) — one of the three
// high-dimensional BO strategies the paper's related work surveys: each
// iteration models and optimizes only `d` randomly chosen dimensions out of
// D, filling the rest with random values. Convergence is typically slower
// than a well-partitioned search (the paper's point), which
// bench/ablation_highdim_strategies measures.

#include "bo/acquisition.hpp"
#include "search/eval_db.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::bo {

struct DropoutBoOptions {
  std::size_t max_evals = 100;
  std::size_t n_init = 5;
  /// Dimensions modeled per iteration.
  std::size_t active_dims = 5;
  /// "copy" fills dropped dimensions from the incumbent best (Li et al.'s
  /// best-performing variant); otherwise they are drawn uniformly.
  bool fill_from_best = true;

  KernelKind kernel = KernelKind::Matern52;
  AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;
  AcquisitionParams acq_params;
  AcquisitionMaximizerOptions maximizer;
  std::size_t hyperopt_every = 5;
  std::size_t hyperopt_restarts = 1;
  std::size_t hyperopt_max_iters = 60;
  std::uint64_t seed = 1;
};

class DropoutBo {
 public:
  explicit DropoutBo(DropoutBoOptions options = {}) : options_(options) {}

  search::SearchResult run(search::Objective& objective,
                           const search::SearchSpace& space) const;

 private:
  DropoutBoOptions options_;
};

}  // namespace tunekit::bo
