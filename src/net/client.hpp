#pragma once
// net::Client: a small blocking HTTP/1.1 client for the tuning server —
// what the remote-* CLI commands and the integration tests speak. One
// keep-alive connection, reconnected on demand; send/receive timeouts so a
// dead server fails the call instead of hanging it.

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "net/http.hpp"

namespace tunekit::net {

/// A completed HTTP exchange from the client's point of view.
struct ClientResponse {
  int status = 0;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }
  /// Parse the body as JSON (throws json::JsonError on non-JSON bodies).
  json::Value json() const { return json::parse(body); }
};

class Client {
 public:
  /// No connection is made until the first request.
  Client(std::string host, std::uint16_t port, double timeout_seconds = 30.0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip. Reconnects if the keep-alive
  /// connection was closed. Throws std::runtime_error when the server is
  /// unreachable or the response is unparseable; HTTP error statuses are
  /// returned, not thrown.
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body = "");

  /// JSON conveniences. Non-2xx replies raise std::runtime_error carrying
  /// the server's {"error": ...} message.
  json::Value create_session(const json::Value& spec);
  json::Value ask(const std::string& id, std::size_t k = 1);
  json::Value tell(const std::string& id, const json::Value& body);
  json::Value report(const std::string& id);
  json::Value close_session(const std::string& id);
  /// Fleet endpoints (serve --fleet): registry status, synchronous drive.
  json::Value fleet_status();
  json::Value drive_session(const std::string& id, const json::Value& body);
  std::string metrics();
  bool healthy();

 private:
  void connect();
  void disconnect();
  json::Value round_trip(const std::string& method, const std::string& target,
                         const json::Value& body);

  std::string host_;
  std::uint16_t port_;
  double timeout_seconds_;
  int fd_ = -1;
};

}  // namespace tunekit::net
