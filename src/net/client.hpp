#pragma once
// net::Client: a small blocking HTTP/1.1 client for the tuning server —
// what the remote-* CLI commands, fleet-drive, and the integration tests
// speak. One keep-alive connection, reconnected on demand; all socket IO
// runs through net/deadline.hpp so every step is bounded (and fault-
// injectable via FaultNet).
//
// Retry semantics are explicit about what is safe to repeat:
//   * a failed dial provably never reached the server — always retryable;
//   * 429/503 are shed *before* execution (the server's admission control
//     or breaker said no) — retryable, honoring Retry-After;
//   * a reset, timeout, torn response, or 408 after the request left this
//     host may have executed — retried only when an Idempotency-Key is
//     attached, because only then does the server guarantee the retry
//     replays the original response instead of re-executing;
//   * 504 (deadline expired) is never retried — waiting cannot un-spend a
//     budget.
// The JSON conveniences stamp an auto-generated key per logical call when
// retries are enabled, so their retries are exactly-once end to end.

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/json.hpp"
#include "net/http.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::net {

/// A completed HTTP exchange from the client's point of view.
struct ClientResponse {
  int status = 0;
  std::string body;
  /// Response header fields, keys lower-cased.
  std::map<std::string, std::string> headers;

  bool ok() const { return status >= 200 && status < 300; }
  /// Parse the body as JSON (throws json::JsonError on non-JSON bodies).
  json::Value json() const { return json::parse(body); }
  /// The server's Retry-After hint in seconds (0 when absent/unparseable).
  double retry_after_seconds() const;
};

/// Client-side retry policy. The default (max_attempts = 1) performs no
/// backoff retries but still honors a Retry-After on 429/503 with one
/// capped, jittered courtesy retry — the server told us exactly when the
/// request will succeed, so failing without using that hint wastes it.
struct ClientRetryOptions {
  /// Total attempts per request, transport and 408/429/503 retries
  /// combined. 1 = no retry budget.
  int max_attempts = 1;
  /// Exponential backoff: base * 2^(attempt-1), capped, jittered.
  double base_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
  /// Cap on any sleep taken from a Retry-After header — a confused or
  /// hostile server must not be able to park the client for minutes.
  double retry_after_cap_seconds = 30.0;
  /// Consume Retry-After hints on 429/503 (on by default).
  bool honor_retry_after = true;
  /// Mixed into the deterministic backoff jitter so co-started clients
  /// don't sleep in lockstep; same seed + same key = same schedule.
  std::uint64_t jitter_seed = 0;
  /// Default end-to-end budget per logical request (same semantics as
  /// RequestOptions::deadline_seconds; also settable later via
  /// set_default_deadline_seconds). infinity = none.
  double default_deadline_seconds = std::numeric_limits<double>::infinity();
  /// Counts tunekit_retry_attempts_total / tunekit_retry_exhausted_total
  /// (null = disabled).
  obs::Telemetry* telemetry = nullptr;
};

/// Per-request options.
struct RequestOptions {
  /// Non-empty: stamped as the Idempotency-Key header, unlocking retries of
  /// maybe-executed requests (the server replays the original response).
  std::string idempotency_key;
  /// End-to-end budget for this call, retries and backoff sleeps included;
  /// the remaining budget is re-stamped as X-Tunekit-Deadline on every
  /// attempt. infinity = client default (set_default_deadline_seconds).
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

class Client {
 public:
  /// No connection is made until the first request. `timeout_seconds`
  /// bounds each attempt's IO; `retry` governs what happens between
  /// attempts.
  Client(std::string host, std::uint16_t port, double timeout_seconds = 30.0,
         ClientRetryOptions retry = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Default X-Tunekit-Deadline budget applied when RequestOptions does not
  /// carry one (infinity = none; what --deadline-s sets).
  void set_default_deadline_seconds(double seconds) {
    default_deadline_seconds_ = seconds;
  }

  /// One logical request, up to the retry policy's attempts. Reconnects if
  /// the keep-alive connection went stale. Throws std::runtime_error when
  /// every attempt failed in transport or the deadline expired; HTTP error
  /// statuses are returned, not thrown.
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body = "",
                         const RequestOptions& options = {});

  /// Fresh process-unique idempotency key ("ck<rand>-<n>").
  std::string make_key();

  /// JSON conveniences. Non-2xx replies raise std::runtime_error carrying
  /// the server's {"error": ...} message. When retries are enabled, ask/
  /// tell/drive stamp an auto-generated Idempotency-Key per logical call;
  /// create/close retry only provably-safe failures.
  json::Value create_session(const json::Value& spec);
  json::Value ask(const std::string& id, std::size_t k = 1);
  json::Value tell(const std::string& id, const json::Value& body);
  json::Value report(const std::string& id);
  json::Value close_session(const std::string& id);
  /// Fleet endpoints (serve --fleet): registry status, synchronous drive.
  json::Value fleet_status();
  json::Value drive_session(const std::string& id, const json::Value& body);
  std::string metrics();
  bool healthy();

 private:
  /// How one attempt's transport failed, and whether a retry is safe
  /// without an idempotency key.
  enum class TransportFailure {
    ConnectFailed,  ///< never reached the server — always safe to retry
    Reset,          ///< connection died after the request left — needs a key
    TornResponse,   ///< response cut off mid-frame — needs a key
    Timeout,        ///< no response within the IO budget — needs a key
  };
  struct TransportError {
    TransportFailure kind;
    std::string message;
  };

  void connect(const class Deadline& deadline);
  void disconnect();
  /// One wire round trip (with the internal stale-keep-alive reconnect).
  /// Returns the response or throws TransportError. A non-empty
  /// `traceparent` is stamped as the traceparent header.
  ClientResponse perform(const std::string& method, const std::string& target,
                         const std::string& body, const RequestOptions& options,
                         double remaining_deadline_seconds,
                         const std::string& traceparent = {});
  /// Deterministic backoff sleep before retry `attempt`; clamped to
  /// `max_sleep_seconds`. `retry_after` > 0 takes precedence (capped).
  double backoff_seconds(const std::string& key, int attempt,
                         double retry_after) const;
  void count(const char* name);
  json::Value round_trip(const std::string& method, const std::string& target,
                         const json::Value& body, const RequestOptions& options = {});
  /// Auto-keyed options for a non-idempotent convenience call: a fresh key
  /// when retries are enabled, none otherwise.
  RequestOptions keyed_options();

  std::string host_;
  std::uint16_t port_;
  double timeout_seconds_;
  ClientRetryOptions retry_;
  double default_deadline_seconds_ = std::numeric_limits<double>::infinity();
  std::uint64_t key_base_ = 0;
  std::uint64_t key_counter_ = 0;
  int fd_ = -1;
};

}  // namespace tunekit::net
