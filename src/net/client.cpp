#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "net/deadline.hpp"

namespace tunekit::net {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Client::Client(std::string host, std::uint16_t port, double timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_seconds_(timeout_seconds) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect() {
  disconnect();
  // Bounded non-blocking dial: a black-holed server address fails the call
  // after timeout_seconds_ instead of hanging in connect().
  std::string error;
  fd_ = dial_tcp(host_, port_, Deadline::after(timeout_seconds_), &error);
  if (fd_ < 0) throw std::runtime_error(error);

  // Established-connection IO keeps using socket timeouts: the send/recv
  // loops below stay simple and every call is still bounded.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds_);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds_ - std::floor(timeout_seconds_)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

ClientResponse Client::request(const std::string& method, const std::string& target,
                               const std::string& body) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  // One retry on a stale keep-alive connection: the server may have closed
  // it (idle timeout, restart) between our requests.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool fresh = fd_ < 0;
    if (fresh) connect();

    bool send_failed = false;
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        send_failed = true;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (send_failed) {
      disconnect();
      if (fresh) throw std::runtime_error("send to server failed");
      continue;  // stale connection: reconnect and retry once
    }

    // Read the status line + headers.
    std::string buf;
    std::size_t header_end = std::string::npos;
    bool peer_closed = false;
    while (header_end == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        peer_closed = true;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      header_end = buf.find("\r\n\r\n");
      if (buf.size() > (1u << 20)) throw std::runtime_error("response headers too large");
    }
    if (peer_closed) {
      disconnect();
      if (fresh || !buf.empty()) {
        throw std::runtime_error("server closed the connection mid-response");
      }
      continue;  // clean close before any bytes: retry on a new connection
    }

    const std::string head = buf.substr(0, header_end);
    std::string rest = buf.substr(header_end + 4);

    ClientResponse response;
    {
      // "HTTP/1.1 200 OK"
      const std::size_t sp1 = head.find(' ');
      if (sp1 == std::string::npos || head.compare(0, 5, "HTTP/") != 0) {
        disconnect();
        throw std::runtime_error("malformed response status line");
      }
      response.status = std::atoi(head.c_str() + sp1 + 1);
      if (response.status < 100 || response.status > 599) {
        disconnect();
        throw std::runtime_error("malformed response status");
      }
    }

    // Headers we care about: content-length, connection.
    std::size_t content_length = 0;
    bool server_closes = false;
    std::size_t pos = head.find("\r\n");
    while (pos != std::string::npos) {
      const std::size_t line_start = pos + 2;
      std::size_t line_end = head.find("\r\n", line_start);
      const std::string line = head.substr(
          line_start, line_end == std::string::npos ? std::string::npos
                                                    : line_end - line_start);
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        const std::string name = lower(line.substr(0, colon));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.erase(value.begin());
        }
        if (name == "content-length") {
          content_length = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
        } else if (name == "connection" && lower(value).find("close") != std::string::npos) {
          server_closes = true;
        }
      }
      pos = line_end;
    }

    // Interim 1xx responses carry no body; keep reading for the real one.
    if (response.status >= 100 && response.status < 200) {
      throw std::runtime_error("unexpected interim response from server");
    }

    while (rest.size() < content_length) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        disconnect();
        throw std::runtime_error("server closed the connection mid-body");
      }
      rest.append(chunk, static_cast<std::size_t>(n));
    }
    response.body = rest.substr(0, content_length);
    if (server_closes) disconnect();
    return response;
  }
  throw std::runtime_error("request failed after reconnect");
}

json::Value Client::round_trip(const std::string& method, const std::string& target,
                               const json::Value& body) {
  const std::string payload = body.is_null() ? std::string() : body.dump();
  const ClientResponse response = request(method, target, payload);
  json::Value parsed;
  try {
    parsed = response.json();
  } catch (const json::JsonError&) {
    throw std::runtime_error("HTTP " + std::to_string(response.status) +
                             " with non-JSON body from " + target);
  }
  if (!response.ok()) {
    std::string message = "HTTP " + std::to_string(response.status);
    if (parsed.contains("error")) message += ": " + parsed.at("error").as_string();
    throw std::runtime_error(message);
  }
  return parsed;
}

json::Value Client::create_session(const json::Value& spec) {
  return round_trip("POST", "/v1/sessions", spec);
}

json::Value Client::ask(const std::string& id, std::size_t k) {
  json::Object body;
  body["k"] = json::Value(k);
  return round_trip("POST", "/v1/sessions/" + id + "/ask", json::Value(std::move(body)));
}

json::Value Client::tell(const std::string& id, const json::Value& body) {
  return round_trip("POST", "/v1/sessions/" + id + "/tell", body);
}

json::Value Client::report(const std::string& id) {
  return round_trip("GET", "/v1/sessions/" + id + "/report", json::Value());
}

json::Value Client::close_session(const std::string& id) {
  return round_trip("DELETE", "/v1/sessions/" + id, json::Value());
}

json::Value Client::fleet_status() {
  return round_trip("GET", "/v1/fleet", json::Value());
}

json::Value Client::drive_session(const std::string& id, const json::Value& body) {
  return round_trip("POST", "/v1/sessions/" + id + "/drive", body);
}

std::string Client::metrics() {
  const ClientResponse response = request("GET", "/metrics");
  if (!response.ok()) {
    throw std::runtime_error("GET /metrics -> HTTP " + std::to_string(response.status));
  }
  return response.body;
}

bool Client::healthy() {
  try {
    return request("GET", "/healthz").ok();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace tunekit::net
