#include "net/client.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "net/deadline.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Seconds formatted for the X-Tunekit-Deadline header (millisecond
/// precision is plenty for budgets measured in seconds).
std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

double ClientResponse::retry_after_seconds() const {
  const auto it = headers.find("retry-after");
  if (it == headers.end()) return 0.0;
  char* end = nullptr;
  const double seconds = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || !std::isfinite(seconds) || seconds < 0.0) {
    return 0.0;
  }
  return seconds;
}

Client::Client(std::string host, std::uint16_t port, double timeout_seconds,
               ClientRetryOptions retry)
    : host_(std::move(host)),
      port_(port),
      timeout_seconds_(timeout_seconds),
      retry_(retry),
      default_deadline_seconds_(retry.default_deadline_seconds) {
  // Key uniqueness across processes matters (two clients retrying the same
  // key would cross-replay responses), so the base is drawn from the OS.
  std::random_device rd;
  key_base_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
              static_cast<std::uint64_t>(::getpid());
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect(const Deadline& deadline) {
  disconnect();
  std::string error;
  fd_ = dial_tcp(host_, port_, deadline, &error);
  if (fd_ < 0) throw TransportError{TransportFailure::ConnectFailed, error};
}

std::string Client::make_key() {
  return "ck" + std::to_string(mix64(key_base_)) + "-" +
         std::to_string(++key_counter_);
}

RequestOptions Client::keyed_options() {
  RequestOptions options;
  if (retry_.max_attempts > 1) options.idempotency_key = make_key();
  return options;
}

void Client::count(const char* name) {
  if (retry_.telemetry != nullptr && retry_.telemetry->enabled()) {
    retry_.telemetry->metrics().counter(name).inc();
  }
}

double Client::backoff_seconds(const std::string& key, int attempt,
                               double retry_after) const {
  // Deterministic jitter in [0.75, 1.25): a function of (key, seed,
  // attempt) only, so a test can predict the schedule exactly, yet distinct
  // keys (distinct logical requests) spread out instead of thundering back
  // in lockstep.
  const std::uint64_t h =
      mix64(fnv1a(key) ^ retry_.jitter_seed ^
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt)));
  const double jitter = 0.75 + 0.5 * static_cast<double>(h % 10000) / 10000.0;
  if (retry_after > 0.0 && retry_.honor_retry_after) {
    return std::min(retry_after, retry_.retry_after_cap_seconds) * jitter;
  }
  const double exp =
      retry_.base_backoff_seconds * std::pow(2.0, static_cast<double>(attempt - 1));
  return std::min(exp, retry_.max_backoff_seconds) * jitter;
}

ClientResponse Client::perform(const std::string& method, const std::string& target,
                               const std::string& body,
                               const RequestOptions& options,
                               double remaining_deadline_seconds,
                               const std::string& traceparent) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!options.idempotency_key.empty()) {
    wire += "Idempotency-Key: " + options.idempotency_key + "\r\n";
  }
  if (!traceparent.empty()) {
    wire += "traceparent: " + traceparent + "\r\n";
  }
  if (std::isfinite(remaining_deadline_seconds)) {
    // The *remaining* budget, not the original one: each attempt tells the
    // server how much time this call still has, so server-side stages bound
    // themselves by what is actually left.
    wire += "X-Tunekit-Deadline: " + format_seconds(remaining_deadline_seconds) +
            "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  // The attempt's IO budget: the configured per-attempt timeout, never more
  // than what remains of the end-to-end deadline.
  const double io_budget = std::min(timeout_seconds_, remaining_deadline_seconds);

  // One free pass on a stale keep-alive connection: the server may have
  // closed it (idle timeout, restart) between requests; nothing was
  // executed, so this inner retry needs no key.
  for (int pass = 0; pass < 2; ++pass) {
    const Deadline deadline = Deadline::after(io_budget);
    const bool fresh = fd_ < 0;
    if (fresh) connect(deadline);

    const IoResult sent = write_all(fd_, wire.data(), wire.size(), deadline);
    if (!sent.ok()) {
      disconnect();
      if (!fresh) continue;  // stale connection: reconnect and resend
      if (sent.status == IoResult::Status::Timeout) {
        throw TransportError{TransportFailure::Timeout, "send to server timed out"};
      }
      throw TransportError{TransportFailure::Reset, "send to server failed"};
    }

    // Read the status line + headers.
    std::string buf;
    std::size_t header_end = std::string::npos;
    bool peer_closed = false;
    while (header_end == std::string::npos) {
      char chunk[4096];
      const IoResult got = read_some(fd_, chunk, sizeof(chunk), deadline);
      if (got.status == IoResult::Status::Timeout) {
        disconnect();
        throw TransportError{TransportFailure::Timeout,
                             "no response from server within " +
                                 format_seconds(io_budget) + "s"};
      }
      if (!got.ok()) {
        peer_closed = true;
        break;
      }
      buf.append(chunk, got.n);
      header_end = buf.find("\r\n\r\n");
      if (buf.size() > (1u << 20)) {
        disconnect();
        throw TransportError{TransportFailure::TornResponse,
                             "response headers too large"};
      }
    }
    if (peer_closed) {
      disconnect();
      if (!fresh && buf.empty()) continue;  // clean close before any bytes
      throw TransportError{
          buf.empty() ? TransportFailure::Reset : TransportFailure::TornResponse,
          "server closed the connection mid-response"};
    }

    const std::string head = buf.substr(0, header_end);
    std::string rest = buf.substr(header_end + 4);

    ClientResponse response;
    {
      // "HTTP/1.1 200 OK"
      const std::size_t sp1 = head.find(' ');
      if (sp1 == std::string::npos || head.compare(0, 5, "HTTP/") != 0) {
        disconnect();
        throw TransportError{TransportFailure::TornResponse,
                             "malformed response status line"};
      }
      response.status = std::atoi(head.c_str() + sp1 + 1);
      if (response.status < 100 || response.status > 599) {
        disconnect();
        throw TransportError{TransportFailure::TornResponse,
                             "malformed response status"};
      }
    }

    std::size_t content_length = 0;
    bool server_closes = false;
    std::size_t pos = head.find("\r\n");
    while (pos != std::string::npos) {
      const std::size_t line_start = pos + 2;
      std::size_t line_end = head.find("\r\n", line_start);
      const std::string line = head.substr(
          line_start, line_end == std::string::npos ? std::string::npos
                                                    : line_end - line_start);
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        const std::string name = lower(line.substr(0, colon));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.erase(value.begin());
        }
        if (name == "content-length") {
          content_length =
              static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
        } else if (name == "connection" &&
                   lower(value).find("close") != std::string::npos) {
          server_closes = true;
        }
        response.headers[name] = std::move(value);
      }
      pos = line_end;
    }

    if (response.status >= 100 && response.status < 200) {
      disconnect();
      throw TransportError{TransportFailure::TornResponse,
                           "unexpected interim response from server"};
    }

    while (rest.size() < content_length) {
      char chunk[4096];
      const IoResult got = read_some(fd_, chunk, sizeof(chunk), deadline);
      if (got.status == IoResult::Status::Timeout) {
        disconnect();
        throw TransportError{TransportFailure::Timeout,
                             "server stalled mid-body"};
      }
      if (!got.ok()) {
        disconnect();
        throw TransportError{TransportFailure::TornResponse,
                             "server closed the connection mid-body"};
      }
      rest.append(chunk, got.n);
    }
    response.body = rest.substr(0, content_length);
    if (server_closes) disconnect();
    return response;
  }
  throw TransportError{TransportFailure::Reset, "request failed after reconnect"};
}

ClientResponse Client::request(const std::string& method, const std::string& target,
                               const std::string& body,
                               const RequestOptions& options) {
  const double budget = std::isfinite(options.deadline_seconds)
                            ? options.deadline_seconds
                            : default_deadline_seconds_;
  const Deadline overall = Deadline::after(budget);
  const bool keyed = !options.idempotency_key.empty();

  // One client span per *logical* request (all its attempts share it); its
  // trace/span pair rides the traceparent header so the server-side handler
  // tree hangs from this span — the root of a distributed trace when no
  // outer span is ambient.
  obs::ScopedSpan client_span(retry_.telemetry, "client." + method + " " + target,
                              obs::Telemetry::kInheritParent, "net");
  std::string traceparent;
  if (client_span.context().valid()) {
    traceparent = obs::to_traceparent(client_span.context());
  }
  const std::string& jitter_key =
      keyed ? options.idempotency_key : target;  // stable per logical call
  const int max_attempts = std::max(1, retry_.max_attempts);
  bool courtesy_used = false;

  // Sleep before the next attempt; false when the remaining end-to-end
  // budget cannot cover the sleep (then retrying is pointless).
  const auto sleep_for_retry = [&](int attempt, double retry_after) {
    const double wait = backoff_seconds(jitter_key, attempt, retry_after);
    if (wait >= overall.remaining_seconds()) return false;
    count(obs::metric::kRetryAttempts);
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    return true;
  };

  for (int attempt = 1;; ++attempt) {
    if (overall.expired()) {
      count(obs::metric::kRetryExhausted);
      throw std::runtime_error("deadline expired after " +
                               std::to_string(attempt - 1) + " attempt(s) to " +
                               target);
    }
    ClientResponse response;
    try {
      response = perform(method, target, body, options, overall.remaining_seconds(),
                         traceparent);
    } catch (const TransportError& e) {
      // A dial that never connected is provably unexecuted — safe for
      // anyone. Everything else may have executed server-side, so only a
      // keyed request (whose replay is guaranteed) retries it.
      const bool safe = e.kind == TransportFailure::ConnectFailed || keyed;
      if (!safe || attempt >= max_attempts || !sleep_for_retry(attempt, 0.0)) {
        if (max_attempts > 1) count(obs::metric::kRetryExhausted);
        throw std::runtime_error(e.message);
      }
      log_debug("client: retrying ", target, " after transport failure (",
                e.message, "), attempt ", attempt + 1, "/", max_attempts);
      continue;
    }

    if (response.status == 429 || response.status == 503) {
      // Shed before execution: always safe to retry. Within the attempt
      // budget this is a normal backoff retry (preferring the server's own
      // Retry-After); past it, a finite Retry-After still earns one capped
      // courtesy retry — the server told us exactly when to come back.
      const double retry_after = response.retry_after_seconds();
      const bool in_budget = attempt < max_attempts;
      const bool courtesy = !in_budget && !courtesy_used &&
                            retry_.honor_retry_after && retry_after > 0.0;
      if ((in_budget || courtesy) && sleep_for_retry(attempt, retry_after)) {
        courtesy_used = courtesy || courtesy_used;
        log_debug("client: ", target, " shed with ", response.status,
                  " (Retry-After ", retry_after, "s); retrying");
        continue;
      }
      if (max_attempts > 1) count(obs::metric::kRetryExhausted);
      return response;
    }
    if (response.status == 408 && keyed && attempt < max_attempts &&
        sleep_for_retry(attempt, response.retry_after_seconds())) {
      continue;
    }
    // Everything else — success, client errors, 504 (a spent deadline will
    // not recover by waiting) — is the caller's to interpret.
    return response;
  }
}

json::Value Client::round_trip(const std::string& method, const std::string& target,
                               const json::Value& body,
                               const RequestOptions& options) {
  const std::string payload = body.is_null() ? std::string() : body.dump();
  const ClientResponse response = request(method, target, payload, options);
  json::Value parsed;
  try {
    parsed = response.json();
  } catch (const json::JsonError&) {
    throw std::runtime_error("HTTP " + std::to_string(response.status) +
                             " with non-JSON body from " + target);
  }
  if (!response.ok()) {
    std::string message = "HTTP " + std::to_string(response.status);
    if (parsed.contains("error")) message += ": " + parsed.at("error").as_string();
    throw std::runtime_error(message);
  }
  return parsed;
}

json::Value Client::create_session(const json::Value& spec) {
  // Not keyed: create is not replayed (a retried create that did execute
  // answers 409 for explicit ids, which the caller can disambiguate).
  return round_trip("POST", "/v1/sessions", spec);
}

json::Value Client::ask(const std::string& id, std::size_t k) {
  json::Object body;
  body["k"] = json::Value(k);
  return round_trip("POST", "/v1/sessions/" + id + "/ask",
                    json::Value(std::move(body)), keyed_options());
}

json::Value Client::tell(const std::string& id, const json::Value& body) {
  return round_trip("POST", "/v1/sessions/" + id + "/tell", body, keyed_options());
}

json::Value Client::report(const std::string& id) {
  return round_trip("GET", "/v1/sessions/" + id + "/report", json::Value());
}

json::Value Client::close_session(const std::string& id) {
  return round_trip("DELETE", "/v1/sessions/" + id, json::Value());
}

json::Value Client::fleet_status() {
  return round_trip("GET", "/v1/fleet", json::Value());
}

json::Value Client::drive_session(const std::string& id, const json::Value& body) {
  return round_trip("POST", "/v1/sessions/" + id + "/drive", body, keyed_options());
}

std::string Client::metrics() {
  const ClientResponse response = request("GET", "/metrics");
  if (!response.ok()) {
    throw std::runtime_error("GET /metrics -> HTTP " + std::to_string(response.status));
  }
  return response.body;
}

bool Client::healthy() {
  try {
    return request("GET", "/healthz").ok();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace tunekit::net
