#pragma once
// Minimal dependency-free HTTP/1.1 message layer for the remote tuning
// server: request/response types, an incremental request parser with hard
// byte limits (the first line of defense against untrusted input), and the
// matching serializers. No sockets here — the parser consumes bytes from
// anywhere, which is what makes it unit-testable byte by byte.
//
// Scope is deliberately the subset a JSON API needs: methods with optional
// Content-Length bodies, keep-alive, Expect: 100-continue. Chunked
// transfer-encoding is answered with 501 rather than implemented.

#include <cstddef>
#include <map>
#include <string>

#include "common/json.hpp"

namespace tunekit::net {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase as received)
  std::string path;     ///< request target without the query string
  std::string query;    ///< raw query string ("" when absent)
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  /// Header fields, keys lower-cased (field names are case-insensitive).
  std::map<std::string, std::string> headers;
  std::string body;

  /// nullptr when absent; `name` must be lower-case.
  const std::string* header(const std::string& name) const;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or HTTP/1.0
  /// without "keep-alive") turns it off.
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Force "Connection: close" regardless of what the client asked for.
  bool close = false;
  /// Emit a "Retry-After: N" header (seconds) when > 0 — transient refusals
  /// (degraded storage, open circuit breakers) tell clients when to return.
  int retry_after_seconds = 0;

  static HttpResponse json(int status, const json::Value& value);
  /// Convenience error body: {"error": message}.
  static HttpResponse error(int status, const std::string& message);
  static HttpResponse text(int status, std::string body,
                           std::string content_type = "text/plain; charset=utf-8");
};

/// Reason phrase for the status codes the server emits ("Unknown" otherwise).
const char* status_reason(int status);

/// Serialize a response. `keep_alive` decides the Connection header unless
/// the response forces close.
std::string serialize(const HttpResponse& response, bool keep_alive);

struct HttpLimits {
  /// Cap on the start line + headers, in bytes. Exceeding it is a 431.
  std::size_t max_header_bytes = 16 * 1024;
  /// Cap on the declared/received body size. Exceeding it is a 413.
  std::size_t max_body_bytes = 1 << 20;
};

/// Incremental HTTP/1.1 request parser. Feed it bytes as they arrive;
/// it buffers internally and yields complete requests. Bytes beyond one
/// complete request (a pipelined follow-up) are retained across reset().
class RequestParser {
 public:
  enum class Status {
    NeedMore,  ///< incomplete; feed more bytes
    Complete,  ///< request() is ready; call reset() before the next one
    Error,     ///< malformed/over-limit; error_status()/error_reason() say why
  };

  explicit RequestParser(HttpLimits limits = {});

  /// Append bytes and advance. Returns the parser state after consuming.
  Status feed(const char* data, std::size_t n);
  /// Advance on already-buffered bytes only (after reset(), a pipelined
  /// request may already be complete without another read).
  Status advance();

  /// Valid when the last feed()/advance() returned Complete.
  const HttpRequest& request() const { return request_; }

  /// Valid when the last feed()/advance() returned Error: the HTTP status to
  /// answer with (400, 413, 431, 501) and a human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// True once the header block is parsed (request line + headers valid) —
  /// the point where Expect: 100-continue should be answered.
  bool headers_complete() const { return state_ == State::Body; }

  /// Discard the completed request and start over on any leftover bytes.
  void reset();

  /// Bytes currently buffered (diagnostics/tests).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  enum class State { Headers, Body, Complete, Error };

  Status fail(int status, std::string reason);
  Status parse_headers();

  HttpLimits limits_;
  State state_ = State::Headers;
  std::string buffer_;
  HttpRequest request_;
  std::size_t content_length_ = 0;
  int error_status_ = 400;
  std::string error_reason_;
};

}  // namespace tunekit::net
