#include "net/session_manager.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <limits>
#include <vector>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "core/app_registry.hpp"
#include "obs/telemetry.hpp"
#include "robust/outcome.hpp"
#include "search/config.hpp"
#include "service/scheduler.hpp"
#include "service/space_codec.hpp"

namespace tunekit::net {

namespace {

bool valid_session_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  return std::all_of(id.begin(), id.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '-' || c == '_';
  });
}

json::Value named_config(const search::SearchSpace& space,
                         const search::Config& config) {
  json::Object obj;
  for (const auto& [name, value] : search::to_named(space, config)) {
    obj[name] = json::Value(value);
  }
  return json::Value(std::move(obj));
}

service::SessionOptions options_from_spec(const json::Value& spec,
                                          obs::Telemetry* telemetry) {
  service::SessionOptions o;
  o.max_evals = static_cast<std::size_t>(spec.number_or("max_evals", 100.0));
  o.n_init = static_cast<std::size_t>(spec.number_or("n_init", 5.0));
  o.seed = static_cast<std::uint64_t>(spec.number_or("seed", 1.0));
  o.deadline_seconds =
      spec.number_or("deadline_seconds", std::numeric_limits<double>::infinity());
  o.max_attempts = static_cast<std::size_t>(spec.number_or("max_attempts", 3.0));
  o.quarantine_after =
      static_cast<std::size_t>(spec.number_or("quarantine_after", 0.0));
  o.grid_real_levels =
      static_cast<std::size_t>(spec.number_or("grid_real_levels", 4.0));
  o.compact_every =
      static_cast<std::size_t>(spec.number_or("compact_every", 64.0));
  o.replay_cache_capacity =
      static_cast<std::size_t>(spec.number_or("replay_cache_capacity", 128.0));
  if (spec.contains("structure_online")) {
    o.structure_online = spec.at("structure_online").as_bool();
  }
  o.structure_cadence = static_cast<std::size_t>(
      spec.number_or("structure_cadence", static_cast<double>(o.structure_cadence)));
  o.structure_threshold =
      spec.number_or("structure_threshold", o.structure_threshold);
  o.structure_evidence = spec.number_or("structure_evidence", o.structure_evidence);
  o.structure_hysteresis = static_cast<std::size_t>(spec.number_or(
      "structure_hysteresis", static_cast<double>(o.structure_hysteresis)));
  o.structure_cooldown = static_cast<std::size_t>(spec.number_or(
      "structure_cooldown", static_cast<double>(o.structure_cooldown)));
  if (spec.contains("backend")) {
    o.backend = service::backend_from_string(spec.at("backend").as_string());
  }
  if (o.max_evals == 0) throw ApiError(422, "max_evals must be positive");
  o.telemetry = telemetry;
  return o;
}

/// Retry-After advertised on storage-degraded 503s: long enough for an
/// operator (or the self-healing resume) to act, short enough that a healthy
/// retry loop picks the session back up promptly.
constexpr int kStorageRetryAfterSeconds = 5;

void put_status(json::Object& obj, const service::TuningSession& session,
                bool with_best_config) {
  const auto status = session.status();
  obj["state"] = json::Value(to_string(status.state));
  obj["completed"] = json::Value(status.completed);
  obj["outstanding"] = json::Value(status.outstanding);
  obj["queued"] = json::Value(status.queued);
  obj["remaining"] = json::Value(status.remaining);
  if (status.best) {
    obj["best_value"] = json::Value(status.best->value);
    if (with_best_config) {
      obj["best_config"] = named_config(session.space(), status.best->config);
    }
  }
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)) {
  const std::size_t n = std::min<std::size_t>(
      256, std::max<std::size_t>(1, options_.shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  if (!options_.journal_dir.empty()) {
    if (shards_.size() == 1) {
      std::filesystem::create_directories(options_.journal_dir);
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        std::filesystem::create_directories(
            std::filesystem::path(options_.journal_dir) /
            ("shard-" + std::to_string(i)));
      }
    }
  }
}

SessionManager::Shard& SessionManager::shard_for(const std::string& id) {
  return *shards_[common::shard_of(id, shards_.size())];
}

const SessionManager::Shard& SessionManager::shard_for(const std::string& id) const {
  return *shards_[common::shard_of(id, shards_.size())];
}

std::string SessionManager::journal_dir(const std::string& id) const {
  if (shards_.size() == 1) return options_.journal_dir;
  return (std::filesystem::path(options_.journal_dir) /
          ("shard-" + std::to_string(common::shard_of(id, shards_.size()))))
      .string();
}

std::string SessionManager::journal_path(const std::string& id) const {
  return (std::filesystem::path(journal_dir(id)) / (id + ".journal.jsonl"))
      .string();
}

std::string SessionManager::spec_path(const std::string& id) const {
  return (std::filesystem::path(journal_dir(id)) / (id + ".spec.json")).string();
}

std::vector<std::shared_ptr<SessionManager::Entry>> SessionManager::all_entries()
    const {
  std::vector<std::shared_ptr<Entry>> entries;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->map) entries.push_back(entry);
  }
  return entries;
}

void SessionManager::count(const char* name) {
  if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
    options_.telemetry->metrics().counter(name).inc();
  }
}

// Build the entry's space + session from its spec. Entry mutex held by the
// caller. `resume_from_journal` distinguishes first creation from a
// re-materialization (after eviction or a server restart).
void SessionManager::materialize(Entry& entry, bool resume_from_journal) {
  const json::Value& spec = entry.spec;
  try {
    if (spec.contains("app")) {
      const auto seed = static_cast<std::uint64_t>(spec.number_or("seed", 1.0));
      entry.app = core::make_builtin_app(spec.at("app").as_string(), seed).app;
      entry.space = &entry.app->space();
    } else if (spec.contains("space")) {
      entry.owned_space = std::make_unique<search::SearchSpace>(
          service::space_from_json(spec.at("space")));
      entry.space = entry.owned_space.get();
    } else {
      throw ApiError(422, "session spec needs an \"app\" name or a \"space\" spec");
    }
    auto options = options_from_spec(spec, options_.telemetry);
    options.io = options_.io;
    options.rotate_bytes = options_.rotate_bytes;
    // Storage events (segment rotations) land in the entry's flight
    // recorder. The recorder is a member of the entry and the session (which
    // holds the hook) never outlives it.
    obs::FlightRecorder* recorder = &entry.recorder;
    options.event_hook = [recorder](std::string_view kind, std::string_view detail) {
      recorder->record(kind, detail);
    };
    const std::string journal =
        options_.journal_dir.empty() ? std::string() : journal_path(entry.id);
    if (resume_from_journal && !journal.empty()) {
      entry.session = service::TuningSession::resume(*entry.space, options, journal);
      entry.recorder.record("resume", "re-materialized from journal");
      count("tunekit_sessions_resumed_total");
    } else {
      entry.session =
          std::make_unique<service::TuningSession>(*entry.space, options, journal);
      entry.recorder.record("create", "session materialized");
    }
  } catch (const ApiError&) {
    throw;
  } catch (const json::JsonError& e) {
    throw ApiError(422, e.what());
  } catch (const std::invalid_argument& e) {
    throw ApiError(422, e.what());
  } catch (const std::exception& e) {
    // Unknown app names, unreadable journals, ...: the client can fix these.
    throw ApiError(resume_from_journal ? 500 : 422, e.what());
  }
}

void SessionManager::storage_degraded(Entry& entry, const std::exception& err) {
  entry.recorder.record("poison", err.what());
  log_error("SessionManager: storage poisoned for session '", entry.id,
            "': ", err.what());
  // The black box earns its keep here: dump everything that led up to the
  // poisoning while it is still in the ring.
  const std::string dump = entry.recorder.format_dump();
  if (!dump.empty()) {
    log_error("SessionManager: flight recorder for '", entry.id, "':\n", dump);
  }
  // Self-heal: the poisoned handle is useless, but the journal holds every
  // acked record up to the failed fsync — drop the in-memory session and let
  // the next touch resume from disk. Only this session degrades; the 503
  // tells the client exactly that.
  entry.session.reset();
  entry.app.reset();
  entry.owned_space.reset();
  entry.space = nullptr;
  count("tunekit_sessions_poisoned_total");
  throw ApiError(503,
                 "session '" + entry.id + "' storage degraded: " +
                     std::string(err.what()),
                 kStorageRetryAfterSeconds);
}

json::Value SessionManager::create(const json::Value& spec) {
  if (!spec.is_object()) throw ApiError(400, "session spec must be a JSON object");

  std::string id;
  if (spec.contains("id")) {
    if (!spec.at("id").is_string() || !valid_session_id(spec.at("id").as_string())) {
      throw ApiError(422,
                     "session id must be 1-64 characters of [A-Za-z0-9_-]");
    }
    id = spec.at("id").as_string();
  }

  if (known_.load(std::memory_order_relaxed) >= options_.max_sessions) {
    throw ApiError(429, "session limit reached (" +
                            std::to_string(options_.max_sessions) + ")");
  }

  auto entry = std::make_shared<Entry>();
  bool inserted = false;
  // Generated ids come from one atomic counter; each candidate id hashes to
  // its own shard, so only that shard's lock is taken per attempt.
  while (!inserted) {
    if (id.empty()) {
      id = "s" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
    }
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const bool taken = shard.map.count(id) > 0 ||
                       (!options_.journal_dir.empty() &&
                        std::filesystem::exists(spec_path(id)));
    if (taken) {
      if (spec.contains("id")) {
        throw ApiError(409, "session '" + id + "' already exists");
      }
      id.clear();  // collision with a generated id: draw the next one
      continue;
    }
    entry->id = id;
    entry->spec = spec;
    entry->spec.as_object()["id"] = json::Value(id);
    entry->last_used = std::chrono::steady_clock::now();
    shard.map[id] = entry;
    known_.fetch_add(1, std::memory_order_relaxed);
    inserted = true;
  }

  try {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    materialize(*entry, /*resume_from_journal=*/false);
    if (!options_.journal_dir.empty()) {
      // The sidecar is what makes the id resumable after a restart: it holds
      // everything needed to rebuild the space and options.
      json::save_atomic(spec_path(id), entry->spec);
    }
  } catch (...) {
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.erase(id) > 0) {
      known_.fetch_sub(1, std::memory_order_relaxed);
    }
    throw;
  }

  count("tunekit_sessions_created_total");
  evict_excess();

  json::Object body;
  body["id"] = json::Value(id);
  body["backend"] = json::Value(
      std::string(to_string(entry->session->options().backend)));
  body["space_size"] = json::Value(entry->space->size());
  body["max_evals"] = json::Value(entry->session->options().max_evals);
  body["state"] = json::Value(to_string(entry->session->state()));
  return json::Value(std::move(body));
}

std::shared_ptr<SessionManager::Entry> SessionManager::find_or_load(
    const std::string& id) {
  if (!valid_session_id(id)) {
    throw ApiError(404, "no session '" + id + "'");
  }
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    it->second->last_used = std::chrono::steady_clock::now();
    return it->second;
  }
  // Unknown in memory: resumable from a spec sidecar written before a
  // restart?
  if (options_.journal_dir.empty() || !std::filesystem::exists(spec_path(id))) {
    throw ApiError(404, "no session '" + id + "'");
  }
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  try {
    entry->spec = json::load(spec_path(id));
  } catch (const std::exception& e) {
    throw ApiError(500, "session '" + id + "' spec unreadable: " + e.what());
  }
  entry->last_used = std::chrono::steady_clock::now();
  shard.map[id] = entry;
  known_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

std::optional<json::Value> SessionManager::replayed_locked(Entry& entry,
                                                           const std::string& key) {
  if (key.empty()) return std::nullopt;
  const auto cached = entry.session->replayed_rpc(key);
  if (!cached) return std::nullopt;
  count(obs::metric::kReplayHits);
  // A replay must not look like a second execution in the trace: the
  // handler span gets a replayed=true event instead of a child span tree
  // (no session work runs), and the flight recorder notes the hit.
  if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
    options_.telemetry->add_event(obs::Telemetry::current_span(), "replayed",
                                  "key=" + key);
  }
  entry.recorder.record("replay", "key=" + key);
  log_info("SessionManager: replayed response for idempotency key '", key,
           "' on session '", entry.id, "'");
  return json::parse(*cached);
}

void SessionManager::remember_locked(Entry& entry, const std::string& key,
                                     const json::Value& reply) {
  if (key.empty()) return;
  try {
    entry.session->remember_rpc(key, reply.dump());
  } catch (const service::StorePoisonedError& e) {
    // The operation this response describes is already durable (its own
    // records fsynced before we got here); degrading now would make the
    // client retry an rpc that *did* happen. A later retry of this key may
    // re-execute — the session's id-based idempotence absorbs that.
    log_error("SessionManager: rpc record for key '", key,
              "' lost to poisoned store on session '", entry.id, "': ", e.what());
  }
}

json::Value SessionManager::ask(const std::string& id, std::size_t k,
                                const std::string& idempotency_key) {
  auto entry = find_or_load(id);
  json::Value reply;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
    if (auto replayed = replayed_locked(*entry, idempotency_key)) return *replayed;
    std::vector<service::Candidate> batch;
    try {
      batch = entry->session->ask(k);
    } catch (const service::StorePoisonedError& e) {
      storage_degraded(*entry, e);
    }
    json::Array candidates;
    for (const auto& c : batch) {
      json::Object cand;
      cand["id"] = json::Value(static_cast<double>(c.id));
      cand["attempt"] = json::Value(c.attempt);
      cand["config"] = named_config(*entry->space, c.config);
      candidates.emplace_back(std::move(cand));
    }
    json::Object body;
    body["id"] = json::Value(id);
    body["candidates"] = json::Value(std::move(candidates));
    put_status(body, *entry->session, /*with_best_config=*/false);
    reply = json::Value(std::move(body));
    remember_locked(*entry, idempotency_key, reply);
    entry->recorder.record("ask", "k=" + std::to_string(k) + " issued=" +
                                      std::to_string(batch.size()));
  }
  count("tunekit_session_asks_total");
  evict_excess();
  return reply;
}

json::Value SessionManager::tell(const std::string& id, const json::Value& body,
                                 const std::string& idempotency_key) {
  if (!body.is_object()) throw ApiError(400, "tell body must be a JSON object");
  auto entry = find_or_load(id);
  json::Object reply;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
    if (auto replayed = replayed_locked(*entry, idempotency_key)) return *replayed;
    service::TuningSession& session = *entry->session;

    try {
      bool accepted = true;
      robust::EvalOutcome outcome = robust::EvalOutcome::Ok;
      if (body.contains("outcome")) {
        outcome = robust::outcome_from_string(body.at("outcome").as_string());
      }
      if (body.contains("config")) {
        // Unsolicited observation (warm-start point measured elsewhere).
        search::NamedConfig named;
        for (const auto& [name, v] : body.at("config").as_object()) {
          if (!entry->space->has(name)) {
            throw ApiError(422, "unknown parameter '" + name + "'");
          }
          named[name] = v.as_number();
        }
        if (!body.contains("value")) throw ApiError(422, "observation needs a value");
        session.observe(search::from_named(*entry->space, named),
                        body.at("value").as_number(),
                        body.number_or("cost_seconds", 0.0));
      } else if (body.contains("id")) {
        const auto eval_id = static_cast<std::uint64_t>(body.at("id").as_number());
        // Optional provenance: which fleet node/machine ran the evaluation.
        std::string node;
        if (body.contains("node") && body.at("node").is_string()) {
          node = body.at("node").as_string();
        }
        if (robust::is_failure(outcome)) {
          accepted = session.tell_failure(eval_id, outcome, node);
        } else {
          if (!body.contains("value")) throw ApiError(422, "tell needs a value");
          const double value = body.at("value").is_null()
                                   ? std::numeric_limits<double>::quiet_NaN()
                                   : body.at("value").as_number();
          accepted = session.tell(eval_id, value, body.number_or("cost_seconds", 0.0),
                                  body.number_or("noise", 0.0),
                                  body.number_or("duration_ms", 0.0),
                                  static_cast<int>(body.number_or("worker_slot", -1.0)),
                                  node);
        }
      } else {
        throw ApiError(422, "tell needs an \"id\" or a \"config\"");
      }
      reply["accepted"] = json::Value(accepted);
    } catch (const ApiError&) {
      throw;
    } catch (const service::StorePoisonedError& e) {
      storage_degraded(*entry, e);
    } catch (const json::JsonError& e) {
      throw ApiError(422, e.what());
    } catch (const std::invalid_argument& e) {
      throw ApiError(422, e.what());
    }
    reply["id"] = json::Value(id);
    put_status(reply, session, /*with_best_config=*/false);
    json::Value out(std::move(reply));
    remember_locked(*entry, idempotency_key, out);
    entry->recorder.record("tell", body.contains("outcome")
                                       ? "outcome=" + body.at("outcome").as_string()
                                       : std::string("outcome=ok"));
    count("tunekit_session_tells_total");
    return out;
  }
}

json::Value SessionManager::report(const std::string& id) {
  auto entry = find_or_load(id);
  json::Object body;
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
  body["id"] = json::Value(id);
  body["backend"] = json::Value(
      std::string(to_string(entry->session->options().backend)));
  body["max_evals"] = json::Value(entry->session->options().max_evals);
  body["space_size"] = json::Value(entry->space->size());
  put_status(body, *entry->session, /*with_best_config=*/true);
  body["metrics"] = entry->session->metrics().to_json();
  return json::Value(std::move(body));
}

json::Value SessionManager::structure(const std::string& id) {
  auto entry = find_or_load(id);
  json::Object body;
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
  body["id"] = json::Value(id);
  const json::Value snapshot = entry->session->structure_snapshot();
  body["enabled"] = json::Value(!snapshot.is_null());
  body["snapshot"] = snapshot;
  return json::Value(std::move(body));
}

json::Value SessionManager::drive(
    const std::string& id, const std::shared_ptr<robust::EvalBackend>& backend,
    const json::Value& body, const std::string& idempotency_key,
    double deadline_seconds) {
  if (!backend) throw ApiError(503, "no evaluation backend configured");
  if (!backend->healthy()) throw ApiError(503, "evaluation backend unavailable");
  // The budget is anchored *before* the entry lock: a drive that spends its
  // whole deadline waiting behind another drive must not then run unbounded.
  const auto deadline =
      std::isfinite(deadline_seconds)
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(deadline_seconds))
          : std::chrono::steady_clock::time_point::max();
  auto entry = find_or_load(id);
  json::Value out;
  {
    // The entry lock is held for the whole run: drive is a synchronous,
    // exclusive operation on the session (concurrent ask/tell on the same id
    // block until it finishes — same contract as any other request, just
    // longer).
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
    if (auto replayed = replayed_locked(*entry, idempotency_key)) return *replayed;
    service::SchedulerOptions sched;
    sched.backend = backend;
    sched.n_threads =
        static_cast<std::size_t>(body.number_or("n_threads", 0.0));
    sched.batch_size =
        static_cast<std::size_t>(body.number_or("batch_size", 0.0));
    sched.telemetry = options_.telemetry;
    sched.deadline = deadline;
    entry->recorder.record("drive", "run started");
    try {
      service::EvalScheduler(sched).run(*entry->session);
    } catch (const service::StorePoisonedError& e) {
      storage_degraded(*entry, e);
    }
    entry->recorder.record("drive", "run finished");
    json::Object reply;
    reply["id"] = json::Value(id);
    put_status(reply, *entry->session, /*with_best_config=*/true);
    reply["metrics"] = entry->session->metrics().to_json();
    out = json::Value(std::move(reply));
    remember_locked(*entry, idempotency_key, out);
  }
  count("tunekit_sessions_driven_total");
  evict_excess();
  return out;
}

json::Value SessionManager::close(const std::string& id) {
  auto entry = find_or_load(id);
  json::Object body;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->session) materialize(*entry, /*resume_from_journal=*/true);
    try {
      entry->session->close();
    } catch (const service::StorePoisonedError& e) {
      storage_degraded(*entry, e);
    }
    body["id"] = json::Value(id);
    put_status(body, *entry->session, /*with_best_config=*/true);
    entry->recorder.record("close", "graceful close");
    entry->session.reset();
    entry->app.reset();
    entry->owned_space.reset();
    entry->space = nullptr;
  }
  {
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.erase(id) > 0) {
      known_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  count("tunekit_sessions_closed_total");
  return json::Value(std::move(body));
}

json::Value SessionManager::list() const {
  const auto entries = all_entries();
  json::Array sessions;
  for (const auto& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    json::Object obj;
    obj["id"] = json::Value(entry->id);
    obj["resident"] = json::Value(entry->session != nullptr);
    if (entry->session) {
      obj["state"] = json::Value(to_string(entry->session->state()));
      obj["completed"] = json::Value(entry->session->completed());
    }
    sessions.emplace_back(std::move(obj));
  }
  json::Object body;
  body["sessions"] = json::Value(std::move(sessions));
  return json::Value(std::move(body));
}

json::Value SessionManager::debug(const std::string& id) {
  auto entry = find_or_load(id);
  json::Object body;
  std::lock_guard<std::mutex> lock(entry->mutex);
  body["id"] = json::Value(id);
  body["resident"] = json::Value(entry->session != nullptr);
  if (entry->session) {
    put_status(body, *entry->session, /*with_best_config=*/false);
  }
  body["flight_recorder"] = entry->recorder.to_json();
  return json::Value(std::move(body));
}

void SessionManager::note(const std::string& id, std::string_view kind,
                          std::string_view detail) {
  try {
    auto entry = find_or_load(id);
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->recorder.record(kind, detail);
  } catch (const ApiError&) {
    // Unknown session: nothing to annotate.
  }
}

void SessionManager::flush_all() {
  for (const auto& entry : all_entries()) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->session) continue;
    try {
      entry->session->flush_metrics();
    } catch (const service::StorePoisonedError& e) {
      // Drain must keep draining: note the poisoned store and move on.
      log_error("SessionManager: flush skipped for poisoned session '",
                entry->id, "': ", e.what());
    }
  }
}

std::size_t SessionManager::resident() const {
  std::size_t n = 0;
  for (const auto& entry : all_entries()) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->session) ++n;
  }
  return n;
}

// LRU-evict idle journaled sessions down to max_resident: flush the metrics
// snapshot, destroy the session (its journal is the durable state), and let
// the next touch resume it. Busy entries (mutex held by a live request) are
// skipped — eviction must never block or deadlock a request.
void SessionManager::evict_excess() {
  if (options_.journal_dir.empty()) return;
  auto entries = all_entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a->last_used < b->last_used; });
  // Count residents with a non-blocking pass; stale counts only make
  // eviction slightly late, never wrong.
  std::size_t live = 0;
  for (const auto& entry : entries) {
    std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock() || entry->session) ++live;
  }
  if (live <= options_.max_resident) return;
  for (const auto& entry : entries) {
    if (live <= options_.max_resident) break;
    std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock() || !entry->session) continue;
    entry->session->flush_metrics();
    entry->session.reset();
    entry->app.reset();
    entry->owned_space.reset();
    entry->space = nullptr;
    --live;
    entry->recorder.record("evict", "idle LRU eviction");
    count("tunekit_sessions_evicted_total");
    log_debug("SessionManager: evicted idle session '", entry->id, "'");
  }
}

}  // namespace tunekit::net
