#pragma once
// HttpServer: a small poll()-based HTTP/1.1 server for the remote tuning
// API. One event-loop thread owns every socket (non-blocking, bounded
// per-connection buffers); a fixed pool of worker threads runs the handler
// so a slow session operation never stalls the loop. Backpressure is
// first-class: over max_connections new sockets get a best-effort 503 and
// are closed, a full worker queue answers 429 immediately, request bodies
// and headers are capped by HttpLimits (413/431), and connections idle past
// request_timeout_seconds are timed out (408 mid-request, silent close when
// between requests).
//
// Shutdown comes in two flavors: shutdown() (request + join, for tests) and
// request_shutdown(), which is async-signal-safe — a SIGTERM handler can
// call it directly; the loop then stops accepting, drains in-flight requests
// for up to drain_timeout_seconds, and exits. wait() joins from the thread
// that started the server.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  /// Concurrent connections; excess sockets get a best-effort 503 + close.
  std::size_t max_connections = 256;
  /// Header/body byte caps, enforced by the request parser (431/413).
  HttpLimits limits;
  /// Handler threads. The event loop never runs handlers itself.
  std::size_t worker_threads = 2;
  /// Parsed requests waiting for a worker; beyond this the reply is 429.
  /// Priority-0 requests (see `priority`) get 50% headroom on top — a tell
  /// carrying a paid-for result is shed only when the queue is truly gone.
  std::size_t max_queue = 64;
  /// Adaptive admission (CoDel-style): when the smoothed time jobs wait for
  /// a worker exceeds this target, new requests are shed with 503 + a
  /// Retry-After computed from the measured drain rate — the cliff at
  /// max_queue becomes a slope that reacts to *latency*, not just depth.
  /// Priority 2 sheds at half the target, priority 0 never delay-sheds.
  /// 0 disables delay-based shedding (cap-based 429s still apply).
  double queue_delay_target_seconds = 0.25;
  /// Admission priority per request: 0 = shed last, 1 = normal, 2 = shed
  /// first. Null classifies everything as 1. (RestApi::priority fits here.)
  std::function<int(const HttpRequest&)> priority;
  /// A connection idle longer than this is closed (408 mid-request).
  double request_timeout_seconds = 30.0;
  /// Trickle hardening, anchored at the *first byte* of each request (the
  /// idle timer above resets on every byte, so a slow-loris peer dribbling
  /// one byte per second never trips it). A request whose header block is
  /// older than header_timeout_seconds, or whose whole frame is older than
  /// body_timeout_seconds, is answered 408. 0 disables either check.
  double header_timeout_seconds = 10.0;
  double body_timeout_seconds = 20.0;
  /// After request_shutdown(): how long in-flight requests may finish
  /// before their connections are dropped.
  double drain_timeout_seconds = 5.0;
  /// HTTP server metrics (request counts/latency, connections, rejects).
  obs::Telemetry* telemetry = nullptr;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerOptions options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen, and start the event loop + workers. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }

  /// Async-signal-safe shutdown request: sets a flag and pokes the event
  /// loop via the self-pipe. Returns immediately.
  void request_shutdown();

  /// Block until the event loop has drained and every thread has exited.
  void wait();

  /// request_shutdown() + wait().
  void shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Connection;
  struct Job;

  void run_loop();
  void run_worker();
  void close_connection(std::uint64_t id);
  void handle_readable(std::uint64_t id);
  void handle_writable(std::uint64_t id);
  /// Queue `response` for `id` and try to flush it. `keep_alive` is the
  /// request's wish; the response (or parser state) can still force close.
  void enqueue_response(std::uint64_t id, const HttpResponse& response,
                        bool keep_alive);
  /// Advance a connection's parser on buffered bytes: dispatch complete
  /// requests, answer parse errors, send 100-continue interim replies.
  void pump_parser(std::uint64_t id);
  void observe_request(const char* method, int status, double seconds,
                       const std::string& trace_hex);

  ServerOptions options_;
  Handler handler_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] read by poll, [1] written

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Everything below is owned by the event-loop thread except the two
  // queues, which have their own locks.
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tunekit::net
