#pragma once
// Socket deadline utilities: every blocking network operation in tunekit
// goes through these so nothing can block unboundedly.
//
// The seed-era net::Client relied on SO_SNDTIMEO to bound its connect() —
// subtle, platform-dependent, and unavailable for the poll-driven fleet
// transport. A Deadline is an explicit steady-clock point carried through a
// whole operation (dial, then write, then read): each step polls with the
// *remaining* time, so a slow dial eats into the read budget instead of
// resetting it. Infinite deadlines are first-class (remaining() = +inf,
// poll timeout = -1).
//
// All helpers are EINTR-safe and SIGPIPE-safe (MSG_NOSIGNAL); none throw.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tunekit::net {

class Deadline {
 public:
  /// Expires `seconds` from now; infinity (or any non-finite/negative-free
  /// huge value) never expires.
  static Deadline after(double seconds);
  static Deadline infinite();

  /// Seconds left; 0 when expired, +inf when unbounded.
  double remaining_seconds() const;
  bool expired() const { return remaining_seconds() <= 0.0; }

  /// Milliseconds for poll(): -1 when unbounded, 0 when expired, else the
  /// remaining time rounded up (so a 0.4 ms remainder still polls).
  int poll_timeout_ms() const;

 private:
  bool unbounded_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// One socket-IO step's outcome, explicit about the four ways it can end.
struct IoResult {
  enum class Status { Ok, Eof, Timeout, Error };
  Status status = Status::Error;
  std::size_t n = 0;  ///< bytes transferred (Ok only)
  int err = 0;        ///< errno (Error only)

  bool ok() const { return status == Status::Ok; }
};

/// Dial host:port with a bounded non-blocking connect (numeric IPv4 address
/// or a name resolvable by getaddrinfo). Returns a connected blocking
/// CLOEXEC fd, or -1 with `error` describing why (including "connect timed
/// out" when the deadline expired mid-handshake).
int dial_tcp(const std::string& host, std::uint16_t port, const Deadline& deadline,
             std::string* error);

/// Write all of `data`, polling for writability under the deadline.
IoResult write_all(int fd, const char* data, std::size_t size,
                   const Deadline& deadline);

/// Read up to `size` bytes once the fd is readable. Status::Eof when the
/// peer closed, Status::Timeout when the deadline passed first.
IoResult read_some(int fd, char* buf, std::size_t size, const Deadline& deadline);

}  // namespace tunekit::net
