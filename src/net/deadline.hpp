#pragma once
// Socket deadline utilities: every blocking network operation in tunekit
// goes through these so nothing can block unboundedly.
//
// The seed-era net::Client relied on SO_SNDTIMEO to bound its connect() —
// subtle, platform-dependent, and unavailable for the poll-driven fleet
// transport. A Deadline is an explicit steady-clock point carried through a
// whole operation (dial, then write, then read): each step polls with the
// *remaining* time, so a slow dial eats into the read budget instead of
// resetting it. Infinite deadlines are first-class (remaining() = +inf,
// poll timeout = -1).
//
// All helpers are EINTR-safe and SIGPIPE-safe (MSG_NOSIGNAL); none throw.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tunekit::net {

class Deadline {
 public:
  /// Expires `seconds` from now; infinity (or any non-finite/negative-free
  /// huge value) never expires.
  static Deadline after(double seconds);
  static Deadline infinite();

  /// Seconds left; 0 when expired, +inf when unbounded.
  double remaining_seconds() const;
  bool expired() const { return remaining_seconds() <= 0.0; }

  /// Milliseconds for poll(): -1 when unbounded, 0 when expired, else the
  /// remaining time rounded up (so a 0.4 ms remainder still polls).
  int poll_timeout_ms() const;

 private:
  bool unbounded_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// One socket-IO step's outcome, explicit about the four ways it can end.
struct IoResult {
  enum class Status { Ok, Eof, Timeout, Error };
  Status status = Status::Error;
  std::size_t n = 0;  ///< bytes transferred (Ok only)
  int err = 0;        ///< errno (Error only)

  bool ok() const { return status == Status::Ok; }
};

/// Network fault-injection seam. When installed (tests only) every dial,
/// write, and read consults it first, so connection refusal, mid-frame
/// resets, and stalls can be scripted deterministically without a hostile
/// network. The three hooks answer "should this step fail now?":
///   refuse_connect  dial_tcp fails as if the peer sent RST
///   reset_write     write_all fails with ECONNRESET before sending
///   stall_read      read_some reports Timeout without touching the socket
/// A null hook (production) costs one relaxed atomic load per step.
class FaultNet {
 public:
  virtual ~FaultNet() = default;
  virtual bool refuse_connect(const std::string& host, std::uint16_t port) = 0;
  virtual bool reset_write(int fd) = 0;
  virtual bool stall_read(int fd) = 0;
  /// Cap on the bytes the next read_some may deliver on `fd`. SIZE_MAX (the
  /// default) leaves the read untouched; 0 forces an immediate Eof — the
  /// torn-response case, where the peer vanished mid-body after the reader
  /// already consumed part of the frame.
  virtual std::size_t clamp_read(int fd) {
    (void)fd;
    return static_cast<std::size_t>(-1);
  }
  /// Observed by dial_tcp on every successful connect with the new fd, so
  /// per-connection fault schedules (accept-then-stall) can track fds even
  /// as the OS reuses their numbers.
  virtual void on_connected(int fd) { (void)fd; }
};

/// Install (or clear, with nullptr) the process-wide fault hook. The caller
/// keeps ownership and must clear the hook before destroying it. Test-only.
void set_fault_net(FaultNet* hook);
FaultNet* fault_net();

/// Deterministic seeded FaultNet: each category fires on scripted 1-based
/// call indices (empty = never). Counters are per-instance, so a fresh
/// script starts a fresh schedule.
class ScriptedFaultNet final : public FaultNet {
 public:
  struct Script {
    std::vector<std::uint64_t> refuse_connect_at;
    std::vector<std::uint64_t> reset_write_at;
    std::vector<std::uint64_t> stall_read_at;
    /// Torn response: the `truncate_read_at`-th clamped read (1-based;
    /// 0 disables) delivers at most `truncate_read_bytes` bytes, and every
    /// later read *on that fd* reports Eof — the peer died mid-body, leaving
    /// the reader with a prefix it can never complete. Other connections are
    /// untouched, and a reconnect that reuses the fd number starts clean.
    std::uint64_t truncate_read_at = 0;
    std::size_t truncate_read_bytes = 0;
    /// Accept-then-stall: connections whose successful-dial index (1-based)
    /// appears here have every subsequent read stall — a peer that accepts
    /// and then never sends a byte (the slow-loris shape, seen from the
    /// client side).
    std::vector<std::uint64_t> stall_connect_at;
  };
  explicit ScriptedFaultNet(Script script) : script_(std::move(script)) {}

  bool refuse_connect(const std::string& host, std::uint16_t port) override;
  bool reset_write(int fd) override;
  bool stall_read(int fd) override;
  std::size_t clamp_read(int fd) override;
  void on_connected(int fd) override;

  std::uint64_t faults_injected() const { return faults_; }

 private:
  bool fires(const std::vector<std::uint64_t>& at, std::atomic<std::uint64_t>& counter);

  Script script_;
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> dials_{0};  ///< successful connects (on_connected)
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> clamp_reads_{0};
  std::atomic<int> truncated_fd_{-1};  ///< fd whose frame was torn (-1 = none)
  std::atomic<std::uint64_t> faults_{0};
  std::mutex stall_mutex_;
  std::vector<int> stalled_fds_;  ///< fds dialed at a stall_connect_at index
};

/// Dial host:port with a bounded non-blocking connect (numeric IPv4 address
/// or a name resolvable by getaddrinfo). Returns a connected blocking
/// CLOEXEC fd, or -1 with `error` describing why (including "connect timed
/// out" when the deadline expired mid-handshake).
int dial_tcp(const std::string& host, std::uint16_t port, const Deadline& deadline,
             std::string* error);

/// Write all of `data`, polling for writability under the deadline.
IoResult write_all(int fd, const char* data, std::size_t size,
                   const Deadline& deadline);

/// Read up to `size` bytes once the fd is readable. Status::Eof when the
/// peer closed, Status::Timeout when the deadline passed first.
IoResult read_some(int fd, char* buf, std::size_t size, const Deadline& deadline);

}  // namespace tunekit::net
