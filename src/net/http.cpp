#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

namespace tunekit::net {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  auto it = headers.find(name);
  return it == headers.end() ? nullptr : &it->second;
}

bool HttpRequest::keep_alive() const {
  const std::string* conn = header("connection");
  if (conn != nullptr) {
    const std::string v = lower(*conn);
    if (v.find("close") != std::string::npos) return false;
    if (v.find("keep-alive") != std::string::npos) return true;
  }
  return version != "HTTP/1.0";
}

HttpResponse HttpResponse::json(int status, const json::Value& value) {
  HttpResponse r;
  r.status = status;
  r.body = value.dump();
  r.body += '\n';
  return r;
}

HttpResponse HttpResponse::error(int status, const std::string& message) {
  json::Object obj;
  obj["error"] = json::Value(message);
  return json(status, json::Value(std::move(obj)));
}

HttpResponse HttpResponse::text(int status, std::string body, std::string content_type) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.content_type = std::move(content_type);
  return r;
}

const char* status_reason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serialize(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (response.retry_after_seconds > 0) {
    out += "Retry-After: " + std::to_string(response.retry_after_seconds) + "\r\n";
  }
  out += std::string("Connection: ") +
         (keep_alive && !response.close ? "keep-alive" : "close") + "\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

RequestParser::RequestParser(HttpLimits limits) : limits_(limits) {}

RequestParser::Status RequestParser::fail(int status, std::string reason) {
  state_ = State::Error;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return Status::Error;
}

RequestParser::Status RequestParser::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
  return advance();
}

RequestParser::Status RequestParser::advance() {
  if (state_ == State::Error) return Status::Error;
  if (state_ == State::Complete) return Status::Complete;
  if (state_ == State::Headers) {
    const Status s = parse_headers();
    if (s != Status::Complete) return s;  // NeedMore or Error
    // Headers done; fall through to the body.
  }
  if (buffer_.size() < content_length_) return Status::NeedMore;
  request_.body = buffer_.substr(0, content_length_);
  buffer_.erase(0, content_length_);
  state_ = State::Complete;
  return Status::Complete;
}

// Parse the start line + header block once it is fully buffered. Returns
// Complete when the header block is consumed (the caller then handles the
// body), NeedMore when the terminating blank line has not arrived yet.
RequestParser::Status RequestParser::parse_headers() {
  // Find the blank line ending the header block, scanning line by line so a
  // bare-LF client still works.
  std::size_t pos = 0;
  std::vector<std::pair<std::size_t, std::size_t>> line_spans;  // [begin, end)
  bool block_done = false;
  while (pos <= buffer_.size()) {
    const std::size_t line_begin = pos;
    std::size_t nl = buffer_.find('\n', pos);
    if (nl == std::string::npos) break;
    std::size_t line_end = nl;
    if (line_end > line_begin && buffer_[line_end - 1] == '\r') --line_end;
    if (line_end == line_begin) {  // blank line: end of header block
      pos = nl + 1;
      block_done = true;
      break;
    }
    line_spans.emplace_back(line_begin, line_end);
    pos = nl + 1;
  }
  if (!block_done) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return Status::NeedMore;
  }
  if (pos > limits_.max_header_bytes) {
    return fail(431, "header block exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }
  if (line_spans.empty()) return fail(400, "missing request line");

  // Request line: METHOD SP target SP HTTP/x.y
  const std::string start(buffer_, line_spans[0].first,
                          line_spans[0].second - line_spans[0].first);
  const std::size_t sp1 = start.find(' ');
  const std::size_t sp2 = start.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return fail(400, "malformed request line");
  }
  request_.method = start.substr(0, sp1);
  std::string target = start.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = start.substr(sp2 + 1);
  if (request_.method.empty() || target.empty() || target[0] != '/') {
    return fail(400, "malformed request target");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version '" + request_.version + "'");
  }
  const std::size_t q = target.find('?');
  if (q != std::string::npos) {
    request_.query = target.substr(q + 1);
    target.erase(q);
  }
  request_.path = std::move(target);

  // Header fields.
  for (std::size_t i = 1; i < line_spans.size(); ++i) {
    const std::string line(buffer_, line_spans[i].first,
                           line_spans[i].second - line_spans[i].first);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    request_.headers[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }

  if (request_.header("transfer-encoding") != nullptr) {
    return fail(501, "transfer-encoding is not supported");
  }
  content_length_ = 0;
  if (const std::string* cl = request_.header("content-length")) {
    // Strict digits-only parse: a negative, empty, or junk length is a 400.
    if (cl->empty() || cl->size() > 12 ||
        !std::all_of(cl->begin(), cl->end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
      return fail(400, "malformed content-length");
    }
    content_length_ = static_cast<std::size_t>(std::stoull(*cl));
    if (content_length_ > limits_.max_body_bytes) {
      return fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                           " bytes");
    }
  }

  buffer_.erase(0, pos);
  state_ = State::Body;
  return Status::Complete;
}

void RequestParser::reset() {
  state_ = State::Headers;
  request_ = HttpRequest{};
  content_length_ = 0;
  error_status_ = 400;
  error_reason_.clear();
}

}  // namespace tunekit::net
