#include "net/rest_api.hpp"

#include <vector>

#include "fleet/dispatcher.hpp"
#include "net/session_manager.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {

namespace {

/// Split "/v1/sessions/s1/ask" into {"v1","sessions","s1","ask"}.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t end = path.find('/', pos);
    if (end == std::string::npos) end = path.size();
    segments.push_back(path.substr(pos, end - pos));
    pos = end;
  }
  return segments;
}

json::Value parse_body(const HttpRequest& request) {
  if (request.body.empty()) return json::Value(json::Object{});
  try {
    return json::parse(request.body);
  } catch (const json::JsonError& e) {
    throw ApiError(400, std::string("malformed JSON body: ") + e.what());
  }
}

}  // namespace

RestApi::RestApi(SessionManager& manager, obs::Telemetry* telemetry,
                 std::shared_ptr<fleet::FleetDispatcher> fleet)
    : manager_(manager), telemetry_(telemetry), fleet_(std::move(fleet)) {}

HttpResponse RestApi::handle(const HttpRequest& request) {
  try {
    return route(request);
  } catch (const ApiError& e) {
    HttpResponse response = HttpResponse::error(e.status(), e.what());
    response.retry_after_seconds = e.retry_after_seconds();
    return response;
  } catch (const json::JsonError& e) {
    return HttpResponse::error(400, e.what());
  } catch (const std::exception& e) {
    return HttpResponse::error(500, e.what());
  }
}

HttpResponse RestApi::route(const HttpRequest& request) {
  const auto seg = split_path(request.path);

  if (request.path == "/healthz") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    json::Object body;
    body["status"] = json::Value(std::string("ok"));
    return HttpResponse::json(200, json::Value(std::move(body)));
  }

  if (request.path == "/metrics") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    static obs::MetricsRegistry empty_registry;
    const obs::MetricsRegistry& metrics =
        telemetry_ != nullptr ? telemetry_->metrics() : empty_registry;
    return HttpResponse::text(200, obs::prometheus_text(metrics),
                              "text/plain; version=0.0.4; charset=utf-8");
  }

  if (seg.size() == 2 && seg[0] == "v1" && seg[1] == "fleet") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    if (!fleet_) return HttpResponse::error(503, "no fleet dispatcher running");
    return HttpResponse::json(200, fleet_->status_json());
  }

  if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "sessions") {
    if (seg.size() == 2) {
      if (request.method == "POST") {
        return HttpResponse::json(201, manager_.create(parse_body(request)));
      }
      if (request.method == "GET") {
        return HttpResponse::json(200, manager_.list());
      }
      return HttpResponse::error(405, "use POST or GET");
    }
    const std::string& id = seg[2];
    if (seg.size() == 3) {
      if (request.method == "GET") {
        return HttpResponse::json(200, manager_.report(id));
      }
      if (request.method == "DELETE") {
        return HttpResponse::json(200, manager_.close(id));
      }
      return HttpResponse::error(405, "use GET or DELETE");
    }
    if (seg.size() == 4) {
      if (seg[3] == "ask") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        const json::Value body = parse_body(request);
        const double k = body.number_or("k", 1.0);
        if (!(k >= 1.0) || k > 1024.0) {
          throw ApiError(422, "\"k\" must be in [1, 1024]");
        }
        return HttpResponse::json(200,
                                  manager_.ask(id, static_cast<std::size_t>(k)));
      }
      if (seg[3] == "tell") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        return HttpResponse::json(200, manager_.tell(id, parse_body(request)));
      }
      if (seg[3] == "report") {
        if (request.method != "GET") return HttpResponse::error(405, "use GET");
        return HttpResponse::json(200, manager_.report(id));
      }
      if (seg[3] == "drive") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        if (!fleet_) return HttpResponse::error(503, "no fleet dispatcher running");
        // Degraded-mode policy: drive queues a whole session's worth of work,
        // so it is shed first — ask/tell stay available for clients running
        // their own evaluations.
        if (fleet_->degraded()) {
          if (telemetry_ != nullptr && telemetry_->enabled()) {
            telemetry_->metrics().counter(obs::metric::kBreakerShed).inc();
          }
          throw ApiError(503,
                         "fleet degraded: every node's circuit breaker is open",
                         5);
        }
        return HttpResponse::json(200,
                                  manager_.drive(id, fleet_, parse_body(request)));
      }
    }
  }

  return HttpResponse::error(404, "no route for " + request.method + " " +
                                      request.path);
}

}  // namespace tunekit::net
