#include "net/rest_api.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fleet/dispatcher.hpp"
#include "net/session_manager.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {

namespace {

/// Split "/v1/sessions/s1/ask" into {"v1","sessions","s1","ask"}.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t end = path.find('/', pos);
    if (end == std::string::npos) end = path.size();
    segments.push_back(path.substr(pos, end - pos));
    pos = end;
  }
  return segments;
}

json::Value parse_body(const HttpRequest& request) {
  if (request.body.empty()) return json::Value(json::Object{});
  try {
    return json::parse(request.body);
  } catch (const json::JsonError& e) {
    throw ApiError(400, std::string("malformed JSON body: ") + e.what());
  }
}

/// The request's Idempotency-Key ("" when absent). Keys are opaque client
/// tokens; the only contract is printable ASCII and a bound that keeps the
/// journal record small.
std::string idempotency_key(const HttpRequest& request) {
  const std::string* key = request.header("idempotency-key");
  if (key == nullptr) return {};
  if (key->empty() || key->size() > 128 ||
      !std::all_of(key->begin(), key->end(), [](unsigned char c) {
        return c >= 0x21 && c < 0x7f;
      })) {
    throw ApiError(422,
                   "Idempotency-Key must be 1-128 printable ASCII characters");
  }
  return *key;
}

/// Remaining end-to-end budget from X-Tunekit-Deadline (seconds, decimal);
/// infinity when the header is absent. An already-spent budget is rejected
/// here — before any dispatch — as a 504.
double deadline_budget(const HttpRequest& request) {
  const std::string* header = request.header("x-tunekit-deadline");
  if (header == nullptr) return std::numeric_limits<double>::infinity();
  double budget = 0.0;
  try {
    std::size_t consumed = 0;
    budget = std::stod(*header, &consumed);
    if (consumed != header->size()) throw std::invalid_argument(*header);
  } catch (const std::exception&) {
    throw ApiError(400, "X-Tunekit-Deadline must be a number of seconds");
  }
  if (std::isnan(budget)) {
    throw ApiError(400, "X-Tunekit-Deadline must be a number of seconds");
  }
  return budget;
}

}  // namespace

int RestApi::priority(const HttpRequest& request) {
  // tell carries the result of an evaluation someone already paid for —
  // shedding it wastes real HPC time, so it outranks everything. drive
  // queues a whole session's worth of work and is shed first.
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    return request.path.size() >= n &&
           request.path.compare(request.path.size() - n, n, suffix) == 0;
  };
  if (ends_with("/tell")) return 0;
  if (ends_with("/drive")) return 2;
  return 1;
}

RestApi::RestApi(SessionManager& manager, obs::Telemetry* telemetry,
                 std::shared_ptr<fleet::FleetDispatcher> fleet)
    : manager_(manager), telemetry_(telemetry), fleet_(std::move(fleet)) {}

HttpResponse RestApi::handle(const HttpRequest& request) {
  // One handler span per request, adopted into the client's trace when the
  // request carries a traceparent header. While it is the thread's current
  // span every downstream span (session ops, scheduler batches, fleet rpcs)
  // hangs from it, so the whole server side shows up as one subtree of the
  // client's trace.
  obs::TraceContext inbound;
  if (const std::string* header = request.header("traceparent")) {
    if (auto parsed = obs::parse_traceparent(*header)) inbound = *parsed;
  }
  obs::ScopedSpan span(telemetry_, "server." + request.method + " " + request.path,
                       inbound, "http");
  try {
    return route(request);
  } catch (const ApiError& e) {
    HttpResponse response = HttpResponse::error(e.status(), e.what());
    response.retry_after_seconds = e.retry_after_seconds();
    return response;
  } catch (const json::JsonError& e) {
    return HttpResponse::error(400, e.what());
  } catch (const std::exception& e) {
    return HttpResponse::error(500, e.what());
  }
}

HttpResponse RestApi::route(const HttpRequest& request) {
  const auto seg = split_path(request.path);

  if (request.path == "/healthz") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    json::Object body;
    body["status"] = json::Value(std::string("ok"));
    return HttpResponse::json(200, json::Value(std::move(body)));
  }

  if (request.path == "/metrics") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    static obs::MetricsRegistry empty_registry;
    // The Telemetry overload adds the dropped-span counter and trace-id
    // exemplars on histogram buckets.
    const std::string text = telemetry_ != nullptr
                                 ? obs::prometheus_text(*telemetry_)
                                 : obs::prometheus_text(empty_registry);
    return HttpResponse::text(200, text,
                              "text/plain; version=0.0.4; charset=utf-8");
  }

  if (seg.size() == 3 && seg[0] == "v1" && seg[1] == "debug" &&
      seg[2] == "traces") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    if (telemetry_ == nullptr || !telemetry_->enabled()) {
      return HttpResponse::error(503, "telemetry disabled: no traces recorded");
    }
    return HttpResponse::json(200, obs::traces_json(*telemetry_));
  }

  if (seg.size() == 2 && seg[0] == "v1" && seg[1] == "fleet") {
    if (request.method != "GET") return HttpResponse::error(405, "use GET");
    if (!fleet_) return HttpResponse::error(503, "no fleet dispatcher running");
    return HttpResponse::json(200, fleet_->status_json());
  }

  if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "sessions") {
    if (seg.size() == 2) {
      if (request.method == "POST") {
        return HttpResponse::json(201, manager_.create(parse_body(request)));
      }
      if (request.method == "GET") {
        return HttpResponse::json(200, manager_.list());
      }
      return HttpResponse::error(405, "use POST or GET");
    }
    const std::string& id = seg[2];
    // Deadline gate for the session routes: a budget the queue already spent
    // is answered 504 here, before any session work — a dispatch that cannot
    // finish in time only wastes paid-for evaluation capacity.
    const double budget = deadline_budget(request);
    if (budget <= 0.0) {
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().counter(obs::metric::kDeadlineRejected).inc();
      }
      throw ApiError(504, "deadline expired before dispatch");
    }
    if (std::isfinite(budget) && telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics()
          .histogram(obs::metric::kDeadlineBudgetSeconds, obs::default_time_buckets())
          .observe(budget);
    }
    if (seg.size() == 3) {
      if (request.method == "GET") {
        return HttpResponse::json(200, manager_.report(id));
      }
      if (request.method == "DELETE") {
        return HttpResponse::json(200, manager_.close(id));
      }
      return HttpResponse::error(405, "use GET or DELETE");
    }
    if (seg.size() == 4) {
      if (seg[3] == "ask") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        const json::Value body = parse_body(request);
        const double k = body.number_or("k", 1.0);
        if (!(k >= 1.0) || k > 1024.0) {
          throw ApiError(422, "\"k\" must be in [1, 1024]");
        }
        return HttpResponse::json(
            200, manager_.ask(id, static_cast<std::size_t>(k),
                              idempotency_key(request)));
      }
      if (seg[3] == "tell") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        return HttpResponse::json(200, manager_.tell(id, parse_body(request),
                                                     idempotency_key(request)));
      }
      if (seg[3] == "report") {
        if (request.method != "GET") return HttpResponse::error(405, "use GET");
        return HttpResponse::json(200, manager_.report(id));
      }
      if (seg[3] == "structure") {
        if (request.method != "GET") return HttpResponse::error(405, "use GET");
        return HttpResponse::json(200, manager_.structure(id));
      }
      if (seg[3] == "debug") {
        if (request.method != "GET") return HttpResponse::error(405, "use GET");
        return HttpResponse::json(200, manager_.debug(id));
      }
      if (seg[3] == "drive") {
        if (request.method != "POST") return HttpResponse::error(405, "use POST");
        if (!fleet_) return HttpResponse::error(503, "no fleet dispatcher running");
        // Degraded-mode policy: drive queues a whole session's worth of work,
        // so it is shed first — ask/tell stay available for clients running
        // their own evaluations.
        if (fleet_->degraded()) {
          if (telemetry_ != nullptr && telemetry_->enabled()) {
            telemetry_->metrics().counter(obs::metric::kBreakerShed).inc();
          }
          manager_.note(id, "shed",
                        "drive shed: fleet degraded (all breakers open)");
          throw ApiError(503,
                         "fleet degraded: every node's circuit breaker is open",
                         5);
        }
        return HttpResponse::json(
            200, manager_.drive(id, fleet_, parse_body(request),
                                idempotency_key(request), budget));
      }
    }
  }

  return HttpResponse::error(404, "no route for " + request.method + " " +
                                      request.path);
}

}  // namespace tunekit::net
