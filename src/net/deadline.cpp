#include "net/deadline.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include <algorithm>
#include <atomic>

namespace tunekit::net {

namespace {
std::atomic<FaultNet*> g_fault_net{nullptr};
}  // namespace

void set_fault_net(FaultNet* hook) {
  g_fault_net.store(hook, std::memory_order_release);
}

FaultNet* fault_net() { return g_fault_net.load(std::memory_order_acquire); }

bool ScriptedFaultNet::fires(const std::vector<std::uint64_t>& at,
                             std::atomic<std::uint64_t>& counter) {
  const std::uint64_t call = counter.fetch_add(1) + 1;
  if (std::find(at.begin(), at.end(), call) == at.end()) return false;
  ++faults_;
  return true;
}

bool ScriptedFaultNet::refuse_connect(const std::string&, std::uint16_t) {
  return fires(script_.refuse_connect_at, connects_);
}

bool ScriptedFaultNet::reset_write(int) { return fires(script_.reset_write_at, writes_); }

bool ScriptedFaultNet::stall_read(int fd) {
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    if (std::find(stalled_fds_.begin(), stalled_fds_.end(), fd) !=
        stalled_fds_.end()) {
      ++faults_;
      return true;
    }
  }
  return fires(script_.stall_read_at, reads_);
}

std::size_t ScriptedFaultNet::clamp_read(int fd) {
  if (script_.truncate_read_at == 0) return static_cast<std::size_t>(-1);
  // The torn connection stays dead, but only *that* connection — other fds
  // read normally, and a reconnect reusing the number starts clean (see
  // on_connected).
  if (truncated_fd_.load() == fd) return 0;
  const std::uint64_t call = clamp_reads_.fetch_add(1) + 1;
  if (call != script_.truncate_read_at) return static_cast<std::size_t>(-1);
  ++faults_;
  truncated_fd_.store(fd);
  return script_.truncate_read_bytes;
}

void ScriptedFaultNet::on_connected(int fd) {
  if (truncated_fd_.load() == fd) truncated_fd_.store(-1);
  const std::uint64_t dial = dials_.fetch_add(1) + 1;
  const bool stall =
      std::find(script_.stall_connect_at.begin(), script_.stall_connect_at.end(),
                dial) != script_.stall_connect_at.end();
  std::lock_guard<std::mutex> lock(stall_mutex_);
  // Track by fd, but keyed to *this* dial: the OS reuses fd numbers, so a
  // non-stalling reconnect must clear any stale entry for the same fd.
  auto it = std::find(stalled_fds_.begin(), stalled_fds_.end(), fd);
  if (stall) {
    if (it == stalled_fds_.end()) stalled_fds_.push_back(fd);
  } else if (it != stalled_fds_.end()) {
    stalled_fds_.erase(it);
  }
}

Deadline Deadline::after(double seconds) {
  Deadline d;
  if (!std::isfinite(seconds)) return d;  // unbounded
  if (seconds < 0.0) seconds = 0.0;
  d.unbounded_ = false;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::infinite() { return Deadline{}; }

double Deadline::remaining_seconds() const {
  if (unbounded_) return std::numeric_limits<double>::infinity();
  const auto left = at_ - std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(left).count();
  return s > 0.0 ? s : 0.0;
}

int Deadline::poll_timeout_ms() const {
  if (unbounded_) return -1;
  const double s = remaining_seconds();
  if (s <= 0.0) return 0;
  const double ms = std::ceil(s * 1e3);
  return ms > 1e9 ? 1000000000 : static_cast<int>(ms);
}

namespace {

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

/// poll() one fd for `events`, honoring the deadline. Returns >0 ready,
/// 0 deadline expired, <0 error.
int poll_one(int fd, short events, const Deadline& deadline) {
  while (true) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

int dial_tcp(const std::string& host, std::uint16_t port, const Deadline& deadline,
             std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return -1;
  };

  if (FaultNet* fault = fault_net();
      fault != nullptr && fault->refuse_connect(host, port)) {
    return fail("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                std::strerror(ECONNREFUSED) + " (injected)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a numeric address: resolve (bounded only by the resolver itself).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr) {
      return fail("cannot resolve '" + host + "': " + ::gai_strerror(rc));
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(std::string("socket() failed: ") + std::strerror(errno));
  if (!set_nonblocking(fd, true)) {
    ::close(fd);
    return fail("cannot make socket non-blocking");
  }

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      return fail("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                  std::strerror(err));
    }
    const int ready = poll_one(fd, POLLOUT, deadline);
    if (ready <= 0) {
      ::close(fd);
      return fail(ready == 0
                      ? "connect to " + host + ":" + std::to_string(port) + " timed out"
                      : std::string("poll() failed: ") + std::strerror(errno));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0) {
      ::close(fd);
      return fail("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                  std::strerror(so_error != 0 ? so_error : errno));
    }
  }

  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return fail("cannot restore blocking mode");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (FaultNet* fault = fault_net(); fault != nullptr) fault->on_connected(fd);
  return fd;
}

IoResult write_all(int fd, const char* data, std::size_t size,
                   const Deadline& deadline) {
  IoResult r;
  if (FaultNet* fault = fault_net(); fault != nullptr && fault->reset_write(fd)) {
    r.status = IoResult::Status::Error;
    r.err = ECONNRESET;
    return r;
  }
  std::size_t sent = 0;
  while (sent < size) {
    const int ready = poll_one(fd, POLLOUT, deadline);
    if (ready == 0) {
      r.status = IoResult::Status::Timeout;
      r.n = sent;
      return r;
    }
    if (ready < 0) {
      r.status = IoResult::Status::Error;
      r.err = errno;
      return r;
    }
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      r.status = errno == EPIPE ? IoResult::Status::Eof : IoResult::Status::Error;
      r.err = errno;
      return r;
    }
    sent += static_cast<std::size_t>(n);
  }
  r.status = IoResult::Status::Ok;
  r.n = sent;
  return r;
}

IoResult read_some(int fd, char* buf, std::size_t size, const Deadline& deadline) {
  IoResult r;
  if (FaultNet* fault = fault_net(); fault != nullptr) {
    if (fault->stall_read(fd)) {
      r.status = IoResult::Status::Timeout;
      return r;
    }
    const std::size_t cap = fault->clamp_read(fd);
    if (cap == 0) {
      // Injected torn response: the peer is gone mid-frame.
      r.status = IoResult::Status::Eof;
      return r;
    }
    size = std::min(size, cap);
  }
  while (true) {
    const int ready = poll_one(fd, POLLIN, deadline);
    if (ready == 0) {
      r.status = IoResult::Status::Timeout;
      return r;
    }
    if (ready < 0) {
      r.status = IoResult::Status::Error;
      r.err = errno;
      return r;
    }
    const ssize_t n = ::recv(fd, buf, size, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      r.status = IoResult::Status::Error;
      r.err = errno;
      return r;
    }
    if (n == 0) {
      r.status = IoResult::Status::Eof;
      return r;
    }
    r.status = IoResult::Status::Ok;
    r.n = static_cast<std::size_t>(n);
    return r;
  }
}

}  // namespace tunekit::net
