#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::net {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

struct HttpServer::Connection {
  int fd = -1;
  RequestParser parser;
  std::string outbuf;
  bool in_flight = false;         ///< a worker owns the current request
  bool close_after_flush = false;
  bool sent_continue = false;
  Clock::time_point last_activity = Clock::now();
  Clock::time_point request_start = Clock::now();
  /// First byte of the request currently being received — the anchor for
  /// the trickle (slow-loris) timeouts, which must NOT reset per byte.
  Clock::time_point recv_start = Clock::now();
  bool receiving = false;  ///< a partial request is on the wire
  std::string method;  ///< of the request being handled (for metrics)
  /// Trace id (32 hex) of the request being handled, from its traceparent
  /// header — becomes the exemplar on the latency histogram sample.
  std::string trace_hex;

  explicit Connection(int fd_, HttpLimits limits)
      : fd(fd_), parser(limits) {}
};

struct HttpServer::Job {
  std::uint64_t conn_id = 0;
  HttpRequest request;
  Clock::time_point enqueued = Clock::now();
  int priority = 1;
};

struct HttpServer::Impl {
  std::map<std::uint64_t, Connection> conns;
  std::uint64_t next_conn_id = 1;

  std::mutex jobs_mutex;
  std::condition_variable jobs_cv;
  /// One FIFO per admission priority; workers always drain 0 before 1
  /// before 2, so a tell is never stuck behind a queue of drives.
  std::deque<Job> jobs[3];
  bool jobs_stop = false;
  /// Smoothed time jobs spend queued (measured at dequeue) — the CoDel-ish
  /// congestion signal — and the smoothed interval between dequeues, from
  /// which shed responses derive an honest Retry-After. Guarded by
  /// jobs_mutex.
  double queue_delay_ewma = 0.0;
  double drain_interval_ewma = 0.0;
  Clock::time_point last_dequeue{};
  bool dequeued_once = false;

  std::size_t total_jobs() const {
    return jobs[0].size() + jobs[1].size() + jobs[2].size();
  }

  struct Done {
    std::uint64_t conn_id = 0;
    HttpResponse response;
    bool keep_alive = false;
  };
  std::mutex done_mutex;
  std::deque<Done> done;
};

namespace {

/// Parse an X-Tunekit-Deadline value; NaN when absent/garbled (the server
/// must not invent budgets for requests that did not carry one).
double deadline_header_seconds(const HttpRequest& request) {
  const std::string* header = request.header("x-tunekit-deadline");
  if (header == nullptr) return std::numeric_limits<double>::quiet_NaN();
  char* end = nullptr;
  const double v = std::strtod(header->c_str(), &end);
  if (end == header->c_str() || !std::isfinite(v)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v;
}

std::string format_deadline_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      impl_(std::make_unique<Impl>()) {}

HttpServer::~HttpServer() {
  if (running_.load(std::memory_order_acquire)) shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void HttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid listen address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    throw std::runtime_error(std::string("listen() failed: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_fds_) != 0) throw std::runtime_error("pipe() failed");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { run_loop(); });
  const std::size_t n_workers = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { run_worker(); });
  }
}

void HttpServer::request_shutdown() {
  // Async-signal-safe: one atomic store and one write(2). Anything else
  // (locks, allocation, logging) is off-limits here.
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t rc = ::write(wake_fds_[1], &byte, 1);
  }
}

void HttpServer::wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mutex);
    impl_->jobs_stop = true;
  }
  impl_->jobs_cv.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::shutdown() {
  request_shutdown();
  wait();
}

void HttpServer::observe_request(const char* method, int status, double seconds,
                                 const std::string& trace_hex) {
  if (options_.telemetry == nullptr || !options_.telemetry->enabled()) return;
  auto& m = options_.telemetry->metrics();
  m.counter("tunekit_http_requests_total").inc();
  const std::string klass = std::to_string(status / 100) + "xx";
  m.counter("tunekit_http_responses_" + klass + "_total").inc();
  auto& h = m.histogram(obs::metric::kHttpRequestSeconds);
  if (!trace_hex.empty()) {
    h.observe_with_exemplar(seconds, trace_hex);
  } else {
    h.observe(seconds);
  }
  (void)method;
}

void HttpServer::run_worker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(impl_->jobs_mutex);
      impl_->jobs_cv.wait(lock, [this] {
        return impl_->jobs_stop || impl_->total_jobs() > 0;
      });
      if (impl_->total_jobs() == 0) {
        if (impl_->jobs_stop) return;
        continue;
      }
      for (auto& queue : impl_->jobs) {
        if (queue.empty()) continue;
        job = std::move(queue.front());
        queue.pop_front();
        break;
      }
      // Congestion accounting at the only honest measurement point: the
      // dequeue. The wait EWMA is the shedder's signal; the drain-interval
      // EWMA prices the Retry-After advertised to shed clients.
      const auto now = Clock::now();
      const double waited =
          std::chrono::duration<double>(now - job.enqueued).count();
      impl_->queue_delay_ewma = 0.8 * impl_->queue_delay_ewma + 0.2 * waited;
      if (impl_->dequeued_once) {
        const double interval =
            std::chrono::duration<double>(now - impl_->last_dequeue).count();
        impl_->drain_interval_ewma =
            0.8 * impl_->drain_interval_ewma + 0.2 * interval;
      }
      impl_->last_dequeue = now;
      impl_->dequeued_once = true;
    }

    // End-to-end deadline, part queue-aware: the budget the client stamped
    // covers time spent waiting here too. Already spent → 504 without
    // touching the handler; otherwise the header is rewritten to what is
    // left, so every downstream stage bounds itself by remaining budget.
    bool expired_in_queue = false;
    const double budget = deadline_header_seconds(job.request);
    if (!std::isnan(budget)) {
      const double waited =
          std::chrono::duration<double>(Clock::now() - job.enqueued).count();
      const double remaining = budget - waited;
      if (remaining <= 0.0) {
        expired_in_queue = true;
      } else {
        job.request.headers["x-tunekit-deadline"] =
            format_deadline_seconds(remaining);
      }
    }

    HttpResponse response;
    if (expired_in_queue) {
      if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
        options_.telemetry->metrics()
            .counter(obs::metric::kDeadlineExpiredInQueue)
            .inc();
      }
      response = HttpResponse::error(504, "deadline expired while queued");
    } else {
      try {
        response = handler_(job.request);
      } catch (const std::exception& e) {
        response = HttpResponse::error(500, e.what());
      } catch (...) {
        response = HttpResponse::error(500, "internal error");
      }
    }
    {
      std::lock_guard<std::mutex> lock(impl_->done_mutex);
      impl_->done.push_back(
          Impl::Done{job.conn_id, std::move(response), job.request.keep_alive()});
    }
    const char byte = 'r';
    [[maybe_unused]] ssize_t rc = ::write(wake_fds_[1], &byte, 1);
  }
}

void HttpServer::close_connection(std::uint64_t id) {
  auto it = impl_->conns.find(id);
  if (it == impl_->conns.end()) return;
  ::close(it->second.fd);
  impl_->conns.erase(it);
  if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
    options_.telemetry->metrics().gauge("tunekit_http_connections")
        .set(static_cast<double>(impl_->conns.size()));
  }
}

void HttpServer::handle_writable(std::uint64_t id) {
  auto it = impl_->conns.find(id);
  if (it == impl_->conns.end()) return;
  Connection& conn = it->second;
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_connection(id);  // peer gone or hard error
    return;
  }
  if (conn.close_after_flush) close_connection(id);
}

void HttpServer::enqueue_response(std::uint64_t id, const HttpResponse& response,
                                  bool keep_alive) {
  auto it = impl_->conns.find(id);
  if (it == impl_->conns.end()) return;
  Connection& conn = it->second;
  const bool drain = stop_requested_.load(std::memory_order_acquire);
  const bool keep = keep_alive && !response.close && !drain;
  observe_request(conn.method.c_str(), response.status,
                  seconds_since(conn.request_start), conn.trace_hex);
  conn.outbuf += serialize(response, keep);
  conn.in_flight = false;
  conn.close_after_flush = !keep;
  conn.sent_continue = false;
  handle_writable(id);
  // The connection may be gone now (flush error or close-after-flush).
  auto again = impl_->conns.find(id);
  if (again == impl_->conns.end() || again->second.close_after_flush) return;
  // Keep-alive: recycle the parser and serve any pipelined bytes already
  // buffered without waiting for another read event.
  again->second.parser.reset();
  pump_parser(id);
}

void HttpServer::pump_parser(std::uint64_t id) {
  auto it = impl_->conns.find(id);
  if (it == impl_->conns.end()) return;
  Connection& conn = it->second;
  if (conn.in_flight) return;
  const RequestParser::Status status = conn.parser.advance();
  switch (status) {
    case RequestParser::Status::NeedMore: {
      // Interim 100-continue once the header block of an Expect-ing request
      // is parsed; clients like curl wait for it before sending the body.
      if (conn.parser.headers_complete() && !conn.sent_continue) {
        const std::string* expect = conn.parser.request().header("expect");
        if (expect != nullptr && expect->find("100-continue") != std::string::npos) {
          conn.sent_continue = true;
          conn.outbuf += "HTTP/1.1 100 Continue\r\n\r\n";
          handle_writable(id);
        }
      }
      return;
    }
    case RequestParser::Status::Error: {
      const HttpResponse response =
          HttpResponse::error(conn.parser.error_status(), conn.parser.error_reason());
      observe_request(conn.method.c_str(), response.status,
                      seconds_since(conn.last_activity), conn.trace_hex);
      conn.outbuf += serialize(response, /*keep_alive=*/false);
      conn.close_after_flush = true;
      handle_writable(id);
      return;
    }
    case RequestParser::Status::Complete:
      break;
  }

  conn.in_flight = true;
  conn.receiving = false;  // frame fully on this side; trickle clock stops
  conn.request_start = Clock::now();
  conn.method = conn.parser.request().method;
  conn.trace_hex.clear();
  if (const std::string* tp = conn.parser.request().header("traceparent")) {
    if (auto parsed = obs::parse_traceparent(*tp)) {
      conn.trace_hex = obs::trace_id_hex(parsed->trace);
    }
  }

  int prio = 1;
  if (options_.priority) {
    prio = std::clamp(options_.priority(conn.parser.request()), 0, 2);
  }
  bool over_cap = false;
  bool over_delay = false;
  int retry_after = 1;
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mutex);
    const std::size_t total = impl_->total_jobs();
    // Priority 0 (a tell carrying a paid-for measurement) gets 50% headroom
    // above the shared cap and never sheds on latency alone.
    const std::size_t cap = prio == 0
                                ? options_.max_queue + options_.max_queue / 2
                                : options_.max_queue;
    over_cap = total >= cap;
    const double target = options_.queue_delay_target_seconds;
    if (!over_cap && target > 0.0 && prio != 0) {
      const double threshold = prio == 2 ? target * 0.5 : target;
      over_delay = impl_->queue_delay_ewma > threshold;
    }
    if (over_cap || over_delay) {
      // An honest hint: with `total` jobs ahead and the measured drain
      // interval, the queue frees a slot in about (total+1)*interval.
      const double eta = (static_cast<double>(total) + 1.0) *
                         impl_->drain_interval_ewma;
      retry_after = std::clamp(static_cast<int>(std::ceil(eta)), 1, 30);
      if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
        auto& m = options_.telemetry->metrics();
        m.counter(obs::metric::kShedRequests).inc();
        m.counter("tunekit_http_rejected_total").inc();
        m.histogram(obs::metric::kShedQueueDelay).observe(impl_->queue_delay_ewma);
        m.histogram(obs::metric::kShedRetryAfter)
            .observe(static_cast<double>(retry_after));
      }
    } else {
      impl_->jobs[prio].push_back(
          Job{id, conn.parser.request(), Clock::now(), prio});
    }
  }
  if (over_cap || over_delay) {
    const bool keep = conn.parser.request().keep_alive();
    // 429 for the hard cap (the original contract), 503 for delay shedding.
    HttpResponse response =
        over_cap ? HttpResponse::error(429, "server overloaded, retry later")
                 : HttpResponse::error(503, "queue delay over target, retry later");
    response.retry_after_seconds = retry_after;
    enqueue_response(id, response, keep);
    return;
  }
  impl_->jobs_cv.notify_one();
}

void HttpServer::handle_readable(std::uint64_t id) {
  auto it = impl_->conns.find(id);
  if (it == impl_->conns.end()) return;
  Connection& conn = it->second;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = Clock::now();
      if (!conn.receiving && !conn.in_flight) {
        // First byte of a new request: anchor the trickle timers here and
        // never reset them until the frame completes.
        conn.receiving = true;
        conn.recv_start = conn.last_activity;
      }
      conn.parser.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(id);  // EOF or hard error
    return;
  }
  pump_parser(id);
}

void HttpServer::run_loop() {
  bool draining = false;
  Clock::time_point drain_deadline{};

  while (true) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(
                                              options_.drain_timeout_seconds));
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Idle connections have nothing to finish; drop them now.
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : impl_->conns) {
        if (!conn.in_flight && conn.outbuf.empty()) idle.push_back(id);
      }
      for (std::uint64_t id : idle) close_connection(id);
    }
    if (draining) {
      if (impl_->conns.empty()) break;
      if (Clock::now() >= drain_deadline) {
        std::vector<std::uint64_t> all;
        for (const auto& [id, conn] : impl_->conns) all.push_back(id);
        for (std::uint64_t id : all) close_connection(id);
        break;
      }
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 for specials)
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    fd_conn.push_back(0);
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    const std::size_t first_conn = fds.size();
    for (const auto& [id, conn] : impl_->conns) {
      short events = 0;
      if (!conn.in_flight) events |= POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      if (events == 0) events = POLLIN;  // still notice EOF/reset
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/250);
    if (rc < 0 && errno != EINTR) break;

    // Drain the wake pipe.
    if (fds[0].revents != 0) {
      char buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Finished handler responses.
    for (;;) {
      Impl::Done done;
      {
        std::lock_guard<std::mutex> lock(impl_->done_mutex);
        if (impl_->done.empty()) break;
        done = std::move(impl_->done.front());
        impl_->done.pop_front();
      }
      enqueue_response(done.conn_id, done.response, done.keep_alive);
    }

    // New connections.
    if (listen_fd_ >= 0) {
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        if (impl_->conns.size() >= options_.max_connections) {
          // Best-effort 503 so the client sees backpressure, not a RST.
          const std::string reply =
              serialize(HttpResponse::error(503, "connection limit reached"),
                        /*keep_alive=*/false);
          (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
          ::close(fd);
          if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
            options_.telemetry->metrics()
                .counter("tunekit_http_rejected_total")
                .inc();
          }
          continue;
        }
        const std::uint64_t id = impl_->next_conn_id++;
        impl_->conns.emplace(id, Connection(fd, options_.limits));
        if (options_.telemetry != nullptr && options_.telemetry->enabled()) {
          options_.telemetry->metrics().gauge("tunekit_http_connections")
              .set(static_cast<double>(impl_->conns.size()));
        }
      }
    }

    // Socket events. Connections may close as we go, so look ids up again.
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      const std::uint64_t id = fd_conn[i];
      if (fds[i].revents == 0) continue;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & (POLLIN | POLLOUT)) == 0) {
        close_connection(id);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) handle_writable(id);
      if ((fds[i].revents & POLLIN) != 0) handle_readable(id);
    }

    // Request deadlines. Two independent clocks: the idle timer (resets on
    // every byte — catches silent peers) and the trickle timers (anchored
    // at the first request byte — catch slow-loris peers dribbling bytes
    // fast enough to keep the idle timer happy forever).
    const auto now = Clock::now();
    std::vector<std::uint64_t> expired;
    for (const auto& [id, conn] : impl_->conns) {
      if (conn.in_flight) continue;  // handler latency is not client latency
      const double idle = std::chrono::duration<double>(now - conn.last_activity).count();
      if (idle > options_.request_timeout_seconds) {
        expired.push_back(id);
        continue;
      }
      if (!conn.receiving) continue;
      const double age =
          std::chrono::duration<double>(now - conn.recv_start).count();
      const bool headers_done = conn.parser.headers_complete();
      if ((!headers_done && options_.header_timeout_seconds > 0.0 &&
           age > options_.header_timeout_seconds) ||
          (headers_done && options_.body_timeout_seconds > 0.0 &&
           age > options_.body_timeout_seconds)) {
        expired.push_back(id);
      }
    }
    for (std::uint64_t id : expired) {
      auto it = impl_->conns.find(id);
      if (it == impl_->conns.end()) continue;
      Connection& conn = it->second;
      if (conn.parser.buffered() > 0 || conn.parser.headers_complete()) {
        // Mid-request: tell the client before hanging up.
        conn.outbuf += serialize(HttpResponse::error(408, "request timed out"),
                                 /*keep_alive=*/false);
        conn.close_after_flush = true;
        handle_writable(id);
      } else {
        close_connection(id);
      }
    }
  }

  // Loop exited: stop the workers (wait() joins them).
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mutex);
    impl_->jobs_stop = true;
    for (auto& queue : impl_->jobs) queue.clear();
  }
  impl_->jobs_cv.notify_all();
}

}  // namespace tunekit::net
