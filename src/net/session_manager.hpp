#pragma once
// SessionManager: many concurrent journaled TuningSessions behind string ids.
//
// This is the multiplexing layer of the remote tuning server: each HTTP
// client addresses a session by id, the manager serializes access per
// session (one entry mutex each — two clients interleaving ask/tell on the
// same session can never double-issue a candidate), and keeps memory bounded
// by LRU-evicting idle sessions back to their journals (flush, destroy,
// resume on next touch). With a journal directory configured every session
// also survives a full server restart: the creation spec is persisted as a
// sidecar JSON next to the journal, so `ask`/`tell`/`report` for an id the
// restarted process has never seen transparently rebuilds the space and
// resumes the session from disk.
//
// All operations take and return json::Value — the REST layer maps them 1:1
// onto endpoints — and signal client-addressable failures with ApiError,
// which carries the HTTP status to answer with.
//
// At fleet scale (thousands of sessions driven concurrently) a single map
// mutex becomes the bottleneck, so the manager shards: session ids hash
// (FNV-1a, common::shard_of) into N shards, each with its own lock, map, and
// — when journaling — its own `shard-<k>/` journal subdirectory, spreading
// directory pressure as well as lock pressure. The assignment is stable
// across restarts (pure function of the id), so resume finds every sidecar.
// `shards = 1` (the default) preserves the exact flat single-lock layout of
// earlier releases.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/flight_recorder.hpp"
#include "service/session.hpp"

namespace tunekit::obs {
class Telemetry;
}
namespace tunekit::core {
class TunableApp;
}
namespace tunekit::robust {
class EvalBackend;
}

namespace tunekit::net {

/// A failure the client can be told about: carries the HTTP status code and,
/// for transient conditions (degraded storage, open circuit breakers), the
/// Retry-After hint the response should advertise.
class ApiError : public std::runtime_error {
 public:
  ApiError(int status, const std::string& message, int retry_after_seconds = 0)
      : std::runtime_error(message),
        status_(status),
        retry_after_seconds_(retry_after_seconds) {}
  int status() const { return status_; }
  /// Seconds the client should wait before retrying (0 = no hint).
  int retry_after_seconds() const { return retry_after_seconds_; }

 private:
  int status_;
  int retry_after_seconds_;
};

struct SessionManagerOptions {
  /// Journals + spec sidecars live here ("<id>.journal.jsonl",
  /// "<id>.spec.json"). Empty = in-memory sessions only: no crash recovery,
  /// no idle eviction, no resume across restarts.
  std::string journal_dir;
  /// Live TuningSessions kept in memory before LRU eviction kicks in
  /// (journaled sessions only; in-memory sessions are never evicted).
  std::size_t max_resident = 64;
  /// Hard cap on concurrently known sessions; create beyond it is a 429.
  std::size_t max_sessions = 1024;
  /// Lock/journal shards; ids hash into one each. 1 = the legacy flat
  /// single-lock layout; values are clamped to [1, 256].
  std::size_t shards = 1;
  /// Telemetry for session counters and journal fsync latency (nullable).
  obs::Telemetry* telemetry = nullptr;
  /// File-IO seam threaded under every session journal (null = the real
  /// filesystem). Chaos tests inject a common::FaultIo with a path filter to
  /// poison exactly one session's storage.
  common::Io* io = nullptr;
  /// Journal segment rotation threshold forwarded to each session (bytes;
  /// 0 disables rotation).
  std::size_t rotate_bytes = 256 * 1024;
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options);
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create a session from a spec:
  ///   {"app": "synth:case1", ...}        built-in app's space, or
  ///   {"space": {"params": [...]}, ...}  inline space (service/space_codec)
  /// plus session options: "id" (optional; generated when absent), "backend"
  /// (bo|random|grid), "max_evals", "n_init", "seed", "deadline_seconds",
  /// "max_attempts", "quarantine_after", "grid_real_levels".
  /// Returns {"id", "backend", "state", "space_size", "max_evals"}.
  json::Value create(const json::Value& spec);

  /// Ask up to k candidates. {"id","state","remaining","completed",
  /// "candidates":[{"id","attempt","config":{name:value}}]}.
  /// A non-empty `idempotency_key` makes the call exactly-once across
  /// retries: the first execution's serialized reply is journaled under the
  /// key and any repeat of it returns those bytes instead of issuing again.
  json::Value ask(const std::string& id, std::size_t k,
                  const std::string& idempotency_key = {});

  /// Report a result. Body is one of
  ///   {"id":N, "value":V[, "cost_seconds"][, "noise"][, "duration_ms"]
  ///           [, "worker_slot"][, "outcome":"ok"]}
  ///   {"id":N, "outcome":"crashed"|"timed-out"|"invalid-config"|"non-finite"}
  ///   {"config":{name:value}, "value":V[, "cost_seconds"]}   (observation)
  /// `idempotency_key` as in ask(); a retried tell whose first response was
  /// lost replays that response instead of double-recording an observation.
  json::Value tell(const std::string& id, const json::Value& body,
                   const std::string& idempotency_key = {});

  /// Status + best + session metrics snapshot.
  json::Value report(const std::string& id);

  /// Learned dependency structure for GET /v1/sessions/{id}/structure:
  /// {"id","enabled","snapshot"} where snapshot is the latest
  /// structure::OnlineLearner state (affinity matrix, active partition,
  /// adoption history) or null when structure learning is off.
  json::Value structure(const std::string& id);

  /// Graceful close: journals the final metrics snapshot and forgets the
  /// session (the journal stays on disk).
  json::Value close(const std::string& id);

  /// {"sessions":[{"id","state","completed","resident"}...]}
  json::Value list() const;

  /// Introspection for GET /v1/sessions/{id}/debug: status plus the
  /// session's flight-recorder ring ({"id","resident","state"?,
  /// "flight_recorder":{"events":[...]}}). Unlike the other operations this
  /// never materializes an evicted session — debugging must not perturb
  /// residency.
  json::Value debug(const std::string& id);

  /// Drop an event into the session's flight recorder from outside the
  /// session operations (e.g. the REST layer shedding a drive while the
  /// fleet is degraded). Unknown ids are ignored; never materializes.
  void note(const std::string& id, std::string_view kind,
            std::string_view detail);

  /// Run the session to exhaustion on an evaluation backend (the fleet
  /// drive path): ask/evaluate/tell batches via EvalScheduler until no
  /// candidates remain, holding the session's entry lock throughout.
  /// `body` may set "batch_size" and "n_threads". Returns the final report.
  /// `idempotency_key` as in ask(). A finite `deadline_seconds` bounds the
  /// whole run — the budget the client's X-Tunekit-Deadline header carried,
  /// measured from this call (so time spent waiting for the entry lock
  /// counts); the scheduler stops issuing batches once it is spent.
  json::Value drive(const std::string& id,
                    const std::shared_ptr<robust::EvalBackend>& backend,
                    const json::Value& body,
                    const std::string& idempotency_key = {},
                    double deadline_seconds = std::numeric_limits<double>::infinity());

  /// Flush every resident session's metrics snapshot to its journal — the
  /// SIGTERM drain path. Safe to call repeatedly.
  void flush_all();

  /// Live TuningSessions currently in memory.
  std::size_t resident() const;

  std::size_t shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string id;
    json::Value spec;  ///< creation spec (source of truth for re-materialize)
    /// The space either belongs to a built-in app ("app" specs — app
    /// constraints may reference app state, so the app must stay alive) or is
    /// owned directly (inline "space" specs). `space` points at whichever.
    std::unique_ptr<core::TunableApp> app;
    std::unique_ptr<search::SearchSpace> owned_space;
    const search::SearchSpace* space = nullptr;
    std::unique_ptr<service::TuningSession> session;  ///< null when evicted
    std::chrono::steady_clock::time_point last_used;
    std::mutex mutex;  ///< serializes all session access for this id
    /// Per-session black box: bounded ring of lifecycle events (create,
    /// resume, replay hits, rotations, poison …). Outlives session
    /// eviction/re-materialization cycles; dumped to the log on poison and
    /// served by GET /v1/sessions/{id}/debug.
    obs::FlightRecorder recorder;
  };

  /// One lock domain: a slice of the session map plus its journal subdir.
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> map;
  };

  Shard& shard_for(const std::string& id);
  const Shard& shard_for(const std::string& id) const;
  /// Journal directory for `id` ("<dir>/shard-<k>" when sharded, "<dir>"
  /// flat otherwise).
  std::string journal_dir(const std::string& id) const;
  std::string journal_path(const std::string& id) const;
  std::string spec_path(const std::string& id) const;
  /// All entries across shards (for list/flush/evict sweeps).
  std::vector<std::shared_ptr<Entry>> all_entries() const;
  /// Look up an entry, lazily loading it from a spec sidecar after a
  /// restart. Throws ApiError(404) when the id is unknown everywhere.
  std::shared_ptr<Entry> find_or_load(const std::string& id);
  /// Build (or resume) the TuningSession for an entry. Entry mutex held.
  void materialize(Entry& entry, bool resume_from_journal);
  /// Map a poisoned store to 503-with-Retry-After on this session only:
  /// drop the dead in-memory session (its journal holds everything acked up
  /// to the failure) so the next touch re-materializes from disk, while
  /// every other session stays live. Entry mutex held.
  [[noreturn]] void storage_degraded(Entry& entry, const std::exception& err);
  /// Entry mutex held, session materialized. Non-empty key with a journaled
  /// response → the parsed original reply; the retry is answered without
  /// re-executing.
  std::optional<json::Value> replayed_locked(Entry& entry, const std::string& key);
  /// Entry mutex held. Journal + cache `reply` as the canonical response for
  /// `key`. A poisoned store here is logged, not thrown — the operation this
  /// response describes already committed, so the client must still see it.
  void remember_locked(Entry& entry, const std::string& key,
                       const json::Value& reply);
  /// Evict least-recently-used idle sessions down to max_resident.
  void evict_excess();
  void count(const char* name);

  SessionManagerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> known_{0};  ///< sessions across all shards
};

}  // namespace tunekit::net
