#pragma once
// RestApi: routes HTTP requests onto a SessionManager — the glue between
// HttpServer (bytes) and the session layer (json::Value in/out).
//
//   POST   /v1/sessions             create (spec in body)
//   GET    /v1/sessions             list
//   POST   /v1/sessions/{id}/ask    {"k": N}  (default 1)
//   POST   /v1/sessions/{id}/tell   result/failure/observation body
//   GET    /v1/sessions/{id}/report status + best + metrics
//   GET    /v1/sessions/{id}/structure
//                                   learned dependency structure: affinity
//                                   matrix, active partition, adoption
//                                   history ({"enabled":false,...} when
//                                   structure learning is off)
//   POST   /v1/sessions/{id}/drive  run the session on the fleet (serve
//                                   --fleet only; synchronous, holds the
//                                   session lock until exhausted)
//   DELETE /v1/sessions/{id}        graceful close (journal kept)
//   GET    /v1/sessions/{id}/debug  flight-recorder ring + status (never
//                                   materializes an evicted session)
//   GET    /v1/fleet                fleet registry + dispatcher status
//   GET    /v1/debug/traces         recent completed trace trees as JSON
//   GET    /metrics                 Prometheus text exposition (trace-id
//                                   exemplars on histogram buckets)
//   GET    /healthz                 {"status":"ok"}
//
// Distributed tracing: a `traceparent` request header (W3C shape,
// "00-<trace>-<parent>-01") is adopted — the handler span and everything
// under it joins the caller's trace. Requests without one root a new trace.
//
// Errors are {"error": "..."} JSON bodies with the ApiError's status;
// malformed JSON bodies are 400s. The handler is thread-safe — HttpServer
// workers call it concurrently and SessionManager serializes per session.

#include <memory>
#include <string>

#include "net/http.hpp"

namespace tunekit::obs {
class Telemetry;
}
namespace tunekit::fleet {
class FleetDispatcher;
}

namespace tunekit::net {

class SessionManager;

class RestApi {
 public:
  /// `manager` must outlive the api. `telemetry` feeds /metrics (nullable:
  /// /metrics then exports an empty registry). `fleet` enables /v1/fleet and
  /// /v1/sessions/{id}/drive; null answers those routes with 503.
  RestApi(SessionManager& manager, obs::Telemetry* telemetry,
          std::shared_ptr<fleet::FleetDispatcher> fleet = nullptr);

  /// Route one request. Never throws; failures become error responses.
  HttpResponse handle(const HttpRequest& request);

  /// Admission priority for the server's load-shedder: 0 = tell (a paid-for
  /// result in hand — shed last), 2 = drive (a whole session of new work —
  /// shed first), 1 = everything else. Wire into ServerOptions::priority.
  static int priority(const HttpRequest& request);

 private:
  HttpResponse route(const HttpRequest& request);

  SessionManager& manager_;
  obs::Telemetry* telemetry_;
  std::shared_ptr<fleet::FleetDispatcher> fleet_;
};

}  // namespace tunekit::net
