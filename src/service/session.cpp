#include "service/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/telemetry.hpp"
#include "search/samplers.hpp"
#include "search/sobol.hpp"

namespace tunekit::service {

const char* to_string(SessionBackend backend) {
  switch (backend) {
    case SessionBackend::Bo: return "bo";
    case SessionBackend::Random: return "random";
    case SessionBackend::Grid: return "grid";
  }
  return "?";
}

SessionBackend backend_from_string(const std::string& name) {
  if (name == "bo") return SessionBackend::Bo;
  if (name == "random") return SessionBackend::Random;
  if (name == "grid") return SessionBackend::Grid;
  throw std::invalid_argument("unknown session backend '" + name +
                              "' (expected bo, random, or grid)");
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Active: return "active";
    case SessionState::Exhausted: return "exhausted";
    case SessionState::Closed: return "closed";
  }
  return "?";
}

json::Value SessionMetrics::to_json() const {
  json::Object snap;
  snap["tells"] = json::Value(tells);
  snap["fails"] = json::Value(fails);
  snap["drops"] = json::Value(drops);
  snap["cost_seconds"] = json::Value(cost_seconds);
  snap["eval_duration_ms"] = json::Value(eval_duration_ms);
  snap["wall_seconds"] = json::Value(wall_seconds);
  if (!failure_outcomes.empty()) {
    json::Object outcomes;
    for (const auto& [why, n] : failure_outcomes) outcomes[why] = json::Value(n);
    snap["outcomes"] = json::Value(std::move(outcomes));
  }
  return json::Value(std::move(snap));
}

SessionMetrics SessionMetrics::from_json(const json::Value& snapshot) {
  SessionMetrics m;
  if (!snapshot.is_object()) return m;
  m.tells = static_cast<std::size_t>(snapshot.number_or("tells", 0.0));
  m.fails = static_cast<std::size_t>(snapshot.number_or("fails", 0.0));
  m.drops = static_cast<std::size_t>(snapshot.number_or("drops", 0.0));
  m.cost_seconds = snapshot.number_or("cost_seconds", 0.0);
  m.eval_duration_ms = snapshot.number_or("eval_duration_ms", 0.0);
  m.wall_seconds = snapshot.number_or("wall_seconds", 0.0);
  if (snapshot.contains("outcomes")) {
    for (const auto& [why, n] : snapshot.at("outcomes").as_object()) {
      m.failure_outcomes[why] = static_cast<std::size_t>(n.as_number());
    }
  }
  return m;
}

namespace {

bo::BoOptions surrogate_options(const SessionOptions& o) {
  bo::BoOptions b = o.bo;
  b.seed = o.seed;
  b.max_evals = o.max_evals;
  b.n_init = o.n_init;
  b.failure_penalty = o.failure_penalty;
  b.checkpoint_path.clear();
  b.resume = false;
  if (b.telemetry == nullptr) b.telemetry = o.telemetry;
  return b;
}

/// Deterministic per-candidate fallback sample: the same (seed, id) pair
/// always yields the same configuration, regardless of how asks and tells
/// interleaved before it — the property the resume determinism relies on.
search::Config random_candidate(const search::SearchSpace& space, std::uint64_t seed,
                                std::uint64_t id) {
  tunekit::Rng rng(seed ^ (0x7f4a7c15ull + id * 0x9e3779b97f4a7c15ull));
  return space.sample_valid(rng);
}

}  // namespace

TuningSession::TuningSession(const search::SearchSpace& space, SessionOptions options,
                             std::unique_ptr<SessionStore> store)
    : space_(space),
      options_(std::move(options)),
      store_(std::move(store)),
      quarantine_(options_.quarantine_after),
      bo_(surrogate_options(options_)),
      replay_(options_.replay_cache_capacity) {
  if (store_) {
    store_->set_telemetry(options_.telemetry);
    if (options_.event_hook) store_->set_event_hook(options_.event_hook);
  }
  if (options_.backend == SessionBackend::Bo && options_.n_init > 0) {
    const std::size_t n = std::min(options_.n_init, options_.max_evals);
    tunekit::Rng rng(options_.seed);
    switch (options_.bo.init_design) {
      case bo::InitialDesign::LatinHypercube:
        init_design_ = search::sample_valid_configs(space_, n, rng, /*latin_hypercube=*/true);
        break;
      case bo::InitialDesign::Sobol:
        init_design_ = search::SobolSequence::sample(space_, n, options_.seed | 1);
        break;
      case bo::InitialDesign::UniformRandom:
        init_design_ = search::sample_valid_configs(space_, n, rng, /*latin_hypercube=*/false);
        break;
    }
  }
  if (options_.backend == SessionBackend::Grid) {
    grid_ = search::grid_configs(space_, options_.grid_real_levels);
    std::erase_if(grid_, [&](const search::Config& c) { return !space_.is_valid(c); });
    if (options_.max_evals > 0 && grid_.size() > options_.max_evals) {
      // Deterministic stride subsample, as GridSearch does under a budget.
      std::vector<search::Config> kept;
      kept.reserve(options_.max_evals);
      const double step =
          static_cast<double>(grid_.size()) / static_cast<double>(options_.max_evals);
      for (std::size_t i = 0; i < options_.max_evals; ++i) {
        kept.push_back(grid_[static_cast<std::size_t>(static_cast<double>(i) * step)]);
      }
      grid_ = std::move(kept);
    }
  }
  if (options_.structure_online && space_.size() >= 2) {
    structure::OnlineLearnerOptions so;
    so.cadence = std::max<std::size_t>(1, options_.structure_cadence);
    so.min_observations = std::max(so.cadence, 2 * space_.size());
    so.affinity_threshold = options_.structure_threshold;
    so.policy.evidence_threshold = options_.structure_evidence;
    so.policy.hysteresis = options_.structure_hysteresis;
    so.policy.cooldown = options_.structure_cooldown;
    so.affinity.forest.seed = options_.seed ^ 0xa5a5a5a5ull;
    // Initial cut: every parameter independent — the least-committed prior;
    // the learner merges parameters as interaction evidence accumulates.
    structure_ = std::make_unique<structure::OnlineLearner>(
        space_.size(), structure::Partition{}, so);
  }
}

TuningSession::TuningSession(const search::SearchSpace& space, SessionOptions options,
                             const std::string& journal_path)
    : TuningSession(space, std::move(options), std::unique_ptr<SessionStore>()) {
  if (!journal_path.empty()) {
    store_ = SessionStore::create(journal_path, make_header(),
                                  {options_.io, options_.rotate_bytes});
    store_->set_telemetry(options_.telemetry);
    if (options_.event_hook) store_->set_event_hook(options_.event_hook);
    // Journal the initial cut immediately so `report` can show the partition
    // history even for a session killed before its first refit.
    if (structure_) store_->structure(structure_->snapshot());
  }
}

std::unique_ptr<TuningSession> TuningSession::resume(const search::SearchSpace& space,
                                                     SessionOptions options,
                                                     const std::string& journal_path) {
  // Repairing replay: a torn tail is truncated, corrupt segments are
  // quarantined to corrupt/ and rewritten with their salvageable records, so
  // the appends below never land after damage.
  auto replayed = SessionStore::replay(journal_path, space,
                                       {/*repair=*/true, options.telemetry});
  if (replayed.header.max_evals != options.max_evals) {
    log_warn("session: resuming '", journal_path, "' with max_evals=", options.max_evals,
             " (journal was created with ", replayed.header.max_evals, ")");
  }
  const SessionStore::Options store_options{options.io, options.rotate_bytes};
  auto session = std::unique_ptr<TuningSession>(new TuningSession(
      space, std::move(options), SessionStore::append(journal_path, store_options)));
  for (const auto& e : replayed.completed) session->db_.record(e);
  for (auto& c : replayed.in_flight) session->reissue_.push_back(std::move(c));
  // Session metrics continue from the journaled snapshot: the counters are
  // cumulative across kill + resume, like the evaluations they describe.
  if (!replayed.metrics.is_null()) {
    session->metrics_ = SessionMetrics::from_json(replayed.metrics);
    session->wall_base_seconds_ = session->metrics_.wall_seconds;
  }
  // Quarantine knowledge survives the crash: a configuration that earned its
  // "quar" record is refused immediately, not re-learned two crashes at a
  // time.
  for (const auto& q : replayed.quarantined) session->quarantine_.quarantine_now(q);
  // Replay-cache entries return oldest-first, so re-inserting in order
  // reproduces the live cache's eviction order exactly.
  for (auto& [key, resp] : replayed.rpc_cache) {
    session->replay_.put(key, std::move(resp));
  }
  session->next_id_ = std::max(session->next_id_, replayed.next_id);
  if (session->structure_) {
    // Restore the learned structure exactly: the journaled snapshot carries
    // the affinity matrix, active partition, policy state, and adoption
    // history; the observation archive is rebuilt from the replayed
    // evaluations (the snapshot covers the first `observations()` finite
    // ones), and any evaluations told after the last snapshot are re-fed so
    // the learner ends up byte-for-byte where the killed session was.
    // Legacy journals without a struct record take the re-feed path from
    // zero — migration-safe, just a fresh learner over the same data.
    if (!replayed.structure.is_null()) {
      session->structure_->restore(replayed.structure);
    }
    const std::size_t seen = session->structure_->observations();
    const std::vector<search::Evaluation> all = session->db_.all();
    std::vector<std::vector<double>> units;
    std::vector<double> values;
    std::vector<const search::Evaluation*> tail;
    for (const auto& e : all) {
      if (!std::isfinite(e.value)) continue;
      if (units.size() < seen) {
        units.push_back(space.encode_unit(e.config));
        values.push_back(e.value);
      } else {
        tail.push_back(&e);
      }
    }
    session->structure_->seed_archive(units, values);
    for (const auto* e : tail) session->feed_structure_locked(e->config, e->value);
    if (replayed.structure.is_null() && session->store_) {
      session->store_->structure(session->structure_->snapshot());
    }
  }
  if (replayed.salvage.lost_records > 0 || replayed.salvage.corrupt_segments > 0) {
    // Resume provenance: the journal now explicitly records that this
    // incarnation continued from a salvaged store, and what the repair cost.
    session->store_->salvage_marker(replayed.salvage.lost_records,
                                    replayed.salvage.corrupt_segments);
    log_warn("session: resumed '", journal_path, "' after salvage: ",
             replayed.salvage.lost_records, " record(s) lost across ",
             replayed.salvage.corrupt_segments, " corrupt file(s)");
  }
  log_info("session: resumed ", session->db_.size(), " evaluations, ",
           session->reissue_.size(), " in-flight candidates, and ",
           replayed.quarantined.size(), " quarantined configs from ", journal_path);
  return session;
}

JournalHeader TuningSession::make_header() const {
  JournalHeader h;
  h.space_size = space_.size();
  h.max_evals = options_.max_evals;
  h.seed = options_.seed;
  h.backend = to_string(options_.backend);
  h.next_id = next_id_;
  return h;
}

std::vector<Candidate> TuningSession::ask(std::size_t k) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Candidate> out;
  if (closed_ || k == 0 || db_.size() >= options_.max_evals) return out;
  expire_overdue_locked();

  const auto now = std::chrono::steady_clock::now();

  // Re-issues drain first — and exclusively, so a resumed or retrying
  // session completes its in-flight work before new suggestions (which
  // would otherwise be conditioned on an incomplete evaluation set). A
  // queued candidate whose config has since been quarantined (e.g. restored
  // by resume) is dropped here instead of re-issued: it is still open in the
  // journal from its original ask, so the drop resolves it on replay.
  while (out.size() < k && !reissue_.empty()) {
    Candidate c = std::move(reissue_.front());
    reissue_.pop_front();
    if (quarantine_.quarantined(c.config)) {
      log_warn("session: candidate ", c.id, " is quarantined; dropping");
      if (store_) store_->drop(c.id, options_.failure_penalty,
                               robust::EvalOutcome::Crashed);
      ++metrics_.drops;
      record_locked(c.config, options_.failure_penalty, 0.0,
                    robust::EvalOutcome::Crashed);
      continue;
    }
    if (store_) store_->ask(c);
    pending_[c.id] = {c, now};
    out.push_back(std::move(c));
  }
  // Dropping quarantined re-issues consumes budget; recheck before
  // generating fresh suggestions (and never mix the two in one batch).
  if (!out.empty() || db_.size() >= options_.max_evals) return out;

  const std::size_t n_new = std::min(k, issuable_locked());
  if (n_new == 0) return out;
  auto configs = generate_locked(n_new);
  for (auto& cfg : configs) {
    Candidate c{next_id_++, 0, std::move(cfg)};
    if (quarantine_.quarantined(c.config)) {
      // A backend is free to re-suggest a quarantined point (discrete spaces
      // make collisions likely); record the refusal without dispatching.
      // Ask-then-drop keeps the journal replayable: drop resolves only an
      // open candidate.
      log_warn("session: suggestion ", c.id, " is quarantined; dropping");
      if (store_) {
        store_->ask(c);
        store_->drop(c.id, options_.failure_penalty, robust::EvalOutcome::Crashed);
      }
      ++metrics_.drops;
      record_locked(c.config, options_.failure_penalty, 0.0,
                    robust::EvalOutcome::Crashed);
      continue;
    }
    if (store_) store_->ask(c);
    pending_[c.id] = {c, now};
    out.push_back(std::move(c));
  }
  return out;
}

bool TuningSession::tell(std::uint64_t id, double value, double cost_seconds,
                         double dispersion, double duration_ms, int worker_slot,
                         const std::string& worker_node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  if (store_) {
    store_->tell(id, value, cost_seconds, dispersion, duration_ms, worker_slot,
                 worker_node);
  }
  ++metrics_.tells;
  metrics_.cost_seconds += cost_seconds;
  metrics_.eval_duration_ms += duration_ms;
  // Erase before recording: record_locked may compact the journal, and a
  // compaction snapshot must not list this candidate as still in flight.
  const search::Config config = std::move(it->second.candidate.config);
  pending_.erase(it);
  record_locked(config, value, cost_seconds, robust::classify_value(value), dispersion,
                duration_ms, worker_slot);
  return true;
}

bool TuningSession::tell_failure(std::uint64_t id, robust::EvalOutcome why,
                                 const std::string& worker_node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  Candidate c = std::move(it->second.candidate);
  pending_.erase(it);
  fail_attempt_locked(std::move(c), why, worker_node);
  return true;
}

void TuningSession::observe(search::Config config, double value, double cost_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Candidate c{next_id_++, 0, std::move(config)};
  if (store_) {
    store_->ask(c);
    store_->tell(c.id, value, cost_seconds);
  }
  record_locked(c.config, value, cost_seconds, robust::classify_value(value));
}

void TuningSession::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool flush = !closed_;
  closed_ = true;
  if (flush && store_) store_->metrics(metrics_snapshot_locked());
}

SessionMetrics TuningSession::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionMetrics m = metrics_;
  m.wall_seconds = wall_base_seconds_ + watch_.seconds();
  return m;
}

void TuningSession::flush_metrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_) store_->metrics(metrics_snapshot_locked());
}

std::optional<std::string> TuningSession::replayed_rpc(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string* hit = replay_.find(key);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

void TuningSession::remember_rpc(const std::string& key, const std::string& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Journal before caching: a response the client might see on retry must
  // already be durable, or a kill between the two would let a post-restart
  // retry re-execute an operation whose first execution *was* journaled.
  if (store_) store_->rpc(key, response);
  replay_.put(key, response);
}

json::Value TuningSession::metrics_snapshot_locked() const {
  SessionMetrics m = metrics_;
  m.wall_seconds = wall_base_seconds_ + watch_.seconds();
  return m.to_json();
}

void TuningSession::expire_overdue_locked() {
  if (!std::isfinite(options_.deadline_seconds)) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> overdue;
  for (const auto& [id, p] : pending_) {
    const double age = std::chrono::duration<double>(now - p.issued_at).count();
    if (age > options_.deadline_seconds) overdue.push_back(id);
  }
  for (std::uint64_t id : overdue) {
    auto it = pending_.find(id);
    Candidate c = std::move(it->second.candidate);
    pending_.erase(it);
    log_warn("session: candidate ", id, " missed its ", options_.deadline_seconds,
             "s deadline (attempt ", c.attempt + 1, "/", options_.max_attempts, ")");
    fail_attempt_locked(std::move(c), robust::EvalOutcome::TimedOut);
  }
}

void TuningSession::fail_attempt_locked(Candidate candidate, robust::EvalOutcome why,
                                        const std::string& worker_node) {
  if (store_) store_->fail(candidate.id, why, worker_node);
  ++metrics_.fails;
  ++metrics_.failure_outcomes[robust::to_string(why)];
  // Crash quarantine: a configuration that keeps killing its evaluator is
  // withdrawn from circulation even if the retry budget would allow another
  // attempt — retries are for transient failures, and a second crash of the
  // *same* config is evidence the crash is deterministic. The "quar" journal
  // record (written exactly once, at the threshold) makes the ban survive
  // kill + resume.
  if (why == robust::EvalOutcome::Crashed && quarantine_.enabled()) {
    const std::size_t crashes = quarantine_.record_crash(candidate.config);
    if (crashes == quarantine_.threshold()) {
      log_warn("session: configuration of candidate ", candidate.id,
               " quarantined after ", crashes, " crashes");
      if (store_) store_->quarantine(candidate.config);
    }
  }
  const bool banned = quarantine_.quarantined(candidate.config);
  if (!banned && candidate.attempt + 1 < options_.max_attempts) {
    ++candidate.attempt;
    reissue_.push_back(std::move(candidate));
  } else {
    if (store_) store_->drop(candidate.id, options_.failure_penalty, why);
    ++metrics_.drops;
    record_locked(candidate.config, options_.failure_penalty, 0.0, why);
  }
}

void TuningSession::record_locked(const search::Config& config, double value,
                                  double cost_seconds, robust::EvalOutcome outcome,
                                  double dispersion, double duration_ms,
                                  int worker_slot) {
  search::Evaluation e;
  e.config = config;
  e.value = value;
  e.cost_seconds = cost_seconds;
  e.outcome = outcome;
  e.dispersion = dispersion;
  e.duration_ms = duration_ms;
  e.worker_slot = worker_slot;
  db_.record(std::move(e));
  feed_structure_locked(config, value);
  ++completed_since_compact_;
  maybe_compact_locked();
  // A session that just consumed its budget journals its final counters, so
  // a report over the journal alone sees the complete picture.
  if (store_ && db_.size() == options_.max_evals) {
    store_->metrics(metrics_snapshot_locked());
  }
}

void TuningSession::maybe_compact_locked() {
  if (!store_ || options_.compact_every == 0 ||
      completed_since_compact_ < options_.compact_every) {
    return;
  }
  completed_since_compact_ = 0;
  std::vector<Candidate> in_flight;
  in_flight.reserve(pending_.size() + reissue_.size());
  for (const auto& [id, p] : pending_) in_flight.push_back(p.candidate);
  for (const auto& c : reissue_) in_flight.push_back(c);
  store_->compact(make_header(), db_.all(), in_flight, quarantine_.configs(),
                  metrics_snapshot_locked(), replay_.entries(),
                  structure_snapshot_locked());
}

json::Value TuningSession::structure_snapshot_locked() const {
  return structure_ ? structure_->snapshot() : json::Value();
}

json::Value TuningSession::structure_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return structure_snapshot_locked();
}

void TuningSession::feed_structure_locked(const search::Config& config, double value) {
  if (!structure_ || !std::isfinite(value)) return;
  obs::Telemetry* telemetry = options_.telemetry;
  std::optional<obs::ScopedSpan> span;
  if (telemetry != nullptr && structure_->refit_due()) {
    span.emplace(telemetry, "structure.refit");
  }
  const structure::StructureEvent event =
      structure_->observe(space_.encode_unit(config), value);
  span.reset();
  if (!event.refit) return;
  // Durability before visibility, like metrics: the snapshot is journaled the
  // moment it changes, so a kill right after the refit loses nothing.
  if (store_) store_->structure(structure_->snapshot());
  if (event.repartitioned) {
    log_info("session: repartitioned into ", structure_->active_partition().size(),
             " blocks at eval ", structure_->observations(), " (evidence ",
             event.evidence, ")");
  }
  if (telemetry != nullptr) {
    auto& m = telemetry->metrics();
    m.counter(obs::metric::kStructureRefits).inc();
    if (event.repartitioned) m.counter(obs::metric::kStructureRepartitions).inc();
    m.histogram(obs::metric::kStructureRefitSeconds, obs::default_time_buckets())
        .observe(event.refit_seconds);
    m.gauge(obs::metric::kStructureBlocks)
        .set(static_cast<double>(structure_->active_partition().size()));
    m.gauge(obs::metric::kStructureLargestBlock)
        .set(static_cast<double>(structure_->largest_block()));
    m.gauge(obs::metric::kStructureEvalsSinceRepartition)
        .set(static_cast<double>(structure_->evals_since_repartition()));
  }
}

std::size_t TuningSession::issuable_locked() const {
  const std::size_t claimed = db_.size() + pending_.size() + reissue_.size();
  std::size_t left = options_.max_evals > claimed ? options_.max_evals - claimed : 0;
  if (options_.backend == SessionBackend::Grid) {
    const std::size_t supply = next_id_ < grid_.size() ? grid_.size() - next_id_ : 0;
    left = std::min(left, supply);
  }
  return left;
}

std::vector<search::Config> TuningSession::generate_locked(std::size_t n) {
  std::vector<search::Config> out;
  out.reserve(n);
  switch (options_.backend) {
    case SessionBackend::Grid:
      for (std::size_t i = 0; i < n && next_id_ + i < grid_.size(); ++i) {
        out.push_back(grid_[next_id_ + i]);
      }
      return out;
    case SessionBackend::Random:
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(random_candidate(space_, options_.seed, next_id_ + i));
      }
      return out;
    case SessionBackend::Bo:
      break;
  }

  // Bo: serve the initial design first.
  while (out.size() < n && next_id_ + out.size() < init_design_.size()) {
    out.push_back(init_design_[next_id_ + out.size()]);
  }
  if (out.size() == n) return out;
  const std::size_t want = n - out.size();

  // Constant-liar batch: every unresolved candidate — pending, queued, and
  // the ones generated above — enters the surrogate at the incumbent best,
  // so repeated asks without tells still explore distinct regions.
  const auto evals = db_.all();
  double incumbent = std::numeric_limits<double>::infinity();
  for (const auto& e : evals) {
    if (std::isfinite(e.value) && e.value < incumbent) incumbent = e.value;
  }
  if (std::isfinite(incumbent)) {
    search::EvalDb liar_db;
    for (const auto& e : evals) liar_db.record(e.config, e.value, e.cost_seconds);
    for (const auto& [id, p] : pending_) liar_db.record(p.candidate.config, incumbent);
    for (const auto& c : reissue_) liar_db.record(c.config, incumbent);
    for (const auto& cfg : out) liar_db.record(cfg, incumbent);
    try {
      auto batch = bo_.suggest_batch(liar_db, space_, want);
      for (auto& cfg : batch) out.push_back(std::move(cfg));
      return out;
    } catch (const std::exception& e) {
      log_warn("session: suggest_batch failed (", e.what(), "); random fill");
    }
  }
  // No usable surrogate yet (everything failed so far, or it broke down):
  // deterministic per-id random exploration.
  while (out.size() < n) {
    out.push_back(random_candidate(space_, options_.seed, next_id_ + out.size()));
  }
  return out;
}

SessionStatus TuningSession::status_locked() const {
  SessionStatus s;
  s.completed = db_.size();
  s.outstanding = pending_.size();
  s.queued = reissue_.size();
  s.remaining = issuable_locked();
  s.best = db_.best();
  if (closed_) {
    s.state = SessionState::Closed;
  } else if (s.completed >= options_.max_evals ||
             (s.remaining == 0 && s.outstanding == 0 && s.queued == 0)) {
    s.state = SessionState::Exhausted;
  } else {
    s.state = SessionState::Active;
  }
  return s;
}

SessionStatus TuningSession::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_locked();
}

SessionState TuningSession::state() const { return status().state; }

std::size_t TuningSession::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return db_.size();
}

std::size_t TuningSession::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::optional<search::Evaluation> TuningSession::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return db_.best();
}

std::vector<search::Evaluation> TuningSession::evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return db_.all();
}

search::SearchResult TuningSession::to_result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  search::SearchResult result;
  result.method = std::string("session-") + to_string(options_.backend);
  const auto evals = db_.all();
  result.values.reserve(evals.size());
  for (const auto& e : evals) {
    result.values.push_back(e.value);
    if (std::isfinite(e.value) && e.value < result.best_value) {
      result.best_value = e.value;
      result.best_config = e.config;
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = evals.size();
  result.seconds = watch_.seconds();
  return result;
}

}  // namespace tunekit::service
