#include "service/scheduler.hpp"

#include <algorithm>
#include <thread>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace tunekit::service {

search::SearchResult EvalScheduler::run(TuningSession& session,
                                        search::Objective& objective) const {
  std::size_t n_threads = options_.n_threads;
  if (n_threads == 0) n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (!objective.thread_safe()) n_threads = 1;
  const std::size_t batch_size =
      options_.batch_size > 0 ? options_.batch_size : n_threads;

  ThreadPool pool(n_threads);
  while (true) {
    const auto batch = session.ask(batch_size);
    if (batch.empty()) break;  // exhausted (this driver resolves all it asks)
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      const Candidate& c = batch[i];
      Stopwatch watch;
      try {
        const double value = objective.evaluate(c.config);
        session.tell(c.id, value, watch.seconds());
      } catch (const std::exception& e) {
        log_warn("scheduler: evaluation of candidate ", c.id, " failed (", e.what(),
                 ")");
        session.tell_failure(c.id);
      } catch (...) {
        session.tell_failure(c.id);
      }
    });
  }
  return session.to_result();
}

}  // namespace tunekit::service
