#include "service/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace tunekit::service {

search::SearchResult EvalScheduler::run(TuningSession& session,
                                        search::Objective& objective) const {
  std::size_t n_threads = options_.n_threads;
  if (n_threads == 0) n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Process isolation: evaluations go to sandboxed worker processes. The
  // pool's SIGKILL deadline takes over from the in-process watchdog (two
  // competing timers would double-classify), and thread-safety of the
  // in-process objective no longer matters — workers are separate processes.
  const auto sandbox = robust::WorkerPool::create(options_.isolation, n_threads);
  if (!sandbox && !objective.thread_safe()) n_threads = 1;
  const std::size_t batch_size =
      options_.batch_size > 0 ? options_.batch_size : n_threads;

  robust::MeasureOptions measure = options_.measure;
  std::unique_ptr<robust::SandboxedObjective> sandboxed;
  if (sandbox) {
    sandboxed = std::make_unique<robust::SandboxedObjective>(
        sandbox, measure.watchdog.timeout_seconds);
    measure.watchdog.timeout_seconds = std::numeric_limits<double>::infinity();
  }
  search::Objective& eval_obj = sandboxed ? *sandboxed : objective;

  const robust::RobustMeasurer measurer(measure);
  ThreadPool pool(n_threads);
  while (true) {
    const auto batch = session.ask(batch_size);
    if (batch.empty()) break;  // exhausted (this driver resolves all it asks)
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      const Candidate& c = batch[i];
      try {
        // The measurer catches everything the objective can throw — including
        // non-std::exception throws — and classifies it; a hung evaluation
        // comes back TimedOut once the watchdog deadline expires.
        const robust::Measurement m = measurer.measure(eval_obj, c.config);
        if (m.outcome == robust::EvalOutcome::Ok) {
          session.tell(c.id, m.value, m.seconds, m.dispersion);
        } else {
          log_warn("scheduler: candidate ", c.id, " failed as ",
                   robust::to_string(m.outcome),
                   m.error.empty() ? "" : (" (" + m.error + ")"));
          session.tell_failure(c.id, m.outcome);
        }
      } catch (...) {
        // Belt and braces: nothing above should throw, but a worker must
        // never leave a candidate unresolved.
        session.tell_failure(c.id, robust::EvalOutcome::Crashed);
      }
    });
  }
  return session.to_result();
}

}  // namespace tunekit::service
