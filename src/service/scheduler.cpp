#include "service/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::service {

search::SearchResult EvalScheduler::run(TuningSession& session,
                                        search::Objective& objective) const {
  return run_impl(session, &objective);
}

search::SearchResult EvalScheduler::run(TuningSession& session) const {
  if (!options_.backend) {
    throw std::invalid_argument(
        "EvalScheduler::run(session) needs SchedulerOptions::backend");
  }
  return run_impl(session, nullptr);
}

search::SearchResult EvalScheduler::run_impl(TuningSession& session,
                                             search::Objective* objective) const {
  std::size_t n_threads = options_.n_threads;
  obs::Telemetry* telemetry = options_.telemetry;
  const bool traced = telemetry != nullptr && telemetry->enabled();

  // Resolve the evaluation backend: an explicit one (shared pool or fleet
  // dispatcher) wins; otherwise process isolation builds a WorkerPool. The
  // backend's SIGKILL/transport deadline takes over from the in-process
  // watchdog (two competing timers would double-classify), and thread-safety
  // of the in-process objective no longer matters — slots are independent.
  std::shared_ptr<robust::EvalBackend> backend = options_.backend;
  if (backend) {
    if (n_threads == 0) n_threads = std::max<std::size_t>(1, backend->concurrency());
  } else {
    if (n_threads == 0) {
      n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    robust::IsolationOptions isolation = options_.isolation;
    if (isolation.telemetry == nullptr) isolation.telemetry = telemetry;
    backend = robust::WorkerPool::create(isolation, n_threads);
    if (!backend && !objective->thread_safe()) n_threads = 1;
  }
  const std::size_t batch_size =
      options_.batch_size > 0 ? options_.batch_size : n_threads;

  const bool bounded =
      options_.deadline != std::chrono::steady_clock::time_point::max();
  robust::MeasureOptions measure = options_.measure;
  // The configured per-evaluation deadline; each batch clamps it to the
  // remaining end-to-end budget below.
  const double watchdog_seconds = measure.watchdog.timeout_seconds;
  std::unique_ptr<robust::SandboxedObjective> sandboxed;
  if (backend) {
    sandboxed = std::make_unique<robust::SandboxedObjective>(backend, watchdog_seconds);
    measure.watchdog.timeout_seconds = std::numeric_limits<double>::infinity();
  }
  search::Objective* eval_obj = sandboxed ? sandboxed.get() : objective;

  ThreadPool pool(n_threads);
  while (true) {
    robust::MeasureOptions batch_measure = measure;
    if (bounded) {
      const double remaining = std::chrono::duration<double>(
          options_.deadline - std::chrono::steady_clock::now()).count();
      if (remaining <= 0.0) {
        log_warn("scheduler: end-to-end deadline spent; stopping with ",
                 session.completed(), " evaluations recorded");
        if (traced) {
          telemetry->metrics().counter(obs::metric::kDeadlineStopped).inc();
        }
        break;
      }
      if (sandboxed) {
        // Rebind the backend sandbox so no dispatch in this batch is granted
        // more than the remaining budget.
        sandboxed = std::make_unique<robust::SandboxedObjective>(
            backend, std::min(watchdog_seconds, remaining));
        eval_obj = sandboxed.get();
      } else {
        batch_measure.watchdog.timeout_seconds =
            std::min(batch_measure.watchdog.timeout_seconds, remaining);
      }
    }
    const robust::RobustMeasurer measurer(batch_measure);
    const auto batch = session.ask(batch_size);
    if (batch.empty()) break;  // exhausted (this driver resolves all it asks)
    // The batch span is opened on this thread; pool threads adopt its id via
    // CurrentSpanScope so their "eval" spans nest under it (thread-local
    // ambient spans do not cross thread boundaries by themselves).
    obs::ScopedSpan batch_span(telemetry, "scheduler.batch");
    if (traced) {
      telemetry->metrics().gauge(obs::metric::kQueueDepth)
          .set(static_cast<double>(batch.size()));
    }
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      const Candidate& c = batch[i];
      obs::CurrentSpanScope ambient(batch_span.id());
      obs::ScopedSpan eval_span(telemetry, "eval");
      if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
      Stopwatch round_trip;
      try {
        // The measurer catches everything the objective can throw — including
        // non-std::exception throws — and classifies it; a hung evaluation
        // comes back TimedOut once the watchdog deadline expires.
        const robust::Measurement m = measurer.measure(*eval_obj, c.config);
        eval_span.end();
        if (traced) {
          obs::outcome_counter(telemetry->metrics(), robust::to_string(m.outcome)).inc();
          telemetry->metrics()
              .histogram(obs::metric::kEvalSeconds, obs::default_time_buckets())
              .observe(m.seconds);
        }
        // Thread-local slot provenance: set by WorkerPool::evaluate whether
        // the pool is ours or wraps the objective upstream (the executor
        // sandboxes at app level); -1 when no pool ever ran on this thread.
        const int slot = robust::last_worker_slot();
        const std::string& node = robust::last_worker_node();
        if (m.outcome == robust::EvalOutcome::Ok) {
          session.tell(c.id, m.value, m.seconds, m.dispersion,
                       round_trip.seconds() * 1e3, slot, node);
        } else {
          log_warn("scheduler: candidate ", c.id, " failed as ",
                   robust::to_string(m.outcome),
                   m.error.empty() ? "" : (" (" + m.error + ")"));
          session.tell_failure(c.id, m.outcome, node);
        }
      } catch (...) {
        // Belt and braces: nothing above should throw, but a worker must
        // never leave a candidate unresolved.
        session.tell_failure(c.id, robust::EvalOutcome::Crashed);
      }
    });
    if (traced) telemetry->metrics().gauge(obs::metric::kQueueDepth).set(0.0);
    // A kill between batches loses at most this batch's counter updates.
    session.flush_metrics();
  }
  return session.to_result();
}

}  // namespace tunekit::service
