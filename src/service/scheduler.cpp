#include "service/scheduler.hpp"

#include <algorithm>
#include <thread>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace tunekit::service {

search::SearchResult EvalScheduler::run(TuningSession& session,
                                        search::Objective& objective) const {
  std::size_t n_threads = options_.n_threads;
  if (n_threads == 0) n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (!objective.thread_safe()) n_threads = 1;
  const std::size_t batch_size =
      options_.batch_size > 0 ? options_.batch_size : n_threads;

  const robust::RobustMeasurer measurer(options_.measure);
  ThreadPool pool(n_threads);
  while (true) {
    const auto batch = session.ask(batch_size);
    if (batch.empty()) break;  // exhausted (this driver resolves all it asks)
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      const Candidate& c = batch[i];
      try {
        // The measurer catches everything the objective can throw — including
        // non-std::exception throws — and classifies it; a hung evaluation
        // comes back TimedOut once the watchdog deadline expires.
        const robust::Measurement m = measurer.measure(objective, c.config);
        if (m.outcome == robust::EvalOutcome::Ok) {
          session.tell(c.id, m.value, m.seconds, m.dispersion);
        } else {
          log_warn("scheduler: candidate ", c.id, " failed as ",
                   robust::to_string(m.outcome),
                   m.error.empty() ? "" : (" (" + m.error + ")"));
          session.tell_failure(c.id, m.outcome);
        }
      } catch (...) {
        // Belt and braces: nothing above should throw, but a worker must
        // never leave a candidate unresolved.
        session.tell_failure(c.id, robust::EvalOutcome::Crashed);
      }
    });
  }
  return session.to_result();
}

}  // namespace tunekit::service
