#include "service/session_store.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "common/crc32c.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::service {

namespace {

namespace fs = std::filesystem;

constexpr const char* kFormatV1 = "tunekit-session-v1";
constexpr const char* kFormatV2 = "tunekit-session-v2";

json::Value header_value(const JournalHeader& h) {
  json::Object obj;
  obj["e"] = json::Value("open");
  obj["format"] = json::Value(h.format);
  obj["space"] = json::Value(h.space_size);
  obj["max_evals"] = json::Value(h.max_evals);
  obj["seed"] = json::Value(static_cast<double>(h.seed));
  obj["backend"] = json::Value(h.backend);
  obj["next_id"] = json::Value(static_cast<double>(h.next_id));
  if (!h.snapshot.empty()) obj["snapshot"] = json::Value(h.snapshot);
  if (h.format == kFormatV2) obj["seq"] = json::Value(static_cast<double>(h.seq));
  return json::Value(std::move(obj));
}

JournalHeader parse_header(const json::Value& v, const std::string& path) {
  if (!v.is_object() || !v.contains("e") || v.at("e").as_string() != "open" ||
      !v.contains("format") ||
      (v.at("format").as_string() != kFormatV1 &&
       v.at("format").as_string() != kFormatV2)) {
    throw std::runtime_error("SessionStore: '" + path +
                             "' does not start with a tunekit-session header");
  }
  JournalHeader h;
  h.format = v.at("format").as_string();
  h.space_size = static_cast<std::size_t>(v.at("space").as_number());
  h.max_evals = static_cast<std::size_t>(v.at("max_evals").as_number());
  h.seed = static_cast<std::uint64_t>(v.at("seed").as_number());
  h.backend = v.at("backend").as_string();
  h.next_id = static_cast<std::uint64_t>(v.number_or("next_id", 0.0));
  if (v.contains("snapshot")) h.snapshot = v.at("snapshot").as_string();
  h.seq = static_cast<std::uint64_t>(v.number_or("seq", 1.0));
  return h;
}

json::Value ask_value(const Candidate& c) {
  json::Array cfg;
  for (double x : c.config) cfg.emplace_back(x);
  json::Object obj;
  obj["e"] = json::Value("ask");
  obj["id"] = json::Value(static_cast<double>(c.id));
  obj["attempt"] = json::Value(c.attempt);
  obj["config"] = json::Value(std::move(cfg));
  return json::Value(std::move(obj));
}

json::Value cont_value(std::uint64_t seq) {
  json::Object obj;
  obj["e"] = json::Value("cont");
  obj["format"] = json::Value(kFormatV2);
  obj["seq"] = json::Value(static_cast<double>(seq));
  return json::Value(std::move(obj));
}

json::Value seal_value(std::uint64_t seq, std::size_t n) {
  json::Object obj;
  obj["e"] = json::Value("seal");
  obj["seq"] = json::Value(static_cast<double>(seq));
  obj["n"] = json::Value(n);
  return json::Value(std::move(obj));
}

/// v2 record framing: 8 lowercase hex chars of CRC32C(payload), space, payload.
std::string frame_line(const std::string& payload) {
  return common::crc32c_hex(payload) + " " + payload;
}

/// Validate one framed line; on success fills `out` with the parsed payload.
/// A valid record is an object with a string "e" — anything else (bad frame,
/// CRC mismatch, malformed JSON) is damage, not a record.
bool unframe(const std::string& line, json::Value* out) {
  if (line.size() < 10 || line[8] != ' ') return false;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = line[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  const std::string payload = line.substr(9);
  if (common::crc32c_hex(payload) != line.substr(0, 8)) return false;
  try {
    json::Value v = json::parse(payload);
    if (!v.is_object() || !v.contains("e")) return false;
    v.at("e").as_string();
    *out = std::move(v);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Sealed-segment path for sequence `seq`: "<stem>.NNNNNN.jsonl" when the
/// journal ends in ".jsonl", "<path>.NNNNNN" otherwise.
std::string segment_path(const std::string& path, std::uint64_t seq) {
  char num[32];
  std::snprintf(num, sizeof num, "%06llu", static_cast<unsigned long long>(seq));
  const std::string suffix = ".jsonl";
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return path.substr(0, path.size() - suffix.size()) + "." + num + suffix;
  }
  return path + "." + num;
}

/// Sealed segments next to `path`, ascending by sequence number.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& path) {
  const fs::path p(path);
  const fs::path dir = p.parent_path().empty() ? fs::path(".") : p.parent_path();
  const std::string fname = p.filename().string();
  const std::string jsonl = ".jsonl";
  std::string stem;
  std::string suffix;
  if (fname.size() > jsonl.size() &&
      fname.compare(fname.size() - jsonl.size(), jsonl.size(), jsonl) == 0) {
    stem = fname.substr(0, fname.size() - jsonl.size()) + ".";
    suffix = jsonl;
  } else {
    stem = fname + ".";
  }
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string n = it->path().filename().string();
    if (n.size() <= stem.size() + suffix.size()) continue;
    if (n.compare(0, stem.size(), stem) != 0) continue;
    if (!suffix.empty() &&
        n.compare(n.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string mid =
        n.substr(stem.size(), n.size() - stem.size() - suffix.size());
    if (mid.empty() ||
        !std::all_of(mid.begin(), mid.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
      continue;
    }
    out.emplace_back(std::stoull(mid), (dir / n).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// One framed file, scanned line by line.
struct FileScan {
  std::vector<json::Value> records;      ///< valid records, in order
  std::vector<std::string> valid_lines;  ///< their raw framed lines
  std::size_t invalid_lines = 0;         ///< invalid lines *followed by* a valid one
  std::size_t trailing_invalid = 0;      ///< invalid lines at the very end
  std::size_t valid_bytes = 0;           ///< offset just past the last valid line
};

FileScan scan_framed(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("SessionStore: cannot read '" + file + "'");
  }
  FileScan s;
  std::size_t offset = 0;
  std::size_t pending = 0;  // invalid run not yet known to be mid-file
  std::string line;
  while (std::getline(in, line)) {
    // getline consumed the bytes of `line` plus the newline, except possibly
    // at EOF where the final line may lack one.
    const bool had_newline = !in.eof();
    const std::size_t consumed = line.size() + (had_newline ? 1 : 0);
    json::Value v;
    if (!line.empty() && unframe(line, &v)) {
      s.invalid_lines += pending;
      pending = 0;
      s.records.push_back(std::move(v));
      s.valid_lines.push_back(line);
      s.valid_bytes = offset + consumed;
    } else if (!line.empty() || had_newline) {
      ++pending;
    }
    offset += consumed;
  }
  s.trailing_invalid = pending;
  return s;
}

bool is_seal(const json::Value& v) {
  return v.at("e").as_string() == "seal";
}

void fsync_dir_or_throw(common::Io& io, const std::string& dir,
                        const std::string& what) {
  // A rename is atomic but not durable until the directory entry itself is
  // synced; an ignored failure here would quietly void the durability
  // contract the rename exists for — surface it exactly like a file fsync.
  if (io.fsync_dir(dir) != 0) {
    const std::string err = std::strerror(errno);
    log_error("SessionStore: directory fsync failed after ", what, " in '", dir,
              "': ", err);
    throw std::runtime_error("SessionStore: directory fsync failed after " +
                             what + " in '" + dir + "': " + err);
  }
}

std::string parent_dir(const std::string& path) {
  const auto dir = fs::path(path).parent_path();
  return dir.empty() ? std::string(".") : dir.string();
}

/// Quarantine a damaged file: copy it under `<dir>/corrupt/` (deterministic
/// name, overwriting any previous quarantine of the same file).
void quarantine_copy(const std::string& file) {
  const fs::path src(file);
  const fs::path dir = fs::path(parent_dir(file)) / "corrupt";
  std::error_code ec;
  fs::create_directories(dir, ec);
  fs::copy_file(src, dir / src.filename(), fs::copy_options::overwrite_existing,
                ec);
  if (ec) {
    log_warn("SessionStore: could not quarantine '", file, "' to '",
             (dir / src.filename()).string(), "': ", ec.message());
  }
}

/// Atomically rewrite `file` to exactly `lines` (used by salvage).
void rewrite_file(const std::string& file, const std::vector<std::string>& lines) {
  const std::string tmp = file + ".repair.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("SessionStore: cannot write '" + tmp + "'");
    }
    for (const auto& l : lines) out << l << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("SessionStore: write failed for '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, file, ec);
  if (ec) {
    throw std::runtime_error("SessionStore: repair rename failed for '" + file +
                             "': " + ec.message());
  }
  fsync_dir_or_throw(common::real_io(), parent_dir(file), "repair");
}

std::string basename_of(const std::string& path) {
  return fs::path(path).filename().string();
}

/// Everything structural about a v2 journal: header discovery across
/// segments, CRC validation, seal/sequence checks, and (optionally) repair.
struct JournalScan {
  JournalHeader header;
  /// Valid records from live sealed segments then the active file, in order
  /// (structural records — open/cont/seal/salvage — included).
  std::vector<json::Value> records;
  SessionStore::SalvageReport salvage;
  std::size_t live_segments = 0;
};

JournalScan scan_v2(const std::string& path, bool repair,
                    obs::Telemetry* telemetry) {
  JournalScan out;
  FileScan active = scan_framed(path);
  if (active.records.empty()) {
    throw std::runtime_error("SessionStore: '" + path +
                             "' does not start with a tunekit-session header");
  }
  const std::string e0 = active.records.front().at("e").as_string();
  bool have_header = false;
  std::uint64_t active_seq = 1;
  if (e0 == "open") {
    out.header = parse_header(active.records.front(), path);
    active_seq = out.header.seq;
    have_header = true;
  } else if (e0 == "cont") {
    active_seq = static_cast<std::uint64_t>(
        active.records.front().number_or("seq", 1.0));
  } else {
    throw std::runtime_error("SessionStore: '" + path +
                             "' does not start with a tunekit-session header");
  }

  // Live sealed segments: walk backwards from the active sequence to the
  // segment holding the "open" header. Anything older predates the last
  // compaction (whose snapshot supersedes it) and is stale.
  const auto segments = list_segments(path);
  std::vector<std::tuple<std::uint64_t, std::string, FileScan>> live;
  std::uint64_t first_live_seq = active_seq;
  if (!have_header) {
    for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
      if (it->first >= active_seq) continue;
      FileScan s = scan_framed(it->second);
      const bool opens = !s.records.empty() &&
                         s.records.front().at("e").as_string() == "open";
      if (opens) out.header = parse_header(s.records.front(), it->second);
      live.emplace_back(it->first, it->second, std::move(s));
      if (opens) {
        have_header = true;
        first_live_seq = it->first;
        break;
      }
    }
    if (!have_header) {
      throw std::runtime_error("SessionStore: no segment of '" + path +
                               "' holds a tunekit-session header");
    }
    std::reverse(live.begin(), live.end());
  }

  for (const auto& seg : segments) {
    const std::uint64_t seq = seg.first;
    const std::string& file = seg.second;
    if (seq < first_live_seq) {
      out.salvage.notes.push_back("stale segment " + basename_of(file) +
                                  " superseded by snapshot" +
                                  std::string(repair ? " (retired)" : ""));
      if (repair) {
        std::error_code ec;
        fs::remove(file, ec);
      }
    } else if (seq >= active_seq) {
      out.salvage.notes.push_back("unexpected segment " + basename_of(file) +
                                  " at/after the active sequence (ignored)");
    }
  }

  // Validate and ingest live sealed segments.
  std::uint64_t expect_seq = first_live_seq;
  for (auto& [seq, file, scan] : live) {
    if (seq != expect_seq) {
      out.salvage.notes.push_back("segment sequence gap: expected " +
                                  std::to_string(expect_seq) + ", found " +
                                  basename_of(file));
    }
    expect_seq = seq + 1;
    const std::size_t bad = scan.invalid_lines + scan.trailing_invalid;
    bool seal_ok = false;
    if (!scan.records.empty() && is_seal(scan.records.back())) {
      const auto& seal = scan.records.back();
      const auto seal_seq =
          static_cast<std::uint64_t>(seal.number_or("seq", 0.0));
      const auto n = static_cast<std::size_t>(seal.number_or("n", 0.0));
      seal_ok = seal_seq == seq && n == scan.records.size() - 1;
    }
    if (bad > 0 || !seal_ok) {
      ++out.salvage.corrupt_segments;
      out.salvage.lost_records += bad;
      out.salvage.notes.push_back(
          basename_of(file) + ": " + std::to_string(bad) +
          " corrupt line(s), " + std::to_string(scan.records.size()) +
          " record(s) salvaged" + (seal_ok ? "" : ", seal missing/mismatched"));
      if (repair) {
        quarantine_copy(file);
        std::vector<std::string> lines = scan.valid_lines;
        std::vector<json::Value>& records = scan.records;
        if (!records.empty() && is_seal(records.back())) {
          lines.pop_back();
          records.pop_back();
        }
        lines.push_back(frame_line(seal_value(seq, lines.size()).dump()));
        rewrite_file(file, lines);
      } else if (!scan.records.empty() && is_seal(scan.records.back())) {
        scan.records.pop_back();
      }
    }
    for (auto& r : scan.records) out.records.push_back(std::move(r));
    ++out.live_segments;
  }

  // The active file: mid-file damage is corruption (salvage), a trailing
  // invalid run is the classic torn tail (truncate in repair mode).
  if (active.invalid_lines > 0) {
    ++out.salvage.corrupt_segments;
    out.salvage.lost_records += active.invalid_lines;
    out.salvage.notes.push_back(
        basename_of(path) + ": " + std::to_string(active.invalid_lines) +
        " corrupt line(s), " + std::to_string(active.records.size()) +
        " record(s) salvaged");
    if (repair) {
      quarantine_copy(path);
      rewrite_file(path, active.valid_lines);
    }
  }
  if (active.trailing_invalid > 0) {
    ++out.salvage.torn_tails;
    out.salvage.notes.push_back(
        basename_of(path) + ": torn tail at byte " +
        std::to_string(active.valid_bytes) + " (" +
        std::to_string(active.trailing_invalid) + " line(s))" +
        std::string(repair ? ", truncated" : ""));
    log_warn("SessionStore: torn trailing record(s) in '", path, "' at byte ",
             active.valid_bytes);
    if (repair && active.invalid_lines == 0) {
      // (A mid-file rewrite above already dropped the tail too.)
      std::error_code ec;
      fs::resize_file(path, active.valid_bytes, ec);
      if (ec) {
        throw std::runtime_error("SessionStore: torn-tail truncation failed for '" +
                                 path + "': " + ec.message());
      }
    }
  }
  for (auto& r : active.records) out.records.push_back(std::move(r));

  if (telemetry != nullptr && telemetry->enabled() && !out.salvage.clean()) {
    auto& m = telemetry->metrics();
    m.counter(obs::metric::kStorageCorruptSegments)
        .inc(out.salvage.corrupt_segments);
    m.counter(obs::metric::kStorageLostRecords).inc(out.salvage.lost_records);
    if (out.salvage.corrupt_segments > 0) {
      m.counter(obs::metric::kStorageSalvagedRecords).inc(out.records.size());
    }
  }
  return out;
}

std::FILE* open_or_throw(common::Io& io, const std::string& path,
                         const char* mode) {
  std::FILE* f = io.open(path, mode);
  if (!f) {
    throw std::runtime_error("SessionStore: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  return f;
}

/// First line of `path` (no newline); empty when unreadable/empty.
std::string sniff_first_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string first;
  if (in) std::getline(in, first);
  return first;
}

}  // namespace

SessionStore::SessionStore(std::FILE* file, std::string path,
                           const Options& options, bool framed,
                           std::uint64_t seq)
    : file_(file),
      path_(std::move(path)),
      io_(options.io != nullptr ? options.io : &common::real_io()),
      rotate_bytes_(options.rotate_bytes),
      framed_(framed),
      seq_(seq) {}

SessionStore::~SessionStore() {
  if (file_) io_->close(file_);
}

std::unique_ptr<SessionStore> SessionStore::create(const std::string& path,
                                                   const JournalHeader& header,
                                                   const Options& options) {
  const auto dir = fs::path(path).parent_path();
  if (!dir.empty()) fs::create_directories(dir);
  common::Io& io = options.io != nullptr ? *options.io : common::real_io();
  const bool framed = header.format != kFormatV1;
  std::FILE* f = open_or_throw(io, path, "wb");
  auto store = std::unique_ptr<SessionStore>(
      new SessionStore(f, path, options, framed, header.seq));
  store->append_record(header_value(header), /*allow_rotation=*/false);
  return store;
}

std::unique_ptr<SessionStore> SessionStore::append(const std::string& path,
                                                   const Options& options) {
  if (!fs::exists(path)) {
    throw std::runtime_error("SessionStore: no journal at '" + path + "'");
  }
  common::Io& io = options.io != nullptr ? *options.io : common::real_io();
  const std::string first = sniff_first_line(path);
  if (!first.empty() && first.front() == '{') {
    // Legacy v1 journal: keep appending unframed records to it.
    std::FILE* f = open_or_throw(io, path, "ab");
    return std::unique_ptr<SessionStore>(
        new SessionStore(f, path, options, /*framed=*/false, 1));
  }

  FileScan scan = scan_framed(path);
  std::uint64_t seq = 1;
  if (!scan.records.empty()) {
    const std::string& e0 = scan.records.front().at("e").as_string();
    if (e0 == "open") {
      seq = static_cast<std::uint64_t>(scan.records.front().number_or("seq", 1.0));
    } else if (e0 == "cont") {
      seq = static_cast<std::uint64_t>(scan.records.front().number_or("seq", 1.0));
    }
  }
  if (scan.trailing_invalid > 0) {
    // Appending after a torn tail would bury it mid-file and turn a benign
    // crash artifact into corruption at the *next* replay — truncate first.
    log_warn("SessionStore: truncating torn tail of '", path, "' at byte ",
             scan.valid_bytes, " before resuming appends");
    std::error_code ec;
    fs::resize_file(path, scan.valid_bytes, ec);
    if (ec) {
      throw std::runtime_error("SessionStore: torn-tail truncation failed for '" +
                               path + "': " + ec.message());
    }
  }

  if (!scan.records.empty() && is_seal(scan.records.back())) {
    // A crash landed between sealing and renaming: finish the rotation now
    // so the seal stays where replay expects it (end of a sealed segment).
    std::error_code ec;
    if (!io.rename(path, segment_path(path, seq), ec)) {
      throw std::runtime_error("SessionStore: rotation rename failed for '" +
                               path + "': " + ec.message());
    }
    fsync_dir_or_throw(io, parent_dir(path), "rotation");
    std::FILE* f = open_or_throw(io, path, "wb");
    auto store = std::unique_ptr<SessionStore>(
        new SessionStore(f, path, options, /*framed=*/true, seq + 1));
    store->append_record(cont_value(seq + 1), /*allow_rotation=*/false);
    return store;
  }

  std::FILE* f = open_or_throw(io, path, "ab");
  auto store = std::unique_ptr<SessionStore>(
      new SessionStore(f, path, options, /*framed=*/true, seq));
  store->active_records_ = scan.records.size();
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  store->active_bytes_ = ec ? scan.valid_bytes : static_cast<std::size_t>(size);
  return store;
}

void SessionStore::append_record(const json::Value& value, bool allow_rotation) {
  const std::string payload = value.dump();
  append_line(framed_ ? frame_line(payload) : payload);
  ++active_records_;
  if (allow_rotation && framed_ && rotate_bytes_ > 0 &&
      active_bytes_ >= rotate_bytes_) {
    rotate();
  }
}

void SessionStore::append_line(const std::string& line) {
  if (poisoned_) {
    throw StorePoisonedError(
        "SessionStore: store for '" + path_ +
        "' is poisoned after an earlier append failure; reopen the session to "
        "resume from the journal");
  }
  const auto poison = [this](const std::string& what) {
    // fsyncgate: after a failed fsync the kernel has dropped the dirty pages
    // and a *retried* fsync reports success without persisting anything. The
    // only honest reaction is to stop acking appends on this handle.
    poisoned_ = true;
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().counter(obs::metric::kStoragePoisoned).inc();
    }
    log_error("SessionStore: ", what, " for '", path_, "': ",
              std::strerror(errno), " — store is now read-only");
    throw StorePoisonedError("SessionStore: " + what + " for '" + path_ +
                             "': " + std::strerror(errno));
  };
  if (io_->write(file_, line.data(), line.size()) != line.size() ||
      io_->write(file_, "\n", 1) != 1 || io_->flush(file_) != 0) {
    poison("write failed");
  }
  // The durability contract — "an acked tell survives a kill" — holds only
  // if the fsync actually succeeded; a silently-ignored EIO here would turn
  // into lost evaluations at the next resume.
  const bool timing = telemetry_ != nullptr && telemetry_->enabled();
  Stopwatch fsync_watch;
  const int rc = io_->fsync_file(file_);
  if (timing) {
    telemetry_->metrics()
        .histogram(obs::metric::kJournalFsyncSeconds)
        .observe(fsync_watch.seconds());
  }
  if (rc != 0) poison("fsync failed");
  active_bytes_ += line.size() + 1;
}

void SessionStore::rotate() {
  // Seal footer (fsync'd by append_line), rename to the numbered segment,
  // sync the directory, then start a fresh active file with a "cont" record.
  // A crash anywhere in between is recovered by append(): a trailing seal in
  // the active file means "rename never happened — finish it".
  const std::size_t sealed_records = active_records_;
  append_record(seal_value(seq_, sealed_records), /*allow_rotation=*/false);
  io_->close(file_);
  file_ = nullptr;
  std::error_code ec;
  if (!io_->rename(path_, segment_path(path_, seq_), ec)) {
    throw std::runtime_error("SessionStore: rotation rename failed for '" +
                             path_ + "': " + ec.message());
  }
  fsync_dir_or_throw(*io_, parent_dir(path_), "rotation");
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    telemetry_->metrics().counter(obs::metric::kStorageSegmentsSealed).inc();
  }
  if (event_hook_) {
    event_hook_("rotate", "segment " + std::to_string(seq_) + " sealed (" +
                              std::to_string(sealed_records) + " records)");
  }
  file_ = open_or_throw(*io_, path_, "wb");
  ++seq_;
  active_bytes_ = 0;
  active_records_ = 0;
  append_record(cont_value(seq_), /*allow_rotation=*/false);
}

void SessionStore::ask(const Candidate& candidate) {
  append_record(ask_value(candidate));
}

void SessionStore::tell(std::uint64_t id, double value, double cost_seconds,
                        double noise, double duration_ms, int worker_slot,
                        const std::string& worker_node) {
  json::Object obj;
  obj["e"] = json::Value("tell");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["value"] = json::Value(value);
  obj["cost"] = json::Value(cost_seconds);
  if (noise != 0.0) obj["noise"] = json::Value(noise);
  if (duration_ms > 0.0) obj["dur_ms"] = json::Value(duration_ms);
  if (worker_slot >= 0) obj["slot"] = json::Value(worker_slot);
  if (!worker_node.empty()) obj["node"] = json::Value(worker_node);
  append_record(json::Value(std::move(obj)));
}

void SessionStore::fail(std::uint64_t id, robust::EvalOutcome why,
                        const std::string& worker_node) {
  json::Object obj;
  obj["e"] = json::Value("fail");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["why"] = json::Value(std::string(robust::to_string(why)));
  if (!worker_node.empty()) obj["node"] = json::Value(worker_node);
  append_record(json::Value(std::move(obj)));
}

void SessionStore::drop(std::uint64_t id, double value, robust::EvalOutcome why) {
  json::Object obj;
  obj["e"] = json::Value("drop");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["value"] = json::Value(value);
  obj["why"] = json::Value(std::string(robust::to_string(why)));
  append_record(json::Value(std::move(obj)));
}

void SessionStore::quarantine(const search::Config& config) {
  json::Array cfg;
  for (double x : config) cfg.emplace_back(x);
  json::Object obj;
  obj["e"] = json::Value("quar");
  obj["config"] = json::Value(std::move(cfg));
  append_record(json::Value(std::move(obj)));
}

void SessionStore::metrics(const json::Value& snapshot) {
  json::Object obj;
  obj["e"] = json::Value("metrics");
  obj["snap"] = snapshot;
  append_record(json::Value(std::move(obj)));
}

void SessionStore::structure(const json::Value& snapshot) {
  json::Object obj;
  obj["e"] = json::Value("struct");
  obj["snap"] = snapshot;
  append_record(json::Value(std::move(obj)));
}

void SessionStore::rpc(const std::string& key, const std::string& response) {
  json::Object obj;
  obj["e"] = json::Value("rpc");
  obj["key"] = json::Value(key);
  obj["resp"] = json::Value(response);
  append_record(json::Value(std::move(obj)));
}

void SessionStore::salvage_marker(std::size_t lost_records,
                                  std::size_t corrupt_segments) {
  json::Object obj;
  obj["e"] = json::Value("salvage");
  obj["lost"] = json::Value(lost_records);
  obj["segments"] = json::Value(corrupt_segments);
  append_record(json::Value(std::move(obj)));
}

void SessionStore::compact(
    JournalHeader header, const std::vector<search::Evaluation>& completed,
    const std::vector<Candidate>& in_flight,
    const std::vector<search::Config>& quarantined,
    const json::Value& metrics_snapshot,
    const std::vector<std::pair<std::string, std::string>>& rpc_cache,
    const json::Value& structure_snapshot) {
  if (poisoned_) {
    throw StorePoisonedError("SessionStore: store for '" + path_ +
                             "' is poisoned; refusing to compact");
  }
  // The rewritten journal must describe itself: same framing as the store,
  // and the current segment sequence so sealed segments older than this
  // rewrite can never be double-replayed even if retiring them fails.
  header.format = framed_ ? kFormatV2 : kFormatV1;
  header.seq = seq_;

  // 1. Completed evaluations become an EvalDb checkpoint (atomic rename
  //    inside EvalDb::save), referenced from the rewritten header.
  const std::string snapshot = path_ + ".snapshot.json";
  search::EvalDb db;
  for (const auto& e : completed) db.record(e);
  db.save(snapshot, io_);
  header.snapshot = snapshot;

  // 2. Rewrite the journal as header + in-flight asks (+ quarantine and
  //    metrics records, so both survive the rewrite), atomically.
  const std::string tmp = path_ + ".tmp";
  const std::size_t saved_bytes = active_bytes_;
  const std::size_t saved_records = active_records_;
  {
    std::FILE* old = file_;
    file_ = open_or_throw(*io_, tmp, "wb");
    active_bytes_ = 0;
    active_records_ = 0;
    try {
      append_record(header_value(header), /*allow_rotation=*/false);
      for (const auto& c : in_flight) {
        append_record(ask_value(c), /*allow_rotation=*/false);
      }
      for (const auto& q : quarantined) {
        json::Array cfg;
        for (double x : q) cfg.emplace_back(x);
        json::Object obj;
        obj["e"] = json::Value("quar");
        obj["config"] = json::Value(std::move(cfg));
        append_record(json::Value(std::move(obj)), /*allow_rotation=*/false);
      }
      for (const auto& [key, resp] : rpc_cache) {
        // Replay entries are rewritten oldest-first so the resumed cache
        // evicts in the same order the live one would have.
        json::Object obj;
        obj["e"] = json::Value("rpc");
        obj["key"] = json::Value(key);
        obj["resp"] = json::Value(resp);
        append_record(json::Value(std::move(obj)), /*allow_rotation=*/false);
      }
      if (!metrics_snapshot.is_null()) {
        json::Object obj;
        obj["e"] = json::Value("metrics");
        obj["snap"] = metrics_snapshot;
        append_record(json::Value(std::move(obj)), /*allow_rotation=*/false);
      }
      if (!structure_snapshot.is_null()) {
        json::Object obj;
        obj["e"] = json::Value("struct");
        obj["snap"] = structure_snapshot;
        append_record(json::Value(std::move(obj)), /*allow_rotation=*/false);
      }
    } catch (...) {
      io_->close(file_);
      file_ = old;
      active_bytes_ = saved_bytes;
      active_records_ = saved_records;
      fs::remove(tmp);
      throw;
    }
    io_->close(old);
  }
  std::error_code ec;
  if (!io_->rename(tmp, path_, ec)) {
    throw std::runtime_error("SessionStore: compaction rename failed for '" +
                             path_ + "': " + ec.message());
  }
  // The rename is atomic but not durable until the directory entry itself
  // is synced; without this a power cut can resurrect the pre-compaction
  // journal while the snapshot file it references already exists.
  fsync_dir_or_throw(*io_, parent_dir(path_), "compaction");

  // 3. Retire sealed segments: the snapshot supersedes them, and the header
  //    just written records seq_, so even a crash right here cannot replay
  //    them twice.
  for (const auto& [seq, file] : list_segments(path_)) {
    if (seq < seq_) {
      std::error_code rm;
      fs::remove(file, rm);
    }
  }
}

namespace {

/// Apply journal event records to a Replay (shared by v1 and v2). Structural
/// records (open/cont/seal/salvage) are skipped. `tolerate_final` preserves
/// the v1 rule that a malformed *final* record is a torn tail, not an error.
void apply_events(const std::vector<json::Value>& events,
                  const search::SearchSpace& space, const std::string& path,
                  bool tolerate_final, SessionStore::Replay& out) {
  const auto parse_config = [&](const json::Value& entry) {
    const auto& arr = entry.at("config").as_array();
    if (arr.size() != space.size()) {
      throw std::runtime_error("SessionStore: config arity mismatch in " + path);
    }
    search::Config cfg(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) {
      cfg[i] = arr[i].is_null() ? std::numeric_limits<double>::quiet_NaN()
                                : arr[i].as_number();
    }
    return cfg;
  };

  // Pending candidates by id; `fail` keeps them around at attempt + 1 (the
  // live session queues them for re-issue), `tell`/`drop` resolve them.
  std::map<std::uint64_t, Candidate> open;
  std::uint64_t max_id_seen = 0;
  bool any_id = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const bool final_line = i + 1 == events.size();
    const json::Value& v = events[i];
    try {
      const std::string& e = v.at("e").as_string();
      if (e == "open" || e == "cont" || e == "seal" || e == "salvage") continue;
      if (e == "quar") {
        // Quarantine records carry a config, not a candidate id.
        out.quarantined.push_back(parse_config(v));
        continue;
      }
      if (e == "metrics") {
        // Latest snapshot wins; absent "snap" (foreign writer) is tolerated.
        if (v.contains("snap")) out.metrics = v.at("snap");
        continue;
      }
      if (e == "struct") {
        // Learned dependency structure: latest snapshot wins, same contract
        // as metrics. Journals without any struct record (legacy sessions,
        // structure learning off) simply leave Replay::structure null.
        if (v.contains("snap")) out.structure = v.at("snap");
        continue;
      }
      if (e == "rpc") {
        // Idempotency replay entry: keep journal order, later records for
        // the same key supersede earlier ones at the cache layer.
        out.rpc_cache.emplace_back(v.at("key").as_string(),
                                   v.at("resp").as_string());
        continue;
      }
      const auto id = static_cast<std::uint64_t>(v.at("id").as_number());
      max_id_seen = std::max(max_id_seen, id);
      any_id = true;
      if (e == "ask") {
        Candidate c;
        c.id = id;
        c.attempt = static_cast<std::size_t>(v.number_or("attempt", 0.0));
        c.config = parse_config(v);
        open[id] = std::move(c);
      } else if (e == "tell") {
        auto it = open.find(id);
        if (it == open.end()) continue;  // duplicate/out-of-order tell
        const double value = v.at("value").is_null()
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : v.at("value").as_number();
        search::Evaluation done;
        done.config = it->second.config;
        done.value = value;
        done.cost_seconds = v.number_or("cost", 0.0);
        done.outcome = robust::classify_value(value);
        done.dispersion = v.number_or("noise", 0.0);
        done.duration_ms = v.number_or("dur_ms", 0.0);
        done.worker_slot = static_cast<int>(v.number_or("slot", -1.0));
        out.completed.push_back(std::move(done));
        open.erase(it);
      } else if (e == "fail") {
        auto it = open.find(id);
        if (it != open.end()) ++it->second.attempt;
      } else if (e == "drop") {
        auto it = open.find(id);
        if (it == open.end()) continue;
        const double value = v.at("value").is_null()
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : v.at("value").as_number();
        // Seed-era drops carried no "why": assume a crash, the old semantics.
        const robust::EvalOutcome why =
            v.contains("why") ? robust::outcome_from_string(v.at("why").as_string())
                              : robust::EvalOutcome::Crashed;
        out.completed.push_back({it->second.config, value, 0.0, why, 0.0});
        open.erase(it);
      } else {
        throw std::runtime_error("SessionStore: unknown journal event '" + e +
                                 "' in " + path);
      }
    } catch (const std::exception& err) {
      if (!(tolerate_final && final_line)) throw;
      log_warn("SessionStore: ignoring malformed trailing record in '", path,
               "': ", err.what());
    }
  }

  for (auto& [id, c] : open) out.in_flight.push_back(std::move(c));
  out.next_id = std::max(out.header.next_id, any_id ? max_id_seen + 1 : 0);
}

/// Legacy unframed journals: the seed-era rules, unchanged — a torn final
/// line is skipped with a warning, corruption anywhere else throws.
SessionStore::Replay replay_v1(const std::string& path,
                               const search::SearchSpace& space) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SessionStore: cannot read '" + path + "'");
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  if (lines.empty()) {
    throw std::runtime_error("SessionStore: empty journal '" + path + "'");
  }

  SessionStore::Replay out;
  out.header = parse_header(json::parse(lines.front()), path);
  if (out.header.space_size != space.size()) {
    throw std::runtime_error("SessionStore: journal space size mismatch in " + path);
  }
  if (!out.header.snapshot.empty()) {
    const auto db = search::EvalDb::load(out.header.snapshot, space);
    out.completed = db.all();
  }

  std::vector<json::Value> events;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // A crash mid-append leaves the *final* line partially written: usually
    // unparseable JSON, but possibly a parseable fragment missing keys. Any
    // failure on that line means "the last record never fully landed" —
    // recover with a warning instead of failing the whole resume. Earlier
    // lines stay strict: corruption there is real damage, not a torn tail.
    try {
      events.push_back(json::parse(lines[i]));
    } catch (const json::JsonError& err) {
      if (i + 1 == lines.size()) {
        log_warn("SessionStore: ignoring torn trailing record in '", path,
                 "': ", err.what());
        break;
      }
      throw std::runtime_error("SessionStore: corrupt journal line in " + path);
    }
  }
  apply_events(events, space, path, /*tolerate_final=*/true, out);
  return out;
}

}  // namespace

SessionStore::Replay SessionStore::replay(const std::string& path,
                                          const search::SearchSpace& space,
                                          const ReplayOptions& options) {
  const std::string first = sniff_first_line(path);
  if (!fs::exists(path)) {
    throw std::runtime_error("SessionStore: cannot read '" + path + "'");
  }
  if (!first.empty() && first.front() == '{') return replay_v1(path, space);

  JournalScan scan = scan_v2(path, options.repair, options.telemetry);
  Replay out;
  out.header = scan.header;
  out.salvage = std::move(scan.salvage);
  if (out.header.space_size != space.size()) {
    throw std::runtime_error("SessionStore: journal space size mismatch in " + path);
  }
  if (!out.header.snapshot.empty()) {
    const auto db = search::EvalDb::load(out.header.snapshot, space);
    out.completed = db.all();
  }
  // CRC-valid records cannot be torn — a semantic failure in one is a writer
  // bug and stays fatal everywhere, including the final line.
  apply_events(scan.records, space, path, /*tolerate_final=*/false, out);
  return out;
}

SessionStore::FsckReport SessionStore::fsck(const std::string& path,
                                            bool repair) {
  FsckReport report;
  try {
    const std::string first = sniff_first_line(path);
    if (!fs::exists(path)) {
      throw std::runtime_error("SessionStore: cannot read '" + path + "'");
    }
    if (!first.empty() && first.front() == '{') {
      // Legacy v1: no CRCs to check — verify every line parses, tolerating
      // only the torn-tail position.
      report.legacy_v1 = true;
      std::ifstream in(path);
      std::vector<std::string> lines;
      for (std::string line; std::getline(in, line);) {
        if (!line.empty()) lines.push_back(std::move(line));
      }
      if (lines.empty()) {
        throw std::runtime_error("SessionStore: empty journal '" + path + "'");
      }
      parse_header(json::parse(lines.front()), path);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
          json::parse(lines[i]);
          ++report.records;
        } catch (const json::JsonError&) {
          if (i + 1 != lines.size()) {
            throw std::runtime_error(
                "SessionStore: corrupt journal line in " + path);
          }
          ++report.salvage.torn_tails;
          report.salvage.notes.push_back(basename_of(path) +
                                         ": torn trailing record");
        }
      }
      report.ok = true;
      return report;
    }

    JournalScan scan = scan_v2(path, repair, nullptr);
    report.segments = scan.live_segments;
    report.records = scan.records.size();
    report.salvage = std::move(scan.salvage);
    report.ok = true;
  } catch (const std::exception& err) {
    report.ok = false;
    report.error = err.what();
  }
  return report;
}

}  // namespace tunekit::service
