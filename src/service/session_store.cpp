#include "service/session_store.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define TUNEKIT_HAVE_FSYNC 1
#endif

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::service {

namespace {

json::Value header_value(const JournalHeader& h) {
  json::Object obj;
  obj["e"] = json::Value("open");
  obj["format"] = json::Value(h.format);
  obj["space"] = json::Value(h.space_size);
  obj["max_evals"] = json::Value(h.max_evals);
  obj["seed"] = json::Value(static_cast<double>(h.seed));
  obj["backend"] = json::Value(h.backend);
  obj["next_id"] = json::Value(static_cast<double>(h.next_id));
  if (!h.snapshot.empty()) obj["snapshot"] = json::Value(h.snapshot);
  return json::Value(std::move(obj));
}

JournalHeader parse_header(const json::Value& v, const std::string& path) {
  if (!v.is_object() || !v.contains("e") || v.at("e").as_string() != "open" ||
      !v.contains("format") || v.at("format").as_string() != "tunekit-session-v1") {
    throw std::runtime_error("SessionStore: '" + path +
                             "' does not start with a tunekit-session-v1 header");
  }
  JournalHeader h;
  h.space_size = static_cast<std::size_t>(v.at("space").as_number());
  h.max_evals = static_cast<std::size_t>(v.at("max_evals").as_number());
  h.seed = static_cast<std::uint64_t>(v.at("seed").as_number());
  h.backend = v.at("backend").as_string();
  h.next_id = static_cast<std::uint64_t>(v.number_or("next_id", 0.0));
  if (v.contains("snapshot")) h.snapshot = v.at("snapshot").as_string();
  return h;
}

json::Value ask_value(const Candidate& c) {
  json::Array cfg;
  for (double x : c.config) cfg.emplace_back(x);
  json::Object obj;
  obj["e"] = json::Value("ask");
  obj["id"] = json::Value(static_cast<double>(c.id));
  obj["attempt"] = json::Value(c.attempt);
  obj["config"] = json::Value(std::move(cfg));
  return json::Value(std::move(obj));
}

search::Config parse_config(const json::Value& entry, std::size_t arity,
                            const std::string& path) {
  const auto& arr = entry.at("config").as_array();
  if (arr.size() != arity) {
    throw std::runtime_error("SessionStore: config arity mismatch in " + path);
  }
  search::Config cfg(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    cfg[i] = arr[i].is_null() ? std::numeric_limits<double>::quiet_NaN()
                              : arr[i].as_number();
  }
  return cfg;
}

std::FILE* open_or_throw(const std::string& path, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (!f) {
    throw std::runtime_error("SessionStore: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  return f;
}

}  // namespace

SessionStore::SessionStore(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

SessionStore::~SessionStore() {
  if (file_) std::fclose(file_);
}

std::unique_ptr<SessionStore> SessionStore::create(const std::string& path,
                                                   const JournalHeader& header) {
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  std::FILE* f = open_or_throw(path, "wb");
  auto store = std::unique_ptr<SessionStore>(new SessionStore(f, path));
  store->append_line(header_value(header).dump());
  return store;
}

std::unique_ptr<SessionStore> SessionStore::append(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("SessionStore: no journal at '" + path + "'");
  }
  std::FILE* f = open_or_throw(path, "ab");
  return std::unique_ptr<SessionStore>(new SessionStore(f, path));
}

void SessionStore::append_line(const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    throw std::runtime_error("SessionStore: write failed for '" + path_ + "'");
  }
#ifdef TUNEKIT_HAVE_FSYNC
  // The durability contract — "an acked tell survives a kill" — holds only
  // if the fsync actually succeeded; a silently-ignored EIO here would turn
  // into lost evaluations at the next resume. EINTR is the one retryable
  // failure.
  const bool timing = telemetry_ != nullptr && telemetry_->enabled();
  Stopwatch fsync_watch;
  int rc;
  do {
    rc = ::fsync(::fileno(file_));
  } while (rc != 0 && errno == EINTR);
  if (timing) {
    telemetry_->metrics()
        .histogram(obs::metric::kJournalFsyncSeconds)
        .observe(fsync_watch.seconds());
  }
  if (rc != 0) {
    throw std::runtime_error("SessionStore: fsync failed for '" + path_ +
                             "': " + std::strerror(errno));
  }
#endif
}

void SessionStore::ask(const Candidate& candidate) {
  append_line(ask_value(candidate).dump());
}

void SessionStore::tell(std::uint64_t id, double value, double cost_seconds,
                        double noise, double duration_ms, int worker_slot) {
  json::Object obj;
  obj["e"] = json::Value("tell");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["value"] = json::Value(value);
  obj["cost"] = json::Value(cost_seconds);
  if (noise != 0.0) obj["noise"] = json::Value(noise);
  if (duration_ms > 0.0) obj["dur_ms"] = json::Value(duration_ms);
  if (worker_slot >= 0) obj["slot"] = json::Value(worker_slot);
  append_line(json::Value(std::move(obj)).dump());
}

void SessionStore::fail(std::uint64_t id, robust::EvalOutcome why) {
  json::Object obj;
  obj["e"] = json::Value("fail");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["why"] = json::Value(std::string(robust::to_string(why)));
  append_line(json::Value(std::move(obj)).dump());
}

void SessionStore::drop(std::uint64_t id, double value, robust::EvalOutcome why) {
  json::Object obj;
  obj["e"] = json::Value("drop");
  obj["id"] = json::Value(static_cast<double>(id));
  obj["value"] = json::Value(value);
  obj["why"] = json::Value(std::string(robust::to_string(why)));
  append_line(json::Value(std::move(obj)).dump());
}

void SessionStore::quarantine(const search::Config& config) {
  json::Array cfg;
  for (double x : config) cfg.emplace_back(x);
  json::Object obj;
  obj["e"] = json::Value("quar");
  obj["config"] = json::Value(std::move(cfg));
  append_line(json::Value(std::move(obj)).dump());
}

void SessionStore::metrics(const json::Value& snapshot) {
  json::Object obj;
  obj["e"] = json::Value("metrics");
  obj["snap"] = snapshot;
  append_line(json::Value(std::move(obj)).dump());
}

void SessionStore::compact(JournalHeader header,
                           const std::vector<search::Evaluation>& completed,
                           const std::vector<Candidate>& in_flight,
                           const std::vector<search::Config>& quarantined,
                           const json::Value& metrics_snapshot) {
  // 1. Completed evaluations become an EvalDb checkpoint (atomic rename
  //    inside EvalDb::save), referenced from the rewritten header.
  const std::string snapshot = path_ + ".snapshot.json";
  search::EvalDb db;
  for (const auto& e : completed) db.record(e);
  db.save(snapshot);
  header.snapshot = snapshot;

  // 2. Rewrite the journal as header + in-flight asks (+ quarantine and
  //    metrics records, so both survive the rewrite), atomically.
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* old = file_;
    file_ = open_or_throw(tmp, "wb");
    try {
      append_line(header_value(header).dump());
      for (const auto& c : in_flight) append_line(ask_value(c).dump());
      for (const auto& q : quarantined) quarantine(q);
      if (!metrics_snapshot.is_null()) metrics(metrics_snapshot);
    } catch (...) {
      std::fclose(file_);
      file_ = old;
      std::filesystem::remove(tmp);
      throw;
    }
    std::fclose(old);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    throw std::runtime_error("SessionStore: compaction rename failed for '" + path_ +
                             "': " + ec.message());
  }
#ifdef TUNEKIT_HAVE_FSYNC
  // The rename is atomic but not durable until the directory entry itself
  // is synced; without this a power cut can resurrect the pre-compaction
  // journal while the snapshot file it references already exists.
  const auto dir = std::filesystem::path(path_).parent_path();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
}

SessionStore::Replay SessionStore::replay(const std::string& path,
                                          const search::SearchSpace& space) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SessionStore: cannot read '" + path + "'");
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  if (lines.empty()) {
    throw std::runtime_error("SessionStore: empty journal '" + path + "'");
  }

  Replay out;
  out.header = parse_header(json::parse(lines.front()), path);
  if (out.header.space_size != space.size()) {
    throw std::runtime_error("SessionStore: journal space size mismatch in " + path);
  }
  if (!out.header.snapshot.empty()) {
    const auto db = search::EvalDb::load(out.header.snapshot, space);
    out.completed = db.all();
  }

  // Pending candidates by id; `fail` keeps them around at attempt + 1 (the
  // live session queues them for re-issue), `tell`/`drop` resolve them.
  std::map<std::uint64_t, Candidate> open;
  std::uint64_t max_id_seen = 0;
  bool any_id = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // A crash mid-append leaves the *final* line partially written: usually
    // unparseable JSON, but possibly a parseable fragment missing keys. Any
    // failure on that line means "the last record never fully landed" —
    // recover with a warning instead of failing the whole resume. Earlier
    // lines stay strict: corruption there is real damage, not a torn tail.
    const bool final_line = i + 1 == lines.size();
    json::Value v;
    try {
      v = json::parse(lines[i]);
    } catch (const json::JsonError& err) {
      if (final_line) {
        log_warn("SessionStore: ignoring torn trailing record in '", path,
                 "': ", err.what());
        break;
      }
      throw std::runtime_error("SessionStore: corrupt journal line in " + path);
    }
    try {
      const std::string& e = v.at("e").as_string();
      if (e == "quar") {
        // Quarantine records carry a config, not a candidate id.
        out.quarantined.push_back(parse_config(v, space.size(), path));
        continue;
      }
      if (e == "metrics") {
        // Latest snapshot wins; absent "snap" (foreign writer) is tolerated.
        if (v.contains("snap")) out.metrics = v.at("snap");
        continue;
      }
      const auto id = static_cast<std::uint64_t>(v.at("id").as_number());
      max_id_seen = std::max(max_id_seen, id);
      any_id = true;
      if (e == "ask") {
        Candidate c;
        c.id = id;
        c.attempt = static_cast<std::size_t>(v.number_or("attempt", 0.0));
        c.config = parse_config(v, space.size(), path);
        open[id] = std::move(c);
      } else if (e == "tell") {
        auto it = open.find(id);
        if (it == open.end()) continue;  // duplicate/out-of-order tell
        const double value = v.at("value").is_null()
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : v.at("value").as_number();
        search::Evaluation done;
        done.config = it->second.config;
        done.value = value;
        done.cost_seconds = v.number_or("cost", 0.0);
        done.outcome = robust::classify_value(value);
        done.dispersion = v.number_or("noise", 0.0);
        done.duration_ms = v.number_or("dur_ms", 0.0);
        done.worker_slot = static_cast<int>(v.number_or("slot", -1.0));
        out.completed.push_back(std::move(done));
        open.erase(it);
      } else if (e == "fail") {
        auto it = open.find(id);
        if (it != open.end()) ++it->second.attempt;
      } else if (e == "drop") {
        auto it = open.find(id);
        if (it == open.end()) continue;
        const double value = v.at("value").is_null()
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : v.at("value").as_number();
        // Seed-era drops carried no "why": assume a crash, the old semantics.
        const robust::EvalOutcome why =
            v.contains("why") ? robust::outcome_from_string(v.at("why").as_string())
                              : robust::EvalOutcome::Crashed;
        out.completed.push_back({it->second.config, value, 0.0, why, 0.0});
        open.erase(it);
      } else {
        throw std::runtime_error("SessionStore: unknown journal event '" + e +
                                 "' in " + path);
      }
    } catch (const std::exception& err) {
      if (!final_line) throw;
      log_warn("SessionStore: ignoring malformed trailing record in '", path,
               "': ", err.what());
    }
  }

  for (auto& [id, c] : open) out.in_flight.push_back(std::move(c));
  out.next_id = std::max(out.header.next_id, any_id ? max_id_seen + 1 : 0);
  return out;
}

}  // namespace tunekit::service
