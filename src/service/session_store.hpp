#pragma once
// SessionStore: durable journal behind a TuningSession.
//
// Every ask/tell event of a session is appended as one compact JSON line and
// fsync'd, so a session killed mid-batch loses nothing: replaying the journal
// reconstructs the completed evaluations *and* the in-flight candidates that
// were issued but never resolved — strictly stronger crash recovery than the
// EvalDb checkpoints, which only persist completed evaluations every
// `checkpoint_every` steps.
//
// Journal line grammar (format "tunekit-session-v1"):
//   {"e":"open","format":...,"space":N,"max_evals":M,"seed":S,
//    "backend":"bo","next_id":K[,"snapshot":PATH]}      header, first line
//   {"e":"ask","id":I,"attempt":A,"config":[...]}       candidate issued
//   {"e":"tell","id":I,"value":V,"cost":C[,"noise":D]
//    [,"dur_ms":T][,"slot":S]}                          evaluation reported
//   {"e":"fail","id":I[,"why":W]}                       attempt failed; will retry
//   {"e":"drop","id":I,"value":V[,"why":W]}             retries exhausted; V recorded
//   {"e":"quar","config":[...]}                         config quarantined: crashed
//                                                       its way past the threshold;
//                                                       never re-issued, even after
//                                                       resume
//   {"e":"metrics","snap":{...}}                        session metrics snapshot
//                                                       (latest wins; rewritten by
//                                                       compaction so it survives)
//
// "why" is an EvalOutcome string ("crashed", "timed-out", "invalid-config",
// "non-finite"; absent = crashed, the seed-era assumption), "noise" the robust
// dispersion of a repeated measurement, "dur_ms" the wall-clock round-trip
// milliseconds of the evaluation, and "slot" the worker-pool slot that ran it.
// All are optional, so seed-era journals replay unchanged.
//
// Compaction folds completed evaluations into an EvalDb-format snapshot file
// (written via atomic rename) and rewrites the journal (also via atomic
// rename) to just the header plus the in-flight asks, bounding journal growth
// for long sessions.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "robust/outcome.hpp"
#include "search/eval_db.hpp"
#include "search/space.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::service {

/// A configuration issued by ask() and awaiting its tell().
struct Candidate {
  std::uint64_t id = 0;
  /// 0-based issue attempt; incremented when a failed or expired candidate
  /// is re-issued.
  std::size_t attempt = 0;
  search::Config config;
};

struct JournalHeader {
  std::string format = "tunekit-session-v1";
  std::size_t space_size = 0;
  std::size_t max_evals = 0;
  std::uint64_t seed = 0;
  std::string backend;
  /// First candidate id not yet allocated (advanced by compaction so ids
  /// stay unique after evaluations are folded into the snapshot).
  std::uint64_t next_id = 0;
  /// EvalDb-format snapshot holding evaluations compacted out of the journal
  /// (empty = none).
  std::string snapshot;
};

class SessionStore {
 public:
  /// Journal state reconstructed by replay().
  struct Replay {
    JournalHeader header;
    /// Completed evaluations in journal (= tell) order.
    std::vector<search::Evaluation> completed;
    /// Candidates issued but never resolved, ascending by id: these are the
    /// in-flight evaluations a resumed session must re-issue.
    std::vector<Candidate> in_flight;
    /// Configurations quarantined for repeated crashes; a resumed session
    /// must never issue them again.
    std::vector<search::Config> quarantined;
    /// Latest metrics snapshot in the journal (null Value when none): the
    /// session-level counters a resumed session continues from, and what
    /// `tunekit_cli report` aggregates without replaying the evaluations.
    json::Value metrics;
    std::uint64_t next_id = 0;
  };

  /// Start a fresh journal at `path` (truncating any previous one) and write
  /// the header line.
  static std::unique_ptr<SessionStore> create(const std::string& path,
                                              const JournalHeader& header);

  /// Reopen an existing journal for appending (resume); the header is left
  /// untouched.
  static std::unique_ptr<SessionStore> append(const std::string& path);

  /// Parse a journal (following its snapshot reference, if any). Throws
  /// std::runtime_error on a missing/corrupt header or a config arity
  /// mismatch against `space`. A trailing partial record (torn write during
  /// a crash — unparseable JSON *or* a parseable fragment missing keys) is
  /// logged as a warning and skipped; corruption anywhere else still throws.
  static Replay replay(const std::string& path, const search::SearchSpace& space);

  ~SessionStore();
  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  const std::string& path() const { return path_; }

  /// Observe journal fsync latency into `telemetry` (null disables; safe to
  /// leave unset — the default costs nothing).
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  void ask(const Candidate& candidate);
  void tell(std::uint64_t id, double value, double cost_seconds, double noise = 0.0,
            double duration_ms = 0.0, int worker_slot = -1);
  void fail(std::uint64_t id,
            robust::EvalOutcome why = robust::EvalOutcome::Crashed);
  void drop(std::uint64_t id, double value,
            robust::EvalOutcome why = robust::EvalOutcome::Crashed);
  /// Record that `config` crashed past the quarantine threshold and must
  /// never be issued again (survives compaction and resume).
  void quarantine(const search::Config& config);
  /// Journal a metrics snapshot (any JSON object; latest record wins on
  /// replay). Pass the same snapshot to compact() so it survives rewrites.
  void metrics(const json::Value& snapshot);

  /// Fold `completed` into an EvalDb snapshot (atomic rename) and rewrite
  /// the journal to header + in-flight asks + quarantine records + the
  /// latest metrics snapshot (atomic rename).
  void compact(JournalHeader header, const std::vector<search::Evaluation>& completed,
               const std::vector<Candidate>& in_flight,
               const std::vector<search::Config>& quarantined = {},
               const json::Value& metrics_snapshot = json::Value());

 private:
  SessionStore(std::FILE* file, std::string path);

  /// Append one line and fsync it to disk.
  void append_line(const std::string& line);

  std::FILE* file_ = nullptr;
  std::string path_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace tunekit::service
