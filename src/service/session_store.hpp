#pragma once
// SessionStore: durable journal behind a TuningSession.
//
// Every ask/tell event of a session is appended as one compact JSON line and
// fsync'd, so a session killed mid-batch loses nothing: replaying the journal
// reconstructs the completed evaluations *and* the in-flight candidates that
// were issued but never resolved — strictly stronger crash recovery than the
// EvalDb checkpoints, which only persist completed evaluations every
// `checkpoint_every` steps.
//
// Record framing (format "tunekit-session-v2"): every journal line is
//
//   <8 lowercase hex chars: CRC32C of the JSON payload><space><JSON>\n
//
// so bit rot is *detected*, not silently replayed into the model. Journals
// whose first line starts with '{' are legacy "tunekit-session-v1" (unframed);
// they replay — and keep being appended to — with the v1 rules unchanged.
//
// JSON payload grammar (shared by v1 and v2):
//   {"e":"open","format":...,"space":N,"max_evals":M,"seed":S,
//    "backend":"bo","next_id":K[,"snapshot":PATH][,"seq":Q]}  header, first line
//   {"e":"cont","format":...,"seq":Q}                   first line of a
//                                                       post-rotation segment
//   {"e":"ask","id":I,"attempt":A,"config":[...]}       candidate issued
//   {"e":"tell","id":I,"value":V,"cost":C[,"noise":D]
//    [,"dur_ms":T][,"slot":S][,"node":ID]}              evaluation reported
//   {"e":"fail","id":I[,"why":W]}                       attempt failed; will retry
//   {"e":"drop","id":I,"value":V[,"why":W]}             retries exhausted; V recorded
//   {"e":"quar","config":[...]}                         config quarantined: crashed
//                                                       its way past the threshold;
//                                                       never re-issued, even after
//                                                       resume
//   {"e":"metrics","snap":{...}}                        session metrics snapshot
//                                                       (latest wins; rewritten by
//                                                       compaction so it survives)
//   {"e":"struct","snap":{...}}                         learned dependency-structure
//                                                       snapshot (affinity matrix,
//                                                       active partition, policy
//                                                       state, adoption history):
//                                                       latest wins on replay,
//                                                       rewritten by compaction, so
//                                                       resume restores the living
//                                                       partition exactly
//   {"e":"rpc","key":K,"resp":R}                        idempotency-key replay
//                                                       entry: the serialized
//                                                       response already sent for
//                                                       request key K; a retried
//                                                       request replays R instead
//                                                       of re-executing (rewritten
//                                                       by compaction, oldest
//                                                       first)
//   {"e":"seal","seq":Q,"n":N}                          segment footer: the segment
//                                                       is complete and holds N
//                                                       records before the seal
//   {"e":"salvage","lost":N,"segments":M}               resume provenance: a repair
//                                                       pass dropped N corrupt
//                                                       records / quarantined M
//                                                       segments before this point
//
// "why" is an EvalOutcome string ("crashed", "timed-out", "invalid-config",
// "non-finite"; absent = crashed, the seed-era assumption), "noise" the robust
// dispersion of a repeated measurement, "dur_ms" the wall-clock round-trip
// milliseconds of the evaluation, and "slot" the worker-pool slot that ran it.
// All are optional, so seed-era journals replay unchanged.
//
// Segment rotation: once the active file exceeds `rotate_bytes` it is sealed
// (framed seal footer, fsync, rename to `<stem>.NNNNNN.jsonl`, directory
// fsync) and a fresh active file opens with a "cont" record. Replay stitches
// sealed segments in sequence order before the active file. Compaction folds
// completed evaluations into an EvalDb-format snapshot (atomic rename),
// rewrites the active file to header + in-flight asks (atomic rename), and
// retires sealed segments — the rewritten header records its segment sequence
// so a crash between rename and retire can never double-replay a stale one.
//
// Recovery distinguishes three kinds of damage:
//   torn tail      an unparseable/CRC-invalid *final* line of the active file:
//                  the classic crash-mid-append; skipped (and physically
//                  truncated in repair mode) with a warning.
//   corruption     a CRC-invalid line anywhere else: real damage. Repair mode
//                  quarantines a copy of the file under `corrupt/`, rewrites
//                  the file with only the valid lines (atomic rename), counts
//                  what was lost, and the resumed session journals an
//                  {"e":"salvage"} marker so provenance is explicit.
//   poisoning      a failed append fsync: per fsyncgate semantics the dirty
//                  page is gone and retrying would falsely succeed, so the
//                  store turns read-only — every later append throws
//                  StorePoisonedError immediately.

#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.hpp"
#include "common/json.hpp"
#include "robust/outcome.hpp"
#include "search/eval_db.hpp"
#include "search/space.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::service {

/// A configuration issued by ask() and awaiting its tell().
struct Candidate {
  std::uint64_t id = 0;
  /// 0-based issue attempt; incremented when a failed or expired candidate
  /// is re-issued.
  std::size_t attempt = 0;
  search::Config config;
};

struct JournalHeader {
  std::string format = "tunekit-session-v2";
  std::size_t space_size = 0;
  std::size_t max_evals = 0;
  std::uint64_t seed = 0;
  std::string backend;
  /// First candidate id not yet allocated (advanced by compaction so ids
  /// stay unique after evaluations are folded into the snapshot).
  std::uint64_t next_id = 0;
  /// EvalDb-format snapshot holding evaluations compacted out of the journal
  /// (empty = none).
  std::string snapshot;
  /// Segment sequence of the file this header opens (v2): sealed segments
  /// with a lower sequence predate the snapshot and are ignored on replay.
  std::uint64_t seq = 1;
};

/// Thrown by appends after a failed journal fsync: the store is read-only
/// because the page the kernel dropped cannot be recovered by retrying
/// (fsyncgate). The session's journaled state up to the *previous* ack is
/// intact; everything since is gone and callers must treat it that way.
class StorePoisonedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// SessionStore construction knobs; defaults match production. (Namespace
/// scope so the member initializers are usable in SessionStore's own default
/// arguments — nested-class initializers are parsed too late for that.)
struct StoreOptions {
  /// File-IO seam (null = real_io()). Tests inject a common::FaultIo here.
  common::Io* io = nullptr;
  /// Seal + rotate the active file past this many bytes (0 disables).
  std::size_t rotate_bytes = 256 * 1024;
};

struct StoreReplayOptions {
  /// Repair while replaying: quarantine+rewrite corrupt files, truncate the
  /// torn tail. False = read-only (damage is only counted and skipped).
  bool repair = false;
  /// Count salvage/storage metrics here (null disables).
  obs::Telemetry* telemetry = nullptr;
};

class SessionStore {
 public:
  using Options = StoreOptions;
  using ReplayOptions = StoreReplayOptions;

  /// What a recovery/verification pass found (and, in repair mode, fixed).
  struct SalvageReport {
    /// CRC-invalid or unparseable non-tail lines dropped.
    std::size_t lost_records = 0;
    /// Segment files found damaged (quarantined to corrupt/ in repair mode).
    std::size_t corrupt_segments = 0;
    /// 1 if the active file ended in a torn line (truncated in repair mode).
    std::size_t torn_tails = 0;
    /// Human-readable per-file findings, deterministic order.
    std::vector<std::string> notes;
    bool clean() const {
      return lost_records == 0 && corrupt_segments == 0 && torn_tails == 0;
    }
  };

  /// Journal state reconstructed by replay().
  struct Replay {
    JournalHeader header;
    /// Completed evaluations in journal (= tell) order.
    std::vector<search::Evaluation> completed;
    /// Candidates issued but never resolved, ascending by id: these are the
    /// in-flight evaluations a resumed session must re-issue.
    std::vector<Candidate> in_flight;
    /// Configurations quarantined for repeated crashes; a resumed session
    /// must never issue them again.
    std::vector<search::Config> quarantined;
    /// Latest metrics snapshot in the journal (null Value when none): the
    /// session-level counters a resumed session continues from, and what
    /// `tunekit_cli report` aggregates without replaying the evaluations.
    json::Value metrics;
    /// Latest dependency-structure snapshot (null Value when none, e.g. a
    /// legacy journal or a session without online structure learning): the
    /// learned affinity matrix + active partition a resumed session's
    /// structure::OnlineLearner restores byte-for-byte.
    json::Value structure;
    /// Idempotency-key replay entries in journal order (oldest first, later
    /// records for the same key superseding earlier ones): the responses a
    /// resumed session must keep answering retried requests with.
    std::vector<std::pair<std::string, std::string>> rpc_cache;
    std::uint64_t next_id = 0;
    /// Damage found by this pass (all zeros for a healthy journal).
    SalvageReport salvage;
  };

  /// Offline structural verification (`tunekit_cli fsck`): framing, CRCs,
  /// segment seals and sequence — everything that does not need the search
  /// space. With `repair`, damage is quarantined/rewritten as in replay.
  struct FsckReport {
    bool ok = false;          ///< journal readable (possibly after repair)
    bool legacy_v1 = false;   ///< unframed v1 journal: CRC checks not possible
    std::size_t segments = 0; ///< sealed segments examined
    std::size_t records = 0;  ///< valid records seen (including header)
    SalvageReport salvage;
    std::string error;        ///< non-empty when !ok
  };

  /// Start a fresh journal at `path` (truncating any previous one) and write
  /// the header line.
  static std::unique_ptr<SessionStore> create(const std::string& path,
                                              const JournalHeader& header,
                                              const Options& options = Options());

  /// Reopen an existing journal for appending (resume); the header is left
  /// untouched. The journal's own format (v1/v2) decides how new records are
  /// framed.
  static std::unique_ptr<SessionStore> append(const std::string& path,
                                              const Options& options = Options());

  /// Parse a journal — sealed segments in sequence order, then the active
  /// file — following its snapshot reference, if any. Throws
  /// std::runtime_error on a missing/corrupt header or a config arity
  /// mismatch against `space`. Damage handling depends on the journal
  /// format: v2 skips (or, in repair mode, salvages) CRC-invalid records and
  /// reports them in `Replay::salvage`; legacy v1 keeps the seed-era rules —
  /// a torn final line is skipped with a warning, corruption anywhere else
  /// throws.
  static Replay replay(const std::string& path, const search::SearchSpace& space,
                       const ReplayOptions& options = ReplayOptions());

  /// Structure-only verification/repair of one journal (no search space
  /// needed). Never throws: problems land in the report.
  static FsckReport fsck(const std::string& path, bool repair = false);

  ~SessionStore();
  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  const std::string& path() const { return path_; }

  /// True once an append failed: the store is read-only and every append
  /// throws StorePoisonedError (see class comment).
  bool poisoned() const { return poisoned_; }

  /// Observe journal fsync latency into `telemetry` (null disables; safe to
  /// leave unset — the default costs nothing).
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Structured-event hook for storage lifecycle events the layers above
  /// cannot see (today: "rotate" when a segment is sealed). Feeds the
  /// per-session flight recorder; empty disables.
  void set_event_hook(std::function<void(std::string_view, std::string_view)> hook) {
    event_hook_ = std::move(hook);
  }

  void ask(const Candidate& candidate);
  /// Non-empty `worker_node` journals a "node" key: the fleet machine that
  /// served this evaluation, for per-node attribution in reports.
  void tell(std::uint64_t id, double value, double cost_seconds, double noise = 0.0,
            double duration_ms = 0.0, int worker_slot = -1,
            const std::string& worker_node = {});
  void fail(std::uint64_t id,
            robust::EvalOutcome why = robust::EvalOutcome::Crashed,
            const std::string& worker_node = {});
  void drop(std::uint64_t id, double value,
            robust::EvalOutcome why = robust::EvalOutcome::Crashed);
  /// Record that `config` crashed past the quarantine threshold and must
  /// never be issued again (survives compaction and resume).
  void quarantine(const search::Config& config);
  /// Journal a metrics snapshot (any JSON object; latest record wins on
  /// replay). Pass the same snapshot to compact() so it survives rewrites.
  void metrics(const json::Value& snapshot);
  /// Journal a learned dependency-structure snapshot (latest wins on
  /// replay). Pass the same snapshot to compact() so it survives rewrites.
  void structure(const json::Value& snapshot);
  /// Journal an idempotency-key replay entry: `response` is what was (or is
  /// about to be) answered for request key `key`; after a crash the resumed
  /// session replays it for a retried request instead of re-executing.
  void rpc(const std::string& key, const std::string& response);
  /// Journal resume provenance after a repairing replay dropped records.
  void salvage_marker(std::size_t lost_records, std::size_t corrupt_segments);

  /// Fold `completed` into an EvalDb snapshot (atomic rename) and rewrite
  /// the journal to header + in-flight asks + quarantine records + the
  /// latest metrics snapshot (atomic rename); sealed segments older than the
  /// rewritten header are retired.
  void compact(JournalHeader header, const std::vector<search::Evaluation>& completed,
               const std::vector<Candidate>& in_flight,
               const std::vector<search::Config>& quarantined = {},
               const json::Value& metrics_snapshot = json::Value(),
               const std::vector<std::pair<std::string, std::string>>& rpc_cache = {},
               const json::Value& structure_snapshot = json::Value());

 private:
  SessionStore(std::FILE* file, std::string path, const Options& options,
               bool framed, std::uint64_t seq);

  /// Serialize + frame (v2) one record, append it, and rotate the segment
  /// afterwards if the active file outgrew rotate_bytes.
  void append_record(const json::Value& value, bool allow_rotation = true);
  /// Append one raw line and fsync it to disk; poisons the store on failure.
  void append_line(const std::string& line);
  /// Seal the active file into a numbered segment and start a fresh one.
  void rotate();

  std::FILE* file_ = nullptr;
  std::string path_;
  common::Io* io_ = nullptr;
  std::size_t rotate_bytes_ = 0;
  /// v2 journals frame records with a CRC; legacy v1 appends stay raw.
  bool framed_ = true;
  bool poisoned_ = false;
  /// Sequence number of the active segment (v2).
  std::uint64_t seq_ = 1;
  /// Bytes and records appended to the active file by this store.
  std::size_t active_bytes_ = 0;
  std::size_t active_records_ = 0;
  obs::Telemetry* telemetry_ = nullptr;
  std::function<void(std::string_view, std::string_view)> event_hook_;
};

}  // namespace tunekit::service
