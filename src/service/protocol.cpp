#include "service/protocol.hpp"

#include <istream>
#include <ostream>

#include "common/json.hpp"
#include "robust/outcome.hpp"
#include "search/config.hpp"

namespace tunekit::service {

namespace {

json::Value named_config(const search::SearchSpace& space, const search::Config& config) {
  json::Object obj;
  for (const auto& [name, value] : search::to_named(space, config)) {
    obj[name] = json::Value(value);
  }
  return json::Value(std::move(obj));
}

std::string error_response(const std::string& message) {
  json::Object obj;
  obj["ok"] = json::Value(false);
  obj["error"] = json::Value(message);
  return json::Value(std::move(obj)).dump();
}

void put_status(json::Object& obj, const SessionStatus& status,
                const search::SearchSpace& space, bool with_best_config) {
  obj["state"] = json::Value(to_string(status.state));
  obj["completed"] = json::Value(status.completed);
  obj["outstanding"] = json::Value(status.outstanding);
  obj["queued"] = json::Value(status.queued);
  obj["remaining"] = json::Value(status.remaining);
  if (status.best) {
    obj["best_value"] = json::Value(status.best->value);
    if (with_best_config) obj["best_config"] = named_config(space, status.best->config);
  }
}

}  // namespace

std::string SessionServer::handle(const std::string& line, bool& exit_requested) {
  exit_requested = false;
  json::Value request;
  try {
    request = json::parse(line);
  } catch (const json::JsonError& e) {
    return error_response(std::string("bad json: ") + e.what());
  }

  try {
    const std::string op = request.at("op").as_string();
    const search::SearchSpace& space = session_.space();
    json::Object reply;
    reply["ok"] = json::Value(true);

    if (op == "ask") {
      const auto k = static_cast<std::size_t>(request.number_or("k", 1.0));
      const auto batch = session_.ask(k);
      json::Array candidates;
      for (const auto& c : batch) {
        json::Object cand;
        cand["id"] = json::Value(static_cast<double>(c.id));
        cand["attempt"] = json::Value(c.attempt);
        cand["config"] = named_config(space, c.config);
        candidates.emplace_back(std::move(cand));
      }
      reply["candidates"] = json::Value(std::move(candidates));
      const auto status = session_.status();
      reply["state"] = json::Value(to_string(status.state));
      reply["remaining"] = json::Value(status.remaining);
    } else if (op == "tell") {
      const double value = request.at("value").is_null()
                               ? std::numeric_limits<double>::quiet_NaN()
                               : request.at("value").as_number();
      const double cost = request.number_or("cost_seconds", 0.0);
      const double noise = request.number_or("noise", 0.0);
      bool accepted = true;
      if (request.contains("id")) {
        accepted = session_.tell(
            static_cast<std::uint64_t>(request.at("id").as_number()), value, cost,
            noise);
      } else if (request.contains("config")) {
        search::NamedConfig named;
        for (const auto& [name, v] : request.at("config").as_object()) {
          // from_named() silently ignores unknown keys; a client typo must
          // surface as an error, not be absorbed into the defaults.
          if (!space.has(name)) {
            return error_response("unknown parameter '" + name + "'");
          }
          named[name] = v.as_number();
        }
        session_.observe(search::from_named(space, named), value, cost);
      } else {
        return error_response("tell requires an id or a config");
      }
      reply["accepted"] = json::Value(accepted);
      const auto status = session_.status();
      reply["state"] = json::Value(to_string(status.state));
      reply["completed"] = json::Value(status.completed);
      reply["remaining"] = json::Value(status.remaining);
      if (status.best) reply["best_value"] = json::Value(status.best->value);
    } else if (op == "fail") {
      // Optional "why": an EvalOutcome string; absent keeps the seed-era
      // crashed classification. A bad string surfaces as an error reply.
      const robust::EvalOutcome why =
          request.contains("why")
              ? robust::outcome_from_string(request.at("why").as_string())
              : robust::EvalOutcome::Crashed;
      const bool accepted = session_.tell_failure(
          static_cast<std::uint64_t>(request.at("id").as_number()), why);
      reply["accepted"] = json::Value(accepted);
      reply["state"] = json::Value(to_string(session_.state()));
    } else if (op == "status") {
      put_status(reply, session_.status(), space, /*with_best_config=*/true);
    } else if (op == "exit") {
      exit_requested = true;
      put_status(reply, session_.status(), space, /*with_best_config=*/true);
    } else {
      return error_response("unknown op '" + op + "'");
    }
    return json::Value(std::move(reply)).dump();
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::size_t SessionServer::serve(std::istream& in, std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    bool exit_requested = false;
    out << handle(line, exit_requested) << '\n' << std::flush;
    ++handled;
    if (exit_requested) break;
  }
  return handled;
}

}  // namespace tunekit::service
