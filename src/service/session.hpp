#pragma once
// TuningSession: an ask/tell state machine decoupling suggestion from
// evaluation (the GPTune/BoGraph "tuner as a service" shape).
//
// Where BayesOpt::run() owns the evaluation loop, a session only *suggests*:
// ask(k) issues up to k candidate configurations, the caller evaluates them
// however it likes (in-process, over MPI, on another machine) and reports
// results back with tell() — out of order and partially is fine. Failed or
// deadline-expired candidates are retried a bounded number of times and then
// recorded at `failure_penalty` (the same semantics BayesOpt applies to
// crashing evaluations). Once `max_evals` results are recorded the session
// is exhausted and ask() returns nothing.
//
// Backends: Bo (initial design, then BayesOpt::suggest_batch constant-liar
// batches; pending candidates act as liars so repeated asks don't duplicate),
// Random (each candidate id maps to a deterministic valid sample — the
// sequence is identical no matter how asks and tells interleave), and Grid
// (a stride-subsampled factorial enumeration, for the executor's exhaustive
// searches).
//
// With a SessionStore attached every event is journaled durably, and
// resume() reconstructs a killed session: completed evaluations are
// restored, in-flight candidates are re-issued (before any new suggestion),
// and the remaining budget is exactly what it was.

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "bo/bayes_opt.hpp"
#include "common/stopwatch.hpp"
#include "robust/quarantine.hpp"
#include "search/eval_db.hpp"
#include "search/result.hpp"
#include "search/space.hpp"
#include "service/replay_cache.hpp"
#include "service/session_store.hpp"
#include "structure/online_learner.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::service {

enum class SessionBackend { Bo, Random, Grid };
const char* to_string(SessionBackend backend);
SessionBackend backend_from_string(const std::string& name);

enum class SessionState { Active, Exhausted, Closed };
const char* to_string(SessionState state);

struct SessionOptions {
  /// Total recorded evaluations (tells plus dropped failures) before the
  /// session is exhausted.
  std::size_t max_evals = 100;
  /// Initial-design candidates issued before the surrogate takes over
  /// (Bo backend only).
  std::size_t n_init = 5;

  SessionBackend backend = SessionBackend::Bo;
  /// Surrogate/acquisition settings for the Bo backend. Its budget,
  /// checkpoint, and seed fields are ignored — the session's own fields
  /// govern those.
  bo::BoOptions bo;

  /// A candidate not told within this many seconds of issue is treated as a
  /// failed attempt at the next ask()/status() and re-issued. infinity
  /// disables deadlines.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Total issue attempts per candidate before it is dropped.
  std::size_t max_attempts = 3;
  /// Value recorded for a dropped candidate (NaN keeps it out of the
  /// surrogate but still consumes budget; mirrors BoOptions::failure_penalty).
  double failure_penalty = std::numeric_limits<double>::quiet_NaN();

  /// Levels used to discretize Real parameters (Grid backend).
  std::size_t grid_real_levels = 4;

  /// Crashed attempts of one configuration before it is quarantined: dropped
  /// at failure_penalty immediately, journaled as a "quar" record, and never
  /// issued again — not by retry, not by re-suggestion, not after a resume.
  /// 0 disables quarantine (the retry policy alone governs, old behavior).
  std::size_t quarantine_after = 0;

  /// Compact the journal (snapshot + rewrite) every this many completed
  /// evaluations; 0 disables compaction.
  std::size_t compact_every = 64;

  /// Entries kept in the idempotency-key replay cache (remember_rpc /
  /// replayed_rpc). Bounds per-session memory and journal growth; evicted
  /// keys mean a very late retry re-executes, which the session's own
  /// id-based idempotence then absorbs.
  std::size_t replay_cache_capacity = 128;

  std::uint64_t seed = 1;

  /// Learn the parameter dependency structure online: every tell feeds a
  /// structure::OnlineLearner whose affinity matrix and active partition are
  /// journaled as {"e":"struct"} records (restored exactly on resume) and
  /// served at GET /v1/sessions/{id}/structure.
  bool structure_online = false;
  /// Affinity refit cadence in observations (structure_online only).
  std::size_t structure_cadence = 20;
  /// Affinity threshold above which a parameter pair is united in the
  /// proposed cut.
  double structure_threshold = 0.25;
  /// Minimum evidence (recovered affinity-mass fraction) for a repartition.
  double structure_evidence = 0.10;
  /// Consecutive confirming refits before a repartition is adopted.
  std::size_t structure_hysteresis = 2;
  /// Minimum observations between repartitions.
  std::size_t structure_cooldown = 20;

  /// Telemetry for journal fsync latency and the per-session metrics
  /// snapshot record (null = disabled, the default).
  obs::Telemetry* telemetry = nullptr;

  /// Structured-event hook forwarded to the journal store (segment
  /// rotations …); feeds the per-session flight recorder. Empty disables.
  std::function<void(std::string_view, std::string_view)> event_hook;

  /// File-IO seam for the journal and its snapshots (null = the real
  /// filesystem). Tests inject a common::FaultIo here to script disk faults.
  common::Io* io = nullptr;
  /// Journal segment rotation threshold in bytes (0 disables rotation);
  /// forwarded to SessionStore::Options::rotate_bytes.
  std::size_t rotate_bytes = 256 * 1024;
};

/// Session-level counters journaled as the {"e":"metrics"} snapshot record.
/// They survive compaction (the record is rewritten) and resume (a restored
/// session keeps accumulating from the replayed values).
struct SessionMetrics {
  std::size_t tells = 0;  ///< successful value reports
  std::size_t fails = 0;  ///< failed attempts (incl. deadline expiries)
  std::size_t drops = 0;  ///< candidates recorded at failure_penalty
  /// Failed attempts by EvalOutcome string ("crashed", "timed-out", ...).
  std::map<std::string, std::size_t> failure_outcomes;
  /// Sum of application-reported evaluation costs (seconds).
  double cost_seconds = 0.0;
  /// Sum of wall-clock evaluation round trips (milliseconds).
  double eval_duration_ms = 0.0;
  /// Session wall-clock seconds (cumulative across resumes).
  double wall_seconds = 0.0;

  json::Value to_json() const;
  static SessionMetrics from_json(const json::Value& snapshot);
};

struct SessionStatus {
  SessionState state = SessionState::Active;
  /// Evaluations recorded (tells + drops).
  std::size_t completed = 0;
  /// Candidates issued and awaiting their tell.
  std::size_t outstanding = 0;
  /// Failed/expired candidates queued for re-issue.
  std::size_t queued = 0;
  /// New candidates ask() can still issue.
  std::size_t remaining = 0;
  std::optional<search::Evaluation> best;
};

class TuningSession {
 public:
  /// `space` must outlive the session. Pass a store to journal durably.
  TuningSession(const search::SearchSpace& space, SessionOptions options,
                std::unique_ptr<SessionStore> store = nullptr);

  /// Convenience: journal to `journal_path` (empty = in-memory only).
  TuningSession(const search::SearchSpace& space, SessionOptions options,
                const std::string& journal_path);

  /// Rebuild a session from its journal: completed evaluations restored in
  /// order, in-flight candidates queued for re-issue, budget unchanged.
  static std::unique_ptr<TuningSession> resume(const search::SearchSpace& space,
                                               SessionOptions options,
                                               const std::string& journal_path);

  TuningSession(const TuningSession&) = delete;
  TuningSession& operator=(const TuningSession&) = delete;

  /// Up to `k` candidates to evaluate. Re-issues (failed, expired, or
  /// crash-restored candidates) are served before any new suggestion is
  /// generated. Returns fewer than `k` — possibly none — when the remaining
  /// budget or the backend's supply is smaller. Thread-safe.
  std::vector<Candidate> ask(std::size_t k);

  /// Report an evaluation result. Unknown or already-resolved ids return
  /// false (harmless: duplicate tells after a retry are expected). Late
  /// tells for candidates still outstanding past exhaustion are accepted.
  /// `dispersion` is the robust sigma of a repeated measurement (0 = single
  /// measurement); it is journaled and fed to the evaluation record.
  /// `duration_ms` (wall-clock round trip) and `worker_slot` (pool slot that
  /// ran it, -1 unknown) are provenance for reports; both are journaled and
  /// recorded when provided.
  /// `worker_node` is the fleet node that served the evaluation ("" = local);
  /// journaled so reports can attribute evals and latency per machine.
  bool tell(std::uint64_t id, double value, double cost_seconds = 0.0,
            double dispersion = 0.0, double duration_ms = 0.0,
            int worker_slot = -1, const std::string& worker_node = {});

  /// Report that an evaluation failed, with its classified outcome (defaults
  /// to Crashed, the seed-era semantics). Consumes one attempt: the candidate
  /// is queued for re-issue, or dropped at failure_penalty when attempts are
  /// exhausted. Returns false for unknown ids.
  bool tell_failure(std::uint64_t id,
                    robust::EvalOutcome why = robust::EvalOutcome::Crashed,
                    const std::string& worker_node = {});

  /// Record an externally-measured observation (e.g. a warm-start point).
  /// Consumes budget like any other evaluation.
  void observe(search::Config config, double value, double cost_seconds = 0.0);

  /// No further asks; pending candidates are abandoned (still journaled, so
  /// a resume would re-issue them). Journals a final metrics snapshot.
  void close();

  /// Current session metrics (cumulative across resumes).
  SessionMetrics metrics() const;
  /// Journal a metrics snapshot record now (no-op without a store). Drivers
  /// call this when a batch completes so a kill loses at most one batch of
  /// counter updates.
  void flush_metrics();

  /// The response previously remembered under `key`, if the cache still
  /// holds it — the retried request should be answered with these exact
  /// bytes instead of re-executing. Thread-safe.
  std::optional<std::string> replayed_rpc(const std::string& key) const;

  /// Remember `response` as the canonical answer for idempotency key `key`.
  /// Journaled as an {"e":"rpc"} record (survives kill + resume and
  /// compaction) before entering the in-memory cache, so durability is never
  /// behind visibility. Thread-safe.
  void remember_rpc(const std::string& key, const std::string& response);

  SessionStatus status() const;
  SessionState state() const;
  std::size_t completed() const;
  std::size_t outstanding() const;
  std::optional<search::Evaluation> best() const;
  std::vector<search::Evaluation> evaluations() const;
  const search::SearchSpace& space() const { return space_; }
  const SessionOptions& options() const { return options_; }

  /// Package the session as a SearchResult (method "session-<backend>").
  search::SearchResult to_result() const;

  /// Latest learned dependency-structure snapshot (null Value when
  /// structure_online is off). Thread-safe.
  json::Value structure_snapshot() const;

 private:
  struct Pending {
    Candidate candidate;
    std::chrono::steady_clock::time_point issued_at;
  };

  JournalHeader make_header() const;
  json::Value metrics_snapshot_locked() const;
  /// Feed one completed observation to the structure learner; journals a
  /// {"e":"struct"} snapshot after every refit and updates the
  /// tunekit_structure_* metrics. No-op when structure learning is off.
  void feed_structure_locked(const search::Config& config, double value);
  json::Value structure_snapshot_locked() const;
  void expire_overdue_locked();
  /// Retry-or-drop a candidate whose attempt failed for reason `why`.
  void fail_attempt_locked(Candidate candidate, robust::EvalOutcome why,
                           const std::string& worker_node = {});
  void record_locked(const search::Config& config, double value, double cost_seconds,
                     robust::EvalOutcome outcome, double dispersion = 0.0,
                     double duration_ms = 0.0, int worker_slot = -1);
  void maybe_compact_locked();
  std::size_t issuable_locked() const;
  std::vector<search::Config> generate_locked(std::size_t n);
  SessionStatus status_locked() const;

  const search::SearchSpace& space_;
  SessionOptions options_;
  std::unique_ptr<SessionStore> store_;
  robust::CrashQuarantine quarantine_;
  bo::BayesOpt bo_;
  std::vector<search::Config> init_design_;
  std::vector<search::Config> grid_;
  search::EvalDb db_;
  std::map<std::uint64_t, Pending> pending_;
  std::deque<Candidate> reissue_;
  std::uint64_t next_id_ = 0;
  bool closed_ = false;
  std::size_t completed_since_compact_ = 0;
  /// Online dependency-structure learner (null unless structure_online).
  std::unique_ptr<structure::OnlineLearner> structure_;
  SessionMetrics metrics_;
  ReplayCache replay_;
  /// Wall seconds accumulated by previous incarnations (restored on resume);
  /// the live watch_ reading is added on top.
  double wall_base_seconds_ = 0.0;
  Stopwatch watch_;
  mutable std::mutex mutex_;
};

}  // namespace tunekit::service
