#pragma once
// EvalScheduler: drives a TuningSession to exhaustion against an in-process
// objective, evaluating each asked batch concurrently on a thread pool.
//
// This is what gives tunekit *intra-search* parallelism: BayesOpt::run()
// evaluates strictly one configuration per iteration, while the scheduler
// asks for `batch_size` constant-liar candidates at a time and spreads them
// across workers — the win grows with the cost of a single evaluation
// (real HPC evaluations are minutes, not microseconds). Crashing
// evaluations are reported with tell_failure(), so the session's retry /
// failure_penalty policy applies.

#include <cstddef>

#include "search/objective.hpp"
#include "search/result.hpp"
#include "service/session.hpp"

namespace tunekit::service {

struct SchedulerOptions {
  /// Worker threads; 0 = hardware_concurrency(). Forced to 1 when the
  /// objective is not thread-safe.
  std::size_t n_threads = 0;
  /// Candidates requested per ask(); 0 = one per worker.
  std::size_t batch_size = 0;
};

class EvalScheduler {
 public:
  explicit EvalScheduler(SchedulerOptions options = {}) : options_(options) {}

  /// Ask/evaluate/tell until the session stops issuing candidates. Returns
  /// the session's result (method "session-<backend>").
  search::SearchResult run(TuningSession& session, search::Objective& objective) const;

 private:
  SchedulerOptions options_;
};

}  // namespace tunekit::service
