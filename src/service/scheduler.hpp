#pragma once
// EvalScheduler: drives a TuningSession to exhaustion against an in-process
// objective, evaluating each asked batch concurrently on a thread pool.
//
// This is what gives tunekit *intra-search* parallelism: BayesOpt::run()
// evaluates strictly one configuration per iteration, while the scheduler
// asks for `batch_size` constant-liar candidates at a time and spreads them
// across workers — the win grows with the cost of a single evaluation
// (real HPC evaluations are minutes, not microseconds). Failing
// evaluations are reported with tell_failure() and their classified
// EvalOutcome, so the session's retry / failure_penalty policy applies and
// the journal records *why* each candidate failed.
//
// Each evaluation runs through a RobustMeasurer (`measure` options): with a
// finite watchdog timeout a hung objective is cancelled and classified
// TimedOut instead of wedging a worker forever; with repeats > 1 the session
// is told the MAD-trimmed mean and its dispersion.

#include <chrono>
#include <cstddef>

#include "robust/measure.hpp"
#include "robust/worker_pool.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"
#include "service/session.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::service {

struct SchedulerOptions {
  /// Worker threads; 0 = hardware_concurrency(). Forced to 1 when the
  /// objective is not thread-safe (unless process isolation is active —
  /// worker processes are independent regardless of the objective).
  std::size_t n_threads = 0;
  /// Candidates requested per ask(); 0 = one per worker.
  std::size_t batch_size = 0;
  /// Watchdog timeout, transient-crash retries, and repeat count applied to
  /// every evaluation. Defaults reproduce the seed behavior (one bare call).
  robust::MeasureOptions measure;
  /// IsolationMode::Process routes every evaluation to a pool of sandboxed
  /// worker processes; the in-process watchdog timeout is then disabled in
  /// favor of the pool's SIGKILL deadline. Defaults to Thread (old behavior).
  robust::IsolationOptions isolation;
  /// Explicit evaluation backend (a shared WorkerPool or a fleet
  /// dispatcher). When set it wins over `isolation` — the scheduler drives
  /// it directly, with no branching on where the slots live — and
  /// `n_threads`/`batch_size` default to its concurrency().
  std::shared_ptr<robust::EvalBackend> backend;
  /// Spans ("scheduler.batch" → "eval") and evaluation counters/histograms
  /// (null = disabled, the default; the disabled path is a single branch).
  obs::Telemetry* telemetry = nullptr;
  /// Absolute end-to-end budget (the client's propagated deadline): no new
  /// batch is asked once it passes, and each batch's per-evaluation deadline
  /// is clamped to the remaining budget so a dispatch never outlives it.
  /// time_point::max() (the default) disables the bound.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

class EvalScheduler {
 public:
  explicit EvalScheduler(SchedulerOptions options = {}) : options_(options) {}

  /// Ask/evaluate/tell until the session stops issuing candidates. Returns
  /// the session's result (method "session-<backend>").
  search::SearchResult run(TuningSession& session, search::Objective& objective) const;

  /// Backend-only variant: every evaluation goes to SchedulerOptions::backend
  /// (throws std::invalid_argument when none is set). This is what the fleet
  /// drive path uses — there is no in-process objective at all.
  search::SearchResult run(TuningSession& session) const;

 private:
  search::SearchResult run_impl(TuningSession& session,
                                search::Objective* objective) const;

  SchedulerOptions options_;
};

}  // namespace tunekit::service
