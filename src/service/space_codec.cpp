#include "service/space_codec.hpp"

#include <cmath>
#include <limits>

namespace tunekit::service {

using search::ParamKind;
using search::ParamSpec;

json::Value space_to_json(const search::SearchSpace& space) {
  json::Array params;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const ParamSpec& p = space.param(i);
    json::Object obj;
    obj["name"] = json::Value(p.name());
    obj["kind"] = json::Value(std::string(search::to_string(p.kind())));
    obj["default"] = json::Value(p.default_value());
    switch (p.kind()) {
      case ParamKind::Real:
      case ParamKind::Integer:
        obj["lo"] = json::Value(p.lo());
        obj["hi"] = json::Value(p.hi());
        break;
      case ParamKind::Ordinal: {
        json::Array levels;
        for (double v : p.levels()) levels.emplace_back(v);
        obj["levels"] = json::Value(std::move(levels));
        break;
      }
      case ParamKind::Categorical:
        obj["n"] = json::Value(p.cardinality());
        break;
    }
    params.emplace_back(std::move(obj));
  }
  json::Object spec;
  spec["params"] = json::Value(std::move(params));
  return json::Value(std::move(spec));
}

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw json::JsonError("space spec: " + what);
}

double require_number(const json::Value& obj, const std::string& key,
                      const std::string& where) {
  if (!obj.contains(key)) bad_spec("missing '" + key + "' in " + where);
  const json::Value& v = obj.at(key);
  if (!v.is_number()) bad_spec("'" + key + "' must be a number in " + where);
  return v.as_number();
}

ParamSpec param_from_json(const json::Value& entry) {
  if (!entry.is_object()) bad_spec("every params entry must be an object");
  if (!entry.contains("name") || !entry.at("name").is_string()) {
    bad_spec("params entry missing a string 'name'");
  }
  const std::string& name = entry.at("name").as_string();
  if (name.empty()) bad_spec("parameter name must not be empty");
  const std::string where = "parameter '" + name + "'";
  if (!entry.contains("kind") || !entry.at("kind").is_string()) {
    bad_spec("missing string 'kind' in " + where);
  }
  const std::string& kind = entry.at("kind").as_string();

  if (kind == "real") {
    const double lo = require_number(entry, "lo", where);
    const double hi = require_number(entry, "hi", where);
    const double dflt = require_number(entry, "default", where);
    if (!(lo < hi)) bad_spec("lo must be < hi in " + where);
    if (dflt < lo || dflt > hi) bad_spec("default outside [lo, hi] in " + where);
    return ParamSpec::real(name, lo, hi, dflt);
  }
  if (kind == "integer") {
    const double lo = require_number(entry, "lo", where);
    const double hi = require_number(entry, "hi", where);
    const double dflt = require_number(entry, "default", where);
    if (lo != std::floor(lo) || hi != std::floor(hi) || dflt != std::floor(dflt)) {
      bad_spec("integer bounds/default must be whole numbers in " + where);
    }
    if (!(lo <= hi)) bad_spec("lo must be <= hi in " + where);
    if (dflt < lo || dflt > hi) bad_spec("default outside [lo, hi] in " + where);
    return ParamSpec::integer(name, static_cast<std::int64_t>(lo),
                              static_cast<std::int64_t>(hi),
                              static_cast<std::int64_t>(dflt));
  }
  if (kind == "ordinal") {
    if (!entry.contains("levels") || !entry.at("levels").is_array()) {
      bad_spec("missing 'levels' array in " + where);
    }
    const auto& arr = entry.at("levels").as_array();
    if (arr.empty()) bad_spec("'levels' must not be empty in " + where);
    std::vector<double> levels;
    levels.reserve(arr.size());
    for (const auto& v : arr) {
      if (!v.is_number()) bad_spec("'levels' must hold numbers in " + where);
      if (!levels.empty() && v.as_number() <= levels.back()) {
        bad_spec("'levels' must be strictly increasing in " + where);
      }
      levels.push_back(v.as_number());
    }
    const double dflt = require_number(entry, "default", where);
    return ParamSpec::ordinal(name, std::move(levels), dflt);
  }
  if (kind == "categorical") {
    const double n = require_number(entry, "n", where);
    if (n < 1 || n != std::floor(n)) {
      bad_spec("'n' must be a positive whole number in " + where);
    }
    const double dflt = require_number(entry, "default", where);
    if (dflt < 0 || dflt >= n || dflt != std::floor(dflt)) {
      bad_spec("default category outside [0, n) in " + where);
    }
    return ParamSpec::categorical(name, static_cast<std::size_t>(n),
                                  static_cast<std::size_t>(dflt));
  }
  bad_spec("unknown kind '" + kind + "' in " + where +
           " (expected real, integer, ordinal, or categorical)");
}

}  // namespace

search::SearchSpace space_from_json(const json::Value& spec) {
  if (!spec.is_object() || !spec.contains("params") ||
      !spec.at("params").is_array()) {
    bad_spec("expected an object with a 'params' array");
  }
  const auto& params = spec.at("params").as_array();
  if (params.empty()) bad_spec("'params' must not be empty");
  search::SearchSpace space;
  for (const auto& entry : params) {
    try {
      space.add(param_from_json(entry));
    } catch (const std::invalid_argument& e) {
      // ParamSpec factories and SearchSpace::add validate too (duplicate
      // names, default not a level, ...); surface those as spec errors.
      bad_spec(e.what());
    }
  }
  return space;
}

}  // namespace tunekit::service
