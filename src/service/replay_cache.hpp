#pragma once
// ReplayCache: a bounded idempotency-key → serialized-response map — the
// in-memory half of exactly-once request handling.
//
// A client that never got its response back cannot tell "the request was
// lost" from "the response was lost"; its only safe move is to retry with
// the same Idempotency-Key. The first execution records its serialized
// response here (and, durably, as an {"e":"rpc"} journal record); the retry
// finds the key and gets the original bytes back instead of re-executing a
// non-idempotent operation. Eviction is FIFO by first insertion: a client
// retries recent requests, not ancient ones, so the oldest entry is always
// the safest to forget. The capacity bounds worst-case memory and journal
// growth per session.
//
// Not thread-safe by itself — TuningSession guards it with its own mutex,
// exactly like every other piece of per-session state.

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tunekit::service {

class ReplayCache {
 public:
  explicit ReplayCache(std::size_t capacity = 128);

  /// The response previously remembered for `key`; nullptr when unknown
  /// (never cached, or already evicted). The pointer is invalidated by the
  /// next put().
  const std::string* find(const std::string& key) const;

  /// Remember `response` under `key`, evicting the oldest entries past
  /// capacity. Re-inserting a live key replaces its response without
  /// consuming capacity or refreshing its eviction position.
  void put(std::string key, std::string response);

  /// Live entries oldest-first — the order compaction rewrites them and
  /// replay re-inserts them, so FIFO eviction survives a rewrite cycle.
  std::vector<std::pair<std::string, std::string>> entries() const;

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::map<std::string, std::string> map_;
  std::deque<std::string> order_;  ///< first-insertion order of live keys
};

}  // namespace tunekit::service
