#include "service/replay_cache.hpp"

#include <algorithm>

namespace tunekit::service {

ReplayCache::ReplayCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

const std::string* ReplayCache::find(const std::string& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void ReplayCache::put(std::string key, std::string response) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second = std::move(response);
    return;
  }
  order_.push_back(key);
  map_.emplace(std::move(key), std::move(response));
  while (map_.size() > capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
  }
}

std::vector<std::pair<std::string, std::string>> ReplayCache::entries() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(map_.size());
  for (const auto& key : order_) {
    const auto it = map_.find(key);
    if (it != map_.end()) out.emplace_back(it->first, it->second);
  }
  return out;
}

}  // namespace tunekit::service
