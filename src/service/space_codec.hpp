#pragma once
// SearchSpace <-> JSON codec, so a remote client can define a tuning space
// without linking tunekit: POST /v1/sessions carries either a built-in app
// name or an inline space spec in this format.
//
// Spec shape:
//   {"params": [
//     {"name":"x",  "kind":"real",    "lo":-50, "hi":50, "default":0},
//     {"name":"tb", "kind":"integer", "lo":1,   "hi":1024, "default":128},
//     {"name":"u",  "kind":"ordinal", "levels":[1,2,4,8], "default":4},
//     {"name":"alg","kind":"categorical", "n":3, "default":0}
//   ]}
//
// Validity constraints are C++ predicates and do not round-trip; a space
// built from JSON has none (the session's is_valid then only checks
// representability — remote clients report invalid-config outcomes instead).

#include "common/json.hpp"
#include "search/space.hpp"

namespace tunekit::service {

/// Serialize the parameter list (constraints are not representable).
json::Value space_to_json(const search::SearchSpace& space);

/// Build a space from a spec. Throws json::JsonError on a malformed spec
/// (unknown kind, missing fields, bad ranges) with a message naming the
/// offending parameter.
search::SearchSpace space_from_json(const json::Value& spec);

}  // namespace tunekit::service
