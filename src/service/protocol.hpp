#pragma once
// Newline-delimited JSON ask/tell protocol over a stream pair, so an
// application that is NOT linked against tunekit (a Fortran solver, a batch
// script wrapping srun, a remote harness) can still be tuned: it spawns
// `tunekit_cli session`, writes one request per line on the child's stdin,
// and reads one response per line from its stdout.
//
// Requests:
//   {"op":"ask","k":4}
//   {"op":"tell","id":7,"value":12.5,"cost_seconds":3.2}
//   {"op":"tell","config":{"name":value,...},"value":12.5}   unsolicited observation
//   {"op":"fail","id":7}                                     evaluation crashed
//   {"op":"status"}
//   {"op":"exit"}
//
// Responses (one per request, always a single line):
//   ask    -> {"ok":true,"state":S,"remaining":R,
//              "candidates":[{"id":7,"attempt":0,"config":{name:value,...}},...]}
//   tell   -> {"ok":true,"accepted":B,"completed":N,"best_value":V}
//   fail   -> {"ok":true,"accepted":B,...}
//   status -> {"ok":true,"state":S,"completed":N,"outstanding":O,"queued":Q,
//              "remaining":R,"best_value":V,"best_config":{...}}
//   exit   -> {"ok":true,"state":S,"completed":N,...}   (then the server returns)
//   errors -> {"ok":false,"error":"..."}
//
// Candidate configs are keyed by parameter name, so the client does not need
// to know tunekit's positional ordering.

#include <iosfwd>
#include <string>

#include "service/session.hpp"

namespace tunekit::service {

class SessionServer {
 public:
  explicit SessionServer(TuningSession& session) : session_(session) {}

  /// Handle one request line; returns the response line (no newline).
  /// Sets `exit_requested` to true on {"op":"exit"}.
  std::string handle(const std::string& line, bool& exit_requested);

  /// Serve until EOF or an exit request; one response line per request,
  /// flushed after each. Returns the number of requests handled.
  std::size_t serve(std::istream& in, std::ostream& out);

 private:
  TuningSession& session_;
};

}  // namespace tunekit::service
