#pragma once
// ClockSync: NTP-flavored per-node clock-offset estimation from heartbeat
// round trips. Each node heartbeat carries the node's steady-clock "now"
// (t_ns) plus the round-trip time the node measured for its previous
// heartbeat's ack (rtt_ns). On arrival the dispatcher knows three numbers:
//
//   local_arrival = node_send + one_way_delay + offset
//
// Assuming the path is roughly symmetric, one_way_delay ≈ rtt/2, so
//
//   offset ≈ local_arrival − node_send − rtt/2
//
// The estimate from the *smallest* observed RTT is kept: queuing delay only
// ever inflates RTT (and corrupts the symmetry assumption), so the fastest
// exchange seen is the closest to the true offset — the classic NTP filter.
// Error is bounded by ±rtt/2 of that best sample.
//
// Used by FleetDispatcher to anchor node-side spans (measured on the node's
// steady clock) onto the dispatcher's trace timeline. Until the first RTT
// sample arrives, synced() is false and callers clamp remote spans into the
// enclosing rpc interval instead.

#include <cstdint>
#include <cstdlib>

namespace tunekit::fleet {

class ClockSync {
 public:
  /// One heartbeat sample: when it arrived here (local steady ns), the
  /// node's steady clock when it was sent, and the node-measured RTT of the
  /// previous heartbeat ack (0 = not yet measured; sample ignored).
  void observe(std::uint64_t local_arrival_ns, std::uint64_t node_send_ns,
               std::uint64_t rtt_ns) {
    if (rtt_ns == 0) return;
    if (rtt_ns <= best_rtt_ns_) {
      best_rtt_ns_ = rtt_ns;
      offset_ns_ = static_cast<std::int64_t>(local_arrival_ns) -
                   static_cast<std::int64_t>(node_send_ns) -
                   static_cast<std::int64_t>(rtt_ns / 2);
      synced_ = true;
    }
  }

  bool synced() const { return synced_; }

  /// local − node, in nanoseconds (0 until synced).
  std::int64_t offset_ns() const { return offset_ns_; }

  /// RTT of the sample behind the current estimate (its error bound is
  /// ±rtt/2).
  std::uint64_t best_rtt_ns() const { return synced_ ? best_rtt_ns_ : 0; }

  /// Map a node-clock timestamp onto the local clock. Clamps at 0 rather
  /// than wrapping when a negative offset exceeds the timestamp.
  std::uint64_t to_local_ns(std::uint64_t node_ns) const {
    const std::int64_t mapped = static_cast<std::int64_t>(node_ns) + offset_ns_;
    return mapped > 0 ? static_cast<std::uint64_t>(mapped) : 0;
  }

  /// Forget everything (node reconnected — its process, and therefore its
  /// steady-clock epoch, may have changed).
  void reset() {
    best_rtt_ns_ = UINT64_MAX;
    offset_ns_ = 0;
    synced_ = false;
  }

 private:
  std::uint64_t best_rtt_ns_ = UINT64_MAX;
  std::int64_t offset_ns_ = 0;
  bool synced_ = false;
};

}  // namespace tunekit::fleet
