#pragma once
// NodeRegistry: membership bookkeeping for a fleet of evaluation nodes.
//
// The registry is deliberately passive — it holds no sockets and spawns no
// threads. The dispatcher feeds it events (a node registered, a heartbeat
// arrived, time passed) and asks it questions (who just missed their
// liveness deadline, may this node re-register yet). Time is injected as a
// plain seconds value so liveness and backoff policy are unit-testable
// without sleeping.
//
// Per-node quarantine mirrors the per-config CrashQuarantine one level up:
// a node whose connection keeps dying is refused re-admission for an
// exponentially growing backoff window, so a flapping machine cannot churn
// the fleet — it re-joins only once it has been quiet for a while.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace tunekit::fleet {

struct RegistryOptions {
  /// A node silent (no heartbeat, no result) for this long is declared dead.
  double heartbeat_timeout_s = 10.0;
  /// Re-admission backoff after a node death: base * 2^(deaths-1), capped.
  double readmit_base_s = 1.0;
  double readmit_max_s = 60.0;
};

struct NodeInfo {
  std::string id;
  std::size_t slots = 0;
  std::size_t busy = 0;
  bool alive = false;
  double last_seen_s = 0.0;
  std::size_t deaths = 0;         ///< consecutive connection losses
  double readmit_at_s = 0.0;      ///< earliest re-admission time (quarantine)
  std::uint64_t evals_ok = 0;
  std::uint64_t evals_failed = 0;
};

class NodeRegistry {
 public:
  explicit NodeRegistry(RegistryOptions options = {}) : options_(options) {}

  struct Admit {
    bool ok = false;
    double retry_after_s = 0.0;  ///< when refused: seconds until re-admission
    std::string reason;
  };

  /// A node asked to join (or re-join). Refused while its quarantine backoff
  /// is still running, or while a live node already holds the id.
  Admit admit(const std::string& id, std::size_t slots, double now_s);

  /// Heartbeat (or any sign of life) from a live node. Returns false for an
  /// unknown or dead node — the dispatcher should drop that connection.
  bool heartbeat(const std::string& id, std::size_t busy, double now_s);

  /// Declare every node silent past the liveness deadline dead; returns their
  /// ids so the dispatcher can tear down links and re-queue in-flight work.
  std::vector<std::string> expire(double now_s);

  /// A node's connection dropped (or it was expired). Starts its re-admission
  /// backoff. Idempotent for already-dead nodes.
  void mark_dead(const std::string& id, double now_s);

  /// Outcome accounting for status surfaces. Any delivered result clears the
  /// node's death streak, so its next re-admission backoff starts small.
  void record_eval(const std::string& id, bool ok);

  bool alive(const std::string& id) const;
  std::size_t nodes_alive() const;
  std::size_t slots_total() const;  ///< across live nodes

  std::vector<NodeInfo> snapshot() const;
  json::Value to_json() const;

  const RegistryOptions& options() const { return options_; }

 private:
  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, NodeInfo> nodes_;
};

}  // namespace tunekit::fleet
