#include "fleet/circuit_breaker.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tunekit::fleet {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::allow(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open) {
    if (now_s - opened_at_s_ < options_.open_duration_s) return false;
    state_ = BreakerState::HalfOpen;
    probes_inflight_ = 0;
  }
  if (state_ == BreakerState::HalfOpen) {
    if (probes_inflight_ >= options_.half_open_probes) return false;
    ++probes_inflight_;
    return true;
  }
  return true;
}

bool CircuitBreaker::record(bool ok, double latency_s, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open && now_s - opened_at_s_ >= options_.open_duration_s) {
    state_ = BreakerState::HalfOpen;
    probes_inflight_ = 0;
  }
  if (state_ == BreakerState::HalfOpen) {
    if (probes_inflight_ > 0) --probes_inflight_;
    if (!ok) {
      // The probe failed: back to open with the cool-down restarted.
      open_locked(now_s);
      return true;
    }
    // One good probe is the recovery signal; resume with a clean window.
    state_ = BreakerState::Closed;
    window_.clear();
    return false;
  }
  if (state_ == BreakerState::Open) {
    // A straggler result from before the trip: ignore for state purposes.
    return false;
  }
  window_.push_back({ok, latency_s});
  while (window_.size() > options_.window) window_.pop_front();
  if (window_unhealthy_locked()) {
    open_locked(now_s);
    return true;
  }
  return false;
}

BreakerState CircuitBreaker::state(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open && now_s - opened_at_s_ >= options_.open_duration_s) {
    state_ = BreakerState::HalfOpen;
    probes_inflight_ = 0;
  }
  return state_;
}

bool CircuitBreaker::open_now(double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == BreakerState::Open &&
         now_s - opened_at_s_ < options_.open_duration_s;
}

double CircuitBreaker::error_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.empty()) return 0.0;
  std::size_t failures = 0;
  for (const Sample& s : window_) {
    if (!s.ok) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(window_.size());
}

json::Value CircuitBreaker::to_json(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open && now_s - opened_at_s_ >= options_.open_duration_s) {
    state_ = BreakerState::HalfOpen;
    probes_inflight_ = 0;
  }
  const BreakerState st = state_;
  json::Object out;
  out["state"] = json::Value(to_string(st));
  std::size_t failures = 0;
  for (const Sample& s : window_) {
    if (!s.ok) ++failures;
  }
  out["window"] = json::Value(window_.size());
  out["failures"] = json::Value(failures);
  out["opens"] = json::Value(static_cast<double>(opens_));
  if (st == BreakerState::Open) {
    out["reopens_in_s"] = json::Value(
        std::max(0.0, options_.open_duration_s - (now_s - opened_at_s_)));
  }
  return json::Value(std::move(out));
}

void CircuitBreaker::open_locked(double now_s) {
  state_ = BreakerState::Open;
  opened_at_s_ = now_s;
  probes_inflight_ = 0;
  window_.clear();
  ++opens_;
}

bool CircuitBreaker::window_unhealthy_locked() const {
  if (window_.size() < options_.min_samples) return false;
  std::size_t failures = 0;
  for (const Sample& s : window_) {
    if (!s.ok) ++failures;
  }
  const double rate =
      static_cast<double>(failures) / static_cast<double>(window_.size());
  if (rate >= options_.error_rate_open) return true;
  if (std::isfinite(options_.latency_open_s)) {
    std::vector<double> lat;
    lat.reserve(window_.size());
    for (const Sample& s : window_) lat.push_back(s.latency_s);
    std::nth_element(lat.begin(), lat.begin() + lat.size() / 2, lat.end());
    if (lat[lat.size() / 2] > options_.latency_open_s) return true;
  }
  return false;
}

}  // namespace tunekit::fleet
