#pragma once
// FleetDispatcher: an EvalBackend whose slots live on other machines.
//
// Nodes dial the dispatcher's listen port, register over tunekit-fleet-v1,
// and then hold one persistent connection each. evaluate() turns a config
// into a ticket; tickets queue centrally and are pushed to whichever live
// node has a free slot — when a node finishes an eval (or a fresh node
// joins), its freed slot immediately pulls the next queued ticket, which is
// the work-stealing shape: idle capacity drains the shared queue, nothing is
// pre-partitioned.
//
// Failure handling reuses the local taxonomy end to end. A node that drops
// its connection or goes silent past the heartbeat deadline is declared dead
// (per-node quarantine backoff via NodeRegistry); its in-flight tickets are
// re-queued at the front and re-dispatched elsewhere, up to a redispatch cap
// — past the cap the eval reports Crashed, exactly like a worker process
// dying under the work. Per-config CrashQuarantine runs dispatcher-side, so
// a config that kills workers on any node is refused fleet-wide.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "fleet/circuit_breaker.hpp"
#include "fleet/clock_sync.hpp"
#include "fleet/registry.hpp"
#include "fleet/remote_worker.hpp"
#include "obs/telemetry.hpp"
#include "robust/eval_backend.hpp"
#include "robust/quarantine.hpp"

namespace tunekit::fleet {

struct DispatcherOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; the bound port via port()
  /// Heartbeat cadence advertised to nodes; liveness policy in `registry`.
  double heartbeat_interval_s = 1.0;
  RegistryOptions registry;
  /// Crashes of one config before fleet-wide refusal (0 disables).
  std::size_t quarantine_after = 2;
  /// Times one ticket may survive a node death before reporting Crashed.
  std::size_t max_redispatch = 3;
  /// evaluate() fails after this long queued with zero live nodes.
  double no_nodes_timeout_s = 30.0;
  /// Per-node circuit breaker policy: a node whose evals keep crashing or
  /// timing out stays registered but is skipped by dispatch until its
  /// cool-down passes and a probe eval succeeds.
  BreakerOptions breaker;
  obs::Telemetry* telemetry = nullptr;
};

/// A complete node-side span as it arrived on the wire (node-clock ns).
struct WireSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// The node-clock → dispatcher-clock shift for a batch of imported spans.
/// With a heartbeat-synced clock the shift is the measured offset (absolute,
/// error bounded by rtt/2); before the first exchange it anchors the latest
/// span end at the result's arrival (relative, but always in the past).
std::int64_t span_shift(bool synced, std::int64_t offset_ns,
                        const std::vector<WireSpan>& spans,
                        std::uint64_t arrival_ns);

/// Map one node-side span into dispatcher time and clamp it into the rpc
/// interval [rpc_start_ns, arrival_ns] — a skewed or lying node clock can
/// never make an imported child span escape its fleet.rpc parent.
struct AnchoredSpan {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};
AnchoredSpan anchor_span(const WireSpan& span, std::int64_t shift,
                         std::uint64_t rpc_start_ns, std::uint64_t arrival_ns);

class FleetDispatcher final : public robust::EvalBackend {
 public:
  /// Bind + listen + start the accept/monitor threads. Throws
  /// std::runtime_error when the port cannot be bound.
  explicit FleetDispatcher(DispatcherOptions options);
  ~FleetDispatcher() override;

  FleetDispatcher(const FleetDispatcher&) = delete;
  FleetDispatcher& operator=(const FleetDispatcher&) = delete;

  /// Queue the config, push it to a free node slot, wait for the result.
  /// Never throws; transport failures come back classified. Thread-safe.
  robust::SandboxResult evaluate(const search::Config& config,
                                 double deadline_seconds) override;

  bool healthy() const override { return !stopping_; }
  /// True when live nodes exist but every one of them has an open breaker:
  /// the fleet is up yet refusing work, so callers should shed and retry.
  bool degraded() const override;
  /// Live fleet slots (1 while empty, so schedulers keep a working thread
  /// ready for the first node to join).
  std::size_t concurrency() const override;

  std::uint16_t port() const { return port_; }
  NodeRegistry& registry() { return registry_; }
  const NodeRegistry& registry() const { return registry_; }
  robust::CrashQuarantine& quarantine() { return quarantine_; }

  std::size_t queue_depth() const;
  std::uint64_t steals() const { return steals_; }
  std::uint64_t redispatches() const { return redispatches_; }

  /// {"nodes":[...],"queue_depth":N,"steals":S,"redispatches":R,...}
  json::Value status_json() const;

  /// Stop accepting, fail queued + in-flight tickets, join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  struct Ticket {
    std::uint64_t id = 0;
    search::Config config;
    double deadline_s = 0.0;
    std::string node;  ///< assigned node id; empty while queued
    std::size_t redispatches = 0;
    bool queued = false;
    bool done = false;
    double submitted_s = 0.0;
    robust::SandboxResult result;
    /// Distributed tracing: the fleet.rpc span opened by evaluate() and its
    /// trace context (stamped on the eval message as a traceparent); the rpc
    /// start anchors imported node spans when the node clock is unsynced.
    obs::TraceContext trace;
    obs::SpanId rpc_span = 0;
    std::uint64_t rpc_start_ns = 0;
  };

  struct Node {
    std::string id;
    std::shared_ptr<NdjsonLink> link;
    std::size_t slots = 1;
    std::vector<std::uint64_t> inflight;
    /// Offset estimate between this node's steady clock and the dispatcher's
    /// telemetry clock, fed by heartbeat t_ns/rtt_ns exchanges. A fresh Node
    /// per (re)connect means reconnects start from scratch — a rebooted
    /// machine's clock shares nothing with its predecessor's.
    ClockSync clock;
  };

  void accept_loop();
  void monitor_loop();
  void serve_connection(int fd);
  /// Reader loop after a successful registration handshake.
  void node_loop(const std::string& id, const std::shared_ptr<NdjsonLink>& link);
  /// Tear down a node: quarantine it in the registry and re-queue (or fail)
  /// its in-flight tickets. Safe to call twice. `expect` guards against a
  /// re-registered node being torn down by its predecessor's cleanup: when
  /// non-null the current entry must still hold that link; when null (the
  /// heartbeat monitor) the registry must still consider the id dead.
  void node_down(const std::string& id, const std::string& reason,
                 const NdjsonLink* expect = nullptr);
  /// Push queued tickets onto free slots. `stolen` marks assignments made
  /// when capacity freed up (vs. at submit time) for the steal counter.
  void pump(bool stolen);
  void complete_ticket(std::uint64_t id, const std::string& node,
                       robust::SandboxResult result,
                       const std::vector<WireSpan>& node_spans = {});
  /// The node's breaker (created on first use; survives re-registration so a
  /// flapping node cannot reset its own history by reconnecting).
  CircuitBreaker& breaker_for(const std::string& id);
  /// Feed an eval outcome to the node's breaker; logs + counts the
  /// open transition when this outcome trips it.
  void breaker_record(const std::string& id, bool ok, double latency_s);
  double now_s() const;
  void update_gauges();

  DispatcherOptions options_;
  NodeRegistry registry_;
  robust::CrashQuarantine quarantine_;
  /// Per-node breakers, keyed by node id. std::map keeps references stable
  /// across inserts; each breaker carries its own lock, this mutex only
  /// guards the map itself.
  mutable std::mutex breakers_mutex_;
  /// mutable: reading a breaker's state applies its time-based open→half-open
  /// transition, so even const status surfaces tick the state machine.
  mutable std::map<std::string, CircuitBreaker> breakers_;
  obs::Telemetry* telemetry_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::map<std::uint64_t, Ticket> tickets_;
  std::deque<std::uint64_t> queue_;
  std::map<std::string, std::shared_ptr<Node>> nodes_;
  std::uint64_t next_ticket_ = 1;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> redispatches_{0};

  std::thread accept_thread_;
  std::thread monitor_thread_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
};

}  // namespace tunekit::fleet
