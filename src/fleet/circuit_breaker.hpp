#pragma once
// CircuitBreaker: per-node failure isolation for the fleet dispatcher.
//
// The registry's quarantine handles nodes that *disconnect*; the breaker
// handles nodes that stay connected but return garbage — evals that crash,
// time out, or crawl. Outcomes feed a sliding window per node; when the
// window's error rate (or median latency) crosses the open threshold the
// breaker trips and the dispatcher stops assigning that node work. After a
// cool-down the breaker goes half-open and lets a bounded number of probe
// evals through: one success closes it, one failure re-opens it with the
// cool-down restarted.
//
// Like NodeRegistry, the breaker is passive and clock-injected (plain
// seconds), so the whole state machine is unit-testable without sleeping.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace tunekit::fleet {

struct BreakerOptions {
  /// Outcomes remembered per node (sliding window).
  std::size_t window = 16;
  /// Outcomes required before the error-rate threshold can trip (a single
  /// early failure must not open a cold breaker).
  std::size_t min_samples = 8;
  /// Open when window failures / window size reaches this rate.
  double error_rate_open = 0.5;
  /// Open when the window's median eval latency exceeds this many seconds
  /// (infinity disables the latency trip).
  double latency_open_s = std::numeric_limits<double>::infinity();
  /// Seconds an open breaker refuses work before going half-open.
  double open_duration_s = 5.0;
  /// Probe evals admitted while half-open; any failure among them re-opens.
  std::size_t half_open_probes = 1;
};

enum class BreakerState { Closed, Open, HalfOpen };
const char* to_string(BreakerState state);

/// One node's breaker. The dispatcher owns a map of these keyed by node id.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {}) : options_(options) {}

  /// May work be assigned right now? Open breakers whose cool-down has
  /// elapsed transition to half-open here; half-open admits up to
  /// `half_open_probes` in-flight probes.
  bool allow(double now_s);

  /// Record an eval outcome (`ok`) and its wall latency. Returns true when
  /// this record tripped the breaker open (for the open-transition counter).
  bool record(bool ok, double latency_s, double now_s);

  /// Current state, with the open→half-open time transition applied.
  BreakerState state(double now_s);

  /// True while the breaker is open and its cool-down has not elapsed —
  /// the "skip this node" predicate. Const: no transition is applied.
  bool open_now(double now_s) const;

  /// Window failure rate (0 when the window is empty).
  double error_rate() const;

  json::Value to_json(double now_s);

 private:
  struct Sample {
    bool ok = false;
    double latency_s = 0.0;
  };

  /// Trip open: stamp the cool-down and clear the window (history from
  /// before the trip must not influence the post-probe verdict).
  void open_locked(double now_s);
  bool window_unhealthy_locked() const;

  BreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::Closed;
  std::deque<Sample> window_;
  double opened_at_s_ = 0.0;
  std::size_t probes_inflight_ = 0;
  std::uint64_t opens_ = 0;  ///< lifetime closed/half-open -> open transitions
};

}  // namespace tunekit::fleet
