#include "fleet/registry.hpp"

#include <algorithm>

namespace tunekit::fleet {

NodeRegistry::Admit NodeRegistry::admit(const std::string& id,
                                        std::size_t slots, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    NodeInfo& node = it->second;
    if (node.alive) {
      return {false, 0.0, "node id '" + id + "' is already registered"};
    }
    if (now_s < node.readmit_at_s) {
      return {false, node.readmit_at_s - now_s,
              "node '" + id + "' is quarantined after " +
                  std::to_string(node.deaths) + " connection losses"};
    }
    node.alive = true;
    node.slots = std::max<std::size_t>(1, slots);
    node.busy = 0;
    node.last_seen_s = now_s;
    return {true, 0.0, ""};
  }
  NodeInfo node;
  node.id = id;
  node.slots = std::max<std::size_t>(1, slots);
  node.alive = true;
  node.last_seen_s = now_s;
  nodes_.emplace(id, std::move(node));
  return {true, 0.0, ""};
}

bool NodeRegistry::heartbeat(const std::string& id, std::size_t busy,
                             double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return false;
  it->second.busy = std::min(busy, it->second.slots);
  it->second.last_seen_s = now_s;
  return true;
}

std::vector<std::string> NodeRegistry::expire(double now_s) {
  std::vector<std::string> dead;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, node] : nodes_) {
    if (!node.alive) continue;
    if (now_s - node.last_seen_s <= options_.heartbeat_timeout_s) continue;
    node.alive = false;
    ++node.deaths;
    const double backoff = std::min(
        options_.readmit_base_s *
            static_cast<double>(1ull << std::min<std::size_t>(node.deaths - 1, 20)),
        options_.readmit_max_s);
    node.readmit_at_s = now_s + backoff;
    dead.push_back(id);
  }
  return dead;
}

void NodeRegistry::mark_dead(const std::string& id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return;
  NodeInfo& node = it->second;
  node.alive = false;
  ++node.deaths;
  const double backoff = std::min(
      options_.readmit_base_s *
          static_cast<double>(1ull << std::min<std::size_t>(node.deaths - 1, 20)),
      options_.readmit_max_s);
  node.readmit_at_s = now_s + backoff;
}

void NodeRegistry::record_eval(const std::string& id, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  if (ok) {
    ++it->second.evals_ok;
  } else {
    ++it->second.evals_failed;
  }
  // Any delivered result proves the connection works, whatever the eval's
  // outcome — the node has earned a short next backoff.
  it->second.deaths = 0;
}

bool NodeRegistry::alive(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive;
}

std::size_t NodeRegistry::nodes_alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.alive) ++n;
  }
  return n;
}

std::size_t NodeRegistry::slots_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.alive) n += node.slots;
  }
  return n;
}

std::vector<NodeInfo> NodeRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(node);
  return out;
}

json::Value NodeRegistry::to_json() const {
  json::Array nodes;
  for (const NodeInfo& node : snapshot()) {
    json::Object n;
    n["id"] = json::Value(node.id);
    n["alive"] = json::Value(node.alive);
    n["slots"] = json::Value(node.slots);
    n["busy"] = json::Value(node.busy);
    n["deaths"] = json::Value(node.deaths);
    n["evals_ok"] = json::Value(static_cast<double>(node.evals_ok));
    n["evals_failed"] = json::Value(static_cast<double>(node.evals_failed));
    nodes.emplace_back(std::move(n));
  }
  json::Object out;
  out["nodes"] = json::Value(std::move(nodes));
  return json::Value(std::move(out));
}

}  // namespace tunekit::fleet
