#include "fleet/registry.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace tunekit::fleet {

namespace {

/// Re-admission backoff with deterministic jitter: base * 2^(deaths-1),
/// capped, then shortened by up to 20% by a factor derived from (id, deaths).
/// Without jitter a correlated outage (rack power blip) synchronizes every
/// node's backoff clock and they all stampede the dispatcher at the same
/// instant. Subtract-only jitter keeps the exponential window an upper bound
/// (a node is never quarantined longer than the advertised policy), and
/// hashing keeps the spread reproducible for tests.
double backoff_s(const RegistryOptions& options, const std::string& id,
                 std::size_t deaths) {
  const double base = std::min(
      options.readmit_base_s *
          static_cast<double>(1ull << std::min<std::size_t>(deaths - 1, 20)),
      options.readmit_max_s);
  const std::uint64_t h = common::stable_hash(id) ^ static_cast<std::uint64_t>(deaths);
  const double jitter = 1.0 - 0.2 * (static_cast<double>(h % 1000) / 999.0);
  return base * jitter;
}

}  // namespace

NodeRegistry::Admit NodeRegistry::admit(const std::string& id,
                                        std::size_t slots, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    NodeInfo& node = it->second;
    if (node.alive) {
      return {false, 0.0, "node id '" + id + "' is already registered"};
    }
    if (now_s < node.readmit_at_s) {
      return {false, node.readmit_at_s - now_s,
              "node '" + id + "' is quarantined after " +
                  std::to_string(node.deaths) + " connection losses"};
    }
    node.alive = true;
    node.slots = std::max<std::size_t>(1, slots);
    node.busy = 0;
    node.last_seen_s = now_s;
    return {true, 0.0, ""};
  }
  NodeInfo node;
  node.id = id;
  node.slots = std::max<std::size_t>(1, slots);
  node.alive = true;
  node.last_seen_s = now_s;
  nodes_.emplace(id, std::move(node));
  return {true, 0.0, ""};
}

bool NodeRegistry::heartbeat(const std::string& id, std::size_t busy,
                             double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return false;
  it->second.busy = std::min(busy, it->second.slots);
  it->second.last_seen_s = now_s;
  return true;
}

std::vector<std::string> NodeRegistry::expire(double now_s) {
  std::vector<std::string> dead;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, node] : nodes_) {
    if (!node.alive) continue;
    if (now_s - node.last_seen_s <= options_.heartbeat_timeout_s) continue;
    node.alive = false;
    ++node.deaths;
    node.readmit_at_s = now_s + backoff_s(options_, id, node.deaths);
    dead.push_back(id);
  }
  return dead;
}

void NodeRegistry::mark_dead(const std::string& id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return;
  NodeInfo& node = it->second;
  node.alive = false;
  ++node.deaths;
  node.readmit_at_s = now_s + backoff_s(options_, id, node.deaths);
}

void NodeRegistry::record_eval(const std::string& id, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  if (ok) {
    ++it->second.evals_ok;
  } else {
    ++it->second.evals_failed;
  }
  // Any delivered result proves the connection works, whatever the eval's
  // outcome — the node has earned a short next backoff.
  it->second.deaths = 0;
}

bool NodeRegistry::alive(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive;
}

std::size_t NodeRegistry::nodes_alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.alive) ++n;
  }
  return n;
}

std::size_t NodeRegistry::slots_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.alive) n += node.slots;
  }
  return n;
}

std::vector<NodeInfo> NodeRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(node);
  return out;
}

json::Value NodeRegistry::to_json() const {
  json::Array nodes;
  for (const NodeInfo& node : snapshot()) {
    json::Object n;
    n["id"] = json::Value(node.id);
    n["alive"] = json::Value(node.alive);
    n["slots"] = json::Value(node.slots);
    n["busy"] = json::Value(node.busy);
    n["deaths"] = json::Value(node.deaths);
    n["evals_ok"] = json::Value(static_cast<double>(node.evals_ok));
    n["evals_failed"] = json::Value(static_cast<double>(node.evals_failed));
    nodes.emplace_back(std::move(n));
  }
  json::Object out;
  out["nodes"] = json::Value(std::move(nodes));
  return json::Value(std::move(out));
}

}  // namespace tunekit::fleet
