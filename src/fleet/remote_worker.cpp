#include "fleet/remote_worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <limits>

#include "robust/outcome.hpp"

namespace tunekit::fleet {

NdjsonLink::~NdjsonLink() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

void NdjsonLink::close() {
  if (!shut_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

bool NdjsonLink::send(const json::Value& message, const net::Deadline& deadline) {
  if (closed()) return false;
  std::string line = message.dump();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (closed()) return false;
  const net::IoResult r = net::write_all(fd_, line.data(), line.size(), deadline);
  if (!r.ok()) {
    close();
    return false;
  }
  return true;
}

NdjsonLink::RecvStatus NdjsonLink::recv(json::Value& out,
                                        const net::Deadline& deadline) {
  while (true) {
    const std::size_t nl = rx_buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = rx_buffer_.substr(0, nl);
      rx_buffer_.erase(0, nl + 1);
      if (line.empty()) continue;
      try {
        out = json::parse(line);
      } catch (const json::JsonError&) {
        return RecvStatus::Malformed;
      }
      if (!out.is_object()) return RecvStatus::Malformed;
      return RecvStatus::Line;
    }
    if (closed()) return RecvStatus::Closed;
    // One NDJSON line is small; a peer that streams a megabyte without a
    // newline has lost framing.
    if (rx_buffer_.size() > (1u << 20)) return RecvStatus::Malformed;
    char chunk[4096];
    const net::IoResult r = net::read_some(fd_, chunk, sizeof(chunk), deadline);
    switch (r.status) {
      case net::IoResult::Status::Ok:
        rx_buffer_.append(chunk, r.n);
        break;
      case net::IoResult::Status::Timeout:
        return RecvStatus::Timeout;
      case net::IoResult::Status::Eof:
      case net::IoResult::Status::Error:
        return RecvStatus::Closed;
    }
  }
}

json::Value eval_message(std::uint64_t id, const search::Config& config,
                         double deadline_seconds,
                         const std::string& traceparent) {
  json::Object msg;
  msg["op"] = "eval";
  msg["id"] = json::Value(static_cast<double>(id));
  json::Array coords;
  for (const double v : config) coords.emplace_back(v);
  msg["config"] = json::Value(std::move(coords));
  if (std::isfinite(deadline_seconds)) {
    msg["deadline_s"] = json::Value(deadline_seconds);
  }
  if (!traceparent.empty()) msg["traceparent"] = json::Value(traceparent);
  return json::Value(std::move(msg));
}

json::Value result_message(std::uint64_t id, const robust::SandboxResult& result) {
  json::Object msg;
  msg["op"] = "result";
  msg["id"] = json::Value(static_cast<double>(id));
  msg["outcome"] = json::Value(std::string(robust::to_string(result.outcome)));
  msg["cost"] = json::Value(result.cost_seconds);
  if (result.outcome == robust::EvalOutcome::Ok) {
    msg["value"] = json::Value(result.value);
    if (result.dispersion > 0.0) msg["dispersion"] = json::Value(result.dispersion);
    json::Object regions;
    for (const auto& [name, seconds] : result.regions.regions) {
      regions[name] = json::Value(seconds);
    }
    msg["regions"] = json::Value(std::move(regions));
  }
  if (!result.error.empty()) msg["error"] = json::Value(result.error);
  if (result.worker_died) msg["died"] = json::Value(true);
  if (result.worker_slot >= 0) {
    msg["slot"] = json::Value(static_cast<double>(result.worker_slot));
  }
  return json::Value(std::move(msg));
}

robust::SandboxResult result_from_wire(const json::Value& message) {
  robust::SandboxResult r;
  r.outcome = robust::EvalOutcome::InvalidConfig;
  try {
    r.outcome = robust::outcome_from_string(message.at("outcome").as_string());
  } catch (const std::exception&) {
    r.error = "malformed result from fleet node";
    return r;
  }
  r.cost_seconds = message.number_or("cost", 0.0);
  r.dispersion = message.number_or("dispersion", 0.0);
  r.worker_died = message.contains("died") && message.at("died").is_bool() &&
                  message.at("died").as_bool();
  r.worker_slot = static_cast<int>(message.number_or("slot", -1.0));
  if (message.contains("error")) {
    try {
      r.error = message.at("error").as_string();
    } catch (const std::exception&) {
    }
  }
  if (r.outcome == robust::EvalOutcome::Ok) {
    if (!message.contains("value")) {
      r.outcome = robust::EvalOutcome::InvalidConfig;
      r.error = "ok result without a value";
      return r;
    }
    r.value = message.number_or("value", std::numeric_limits<double>::quiet_NaN());
    if (message.contains("regions") && message.at("regions").is_object()) {
      for (const auto& [name, v] : message.at("regions").as_object()) {
        r.regions.regions[name] = v.as_number();
      }
    }
    r.regions.total = r.value;
  }
  return r;
}

}  // namespace tunekit::fleet
