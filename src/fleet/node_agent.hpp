#pragma once
// NodeAgent: the machine-side half of the fleet. It dials the dispatcher,
// registers its slot count, heartbeats, and executes the eval messages pushed
// down the link against a local EvalBackend — by default a WorkerPool of
// sandboxed tunekit_worker processes, so the node inherits respawn backoff
// and SIGKILL deadlines for free. Per-config crash quarantine is disabled
// node-side: that knowledge belongs in the dispatcher, which sees crashes
// from every node.
//
// The agent reconnects with bounded exponential backoff when the dispatcher
// goes away, and honors the dispatcher's re-admission quarantine by sleeping
// out a rejected registration's retry_after_s. Chaos hooks (mute, spin) let
// the soak test and the throughput bench simulate hung and slow nodes
// without bespoke binaries.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/remote_worker.hpp"
#include "robust/eval_backend.hpp"
#include "robust/process_sandbox.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::fleet {

struct NodeAgentOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Fleet-unique node id; empty = "<hostname>-<pid>".
  std::string node_id;
  std::size_t slots = 2;
  /// Worker process settings for the default WorkerPool backend.
  robust::SandboxOptions sandbox;
  /// Pre-built local backend (tests inject synthetic ones); when null a
  /// WorkerPool is built from `sandbox`.
  std::shared_ptr<robust::EvalBackend> backend;
  double connect_timeout_s = 5.0;
  double reconnect_base_s = 0.5;
  double reconnect_max_s = 10.0;
  /// Chaos: go silent (no heartbeats, evals held un-run) this long after the
  /// first registration. 0 disables. The dispatcher must detect the hang and
  /// re-dispatch the held work.
  double chaos_mute_after_s = 0.0;
  /// Bench: extra artificial cost added to every eval, to make dispatch
  /// overhead measurable against a realistic per-eval duration.
  double spin_ms = 0.0;
  obs::Telemetry* telemetry = nullptr;
};

class NodeAgent {
 public:
  explicit NodeAgent(NodeAgentOptions options);
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  /// Connect-serve-reconnect until stop(). Returns false when the local
  /// backend could not be built (no worker binary).
  bool run();

  /// Async-signal-compatible: flips a flag and shuts the active link.
  void stop();

  const std::string& node_id() const { return node_id_; }
  std::uint64_t evals_served() const { return evals_served_; }

 private:
  struct PendingEval {
    std::uint64_t id = 0;
    search::Config config;
    double deadline_s = std::numeric_limits<double>::infinity();
    /// Trace context stamped by the dispatcher ("" = tracing off). Non-empty
    /// asks for node-clock-anchored spans in the result message.
    std::string traceparent;
    /// Node steady-clock ns when the eval message arrived (queue-wait span).
    std::uint64_t enqueued_ns = 0;
  };

  /// One registration + message-pump cycle. Returns false on a quarantine
  /// reject (after sleeping out retry_after_s) or transport failure.
  void serve(const std::shared_ptr<NdjsonLink>& link, double hb_interval_s);
  void eval_loop(const std::shared_ptr<NdjsonLink>& link);
  bool muted() const;
  void sleep_interruptible(double seconds);

  NodeAgentOptions options_;
  std::string node_id_;
  std::shared_ptr<robust::EvalBackend> backend_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> session_done_{false};
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::uint64_t> evals_served_{0};
  /// Last measured hb -> hb_ack round trip (ns; 0 = not yet measured).
  /// Written by the serve loop, read by the heartbeat thread.
  std::atomic<std::uint64_t> last_rtt_ns_{0};
  /// Steady-clock second at which chaos mute engages (0 = never).
  std::atomic<double> mute_at_s_{0.0};

  std::mutex link_mutex_;
  std::shared_ptr<NdjsonLink> active_link_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingEval> queue_;
};

}  // namespace tunekit::fleet
