#include "fleet/dispatcher.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::fleet {

namespace {

int listen_tcp(const std::string& host, std::uint16_t port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &res);
  if (rc != 0) {
    if (error) *error = std::string("resolve '") + host + "': " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && error) {
    *error = "bind " + host + ":" + service + ": " + std::strerror(errno);
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

std::string metric_suffix(const std::string& node_id) {
  std::string out = "_node_";
  for (const char c : node_id) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

FleetDispatcher::FleetDispatcher(DispatcherOptions options)
    : options_(options),
      registry_(options.registry),
      quarantine_(options.quarantine_after),
      telemetry_(options.telemetry) {
  std::string error;
  listen_fd_ = listen_tcp(options_.host, options_.port, &error);
  if (listen_fd_ < 0) {
    throw std::runtime_error("fleet: cannot listen: " + error);
  }
  port_ = bound_port(listen_fd_);
  accept_thread_ = std::thread(&FleetDispatcher::accept_loop, this);
  monitor_thread_ = std::thread(&FleetDispatcher::monitor_loop, this);
}

FleetDispatcher::~FleetDispatcher() { stop(); }

double FleetDispatcher::now_s() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FleetDispatcher::accept_loop() {
  while (!stopping_) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 200);
    if (stopping_) break;
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers_.emplace_back(&FleetDispatcher::serve_connection, this, fd);
  }
}

void FleetDispatcher::monitor_loop() {
  while (!stopping_) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (stopping_) break;
    for (const std::string& id : registry_.expire(now_s())) {
      log_warn("fleet: node '", id, "' missed its heartbeat deadline");
      node_down(id, "missed heartbeat deadline");
    }
    update_gauges();
  }
}

void FleetDispatcher::serve_connection(int fd) {
  auto link = std::make_shared<NdjsonLink>(fd);
  json::Value msg;
  // Short recv slices so stop() is never stuck behind a silent dialer.
  const net::Deadline register_by = net::Deadline::after(10.0);
  NdjsonLink::RecvStatus st;
  do {
    st = link->recv(msg, net::Deadline::after(0.5));
  } while (st == NdjsonLink::RecvStatus::Timeout && !stopping_ &&
           !register_by.expired());
  if (st != NdjsonLink::RecvStatus::Line) {
    return;  // never registered; drop silently
  }
  std::string id;
  std::size_t slots = 1;
  try {
    if (msg.at("op").as_string() != "register" ||
        msg.at("format").as_string() != kFleetFormat) {
      return;
    }
    id = msg.at("node").as_string();
    slots = static_cast<std::size_t>(
        std::max(1.0, msg.number_or("slots", 1.0)));
  } catch (const std::exception&) {
    return;
  }

  const NodeRegistry::Admit admit = registry_.admit(id, slots, now_s());
  if (!admit.ok) {
    json::Object reject;
    reject["op"] = "reject";
    reject["reason"] = json::Value(admit.reason);
    if (admit.retry_after_s > 0.0) {
      reject["retry_after_s"] = json::Value(admit.retry_after_s);
    }
    link->send(json::Value(std::move(reject)), net::Deadline::after(5.0));
    return;
  }

  auto node = std::make_shared<Node>();
  node->id = id;
  node->link = link;
  node->slots = slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_[id] = node;
  }
  json::Object ack;
  ack["op"] = "registered";
  ack["node"] = json::Value(id);
  ack["hb_interval_s"] = json::Value(options_.heartbeat_interval_s);
  if (!link->send(json::Value(std::move(ack)), net::Deadline::after(5.0))) {
    node_down(id, "registration ack failed", link.get());
    return;
  }
  log_info("fleet: node '", id, "' joined with ", slots, " slots");
  update_gauges();
  pump(true);  // fresh capacity steals queued work immediately
  node_loop(id, link);
}

void FleetDispatcher::node_loop(const std::string& id,
                                const std::shared_ptr<NdjsonLink>& link) {
  while (!stopping_) {
    json::Value msg;
    switch (link->recv(msg, net::Deadline::after(0.5))) {
      case NdjsonLink::RecvStatus::Timeout:
        continue;  // liveness is the monitor's job
      case NdjsonLink::RecvStatus::Closed:
        node_down(id, "connection closed", link.get());
        return;
      case NdjsonLink::RecvStatus::Malformed:
        node_down(id, "malformed message", link.get());
        return;
      case NdjsonLink::RecvStatus::Line:
        break;
    }
    std::string op;
    try {
      op = msg.at("op").as_string();
    } catch (const std::exception&) {
      node_down(id, "message without op", link.get());
      return;
    }
    if (op == "hb") {
      registry_.heartbeat(
          id, static_cast<std::size_t>(std::max(0.0, msg.number_or("busy", 0.0))),
          now_s());
      if (msg.contains("t_ns")) {
        const double node_t = msg.number_or("t_ns", 0.0);
        const double rtt = msg.number_or("rtt_ns", 0.0);
        // NTP-style one-sample update: arrival here minus the node's send
        // stamp minus half the (node-measured) round trip. Keep the
        // min-RTT sample — it bounds the error tightest.
        if (telemetry_ != nullptr && telemetry_->enabled() && rtt > 0.0) {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = nodes_.find(id);
          if (it != nodes_.end() && it->second->link.get() == link.get()) {
            it->second->clock.observe(telemetry_->now_ns(),
                                      static_cast<std::uint64_t>(node_t),
                                      static_cast<std::uint64_t>(rtt));
          }
        }
        json::Object ack;
        ack["op"] = "hb_ack";
        ack["t_ns"] = json::Value(node_t);
        link->send(json::Value(std::move(ack)), net::Deadline::after(2.0));
      }
    } else if (op == "result") {
      const auto ticket_id =
          static_cast<std::uint64_t>(msg.number_or("id", 0.0));
      std::vector<WireSpan> node_spans;
      if (msg.contains("spans") && msg.at("spans").is_array()) {
        for (const json::Value& v : msg.at("spans").as_array()) {
          if (!v.is_object() || !v.contains("name")) continue;
          WireSpan span;
          try {
            span.name = v.at("name").as_string();
          } catch (const std::exception&) {
            continue;
          }
          span.start_ns = static_cast<std::uint64_t>(v.number_or("start_ns", 0.0));
          span.dur_ns = static_cast<std::uint64_t>(v.number_or("dur_ns", 0.0));
          node_spans.push_back(std::move(span));
        }
      }
      complete_ticket(ticket_id, id, result_from_wire(msg), node_spans);
    }
    // Unknown ops are ignored (forward compatibility).
  }
}

void FleetDispatcher::node_down(const std::string& id, const std::string& reason,
                                const NdjsonLink* expect) {
  if (expect == nullptr && registry_.alive(id)) {
    return;  // a fresh registration already replaced the expired entry
  }
  std::shared_ptr<Node> node;
  std::vector<std::uint64_t> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;  // already torn down (or replaced)
    if (expect != nullptr && it->second->link.get() != expect) return;
    node = it->second;
    nodes_.erase(it);
    orphans = std::move(node->inflight);
  }
  registry_.mark_dead(id, now_s());
  // The connection dying is an eval-grade failure signal too: a node that
  // flaps under load should come back from quarantine into a wary breaker.
  breaker_record(id, /*ok=*/false, 0.0);
  node->link->close();

  bool requeued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t tid : orphans) {
      auto it = tickets_.find(tid);
      if (it == tickets_.end() || it->second.done) continue;
      Ticket& t = it->second;
      t.node.clear();
      if (++t.redispatches > options_.max_redispatch) {
        t.done = true;
        t.result.outcome = robust::EvalOutcome::Crashed;
        t.result.worker_died = true;
        t.result.error = "fleet node '" + id + "' died under the evaluation (" +
                         reason + "); redispatch limit reached";
        continue;
      }
      // Front of the queue: work already paid for waits the least.
      t.queued = true;
      queue_.push_front(tid);
      requeued = true;
      redispatches_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().counter(obs::metric::kFleetRedispatches).inc();
      }
    }
  }
  done_cv_.notify_all();
  update_gauges();
  if (requeued) pump(false);
}

void FleetDispatcher::pump(bool stolen) {
  struct Send {
    std::shared_ptr<NdjsonLink> link;
    std::string node;
    json::Value msg;
  };
  std::vector<Send> sends;
  const double now = now_s();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Nodes whose breaker refused a half-open probe this pump (bounded
    // probes are in flight already); excluded from re-selection below.
    std::vector<std::string> barred;
    while (!queue_.empty()) {
      std::shared_ptr<Node> best;
      for (auto& [id, node] : nodes_) {
        if (node->inflight.size() >= node->slots) continue;
        if (breaker_for(id).open_now(now)) continue;
        if (std::find(barred.begin(), barred.end(), id) != barred.end()) continue;
        if (!best || node->inflight.size() < best->inflight.size()) best = node;
      }
      if (!best) break;
      if (!breaker_for(best->id).allow(now)) {
        barred.push_back(best->id);
        continue;
      }
      const std::uint64_t tid = queue_.front();
      queue_.pop_front();
      auto it = tickets_.find(tid);
      if (it == tickets_.end() || it->second.done) continue;
      Ticket& t = it->second;
      t.queued = false;
      t.node = best->id;
      best->inflight.push_back(tid);
      std::string traceparent;
      if (t.trace.valid() && t.rpc_span != 0) {
        traceparent =
            obs::to_traceparent(obs::TraceContext{t.trace.trace, t.rpc_span});
      }
      sends.push_back({best->link, best->id,
                       eval_message(tid, t.config, t.deadline_s, traceparent)});
      if (stolen) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_ != nullptr && telemetry_->enabled()) {
          telemetry_->metrics().counter(obs::metric::kFleetSteals).inc();
        }
      }
    }
  }
  for (Send& s : sends) {
    if (!s.link->send(s.msg, net::Deadline::after(5.0))) {
      node_down(s.node, "eval dispatch failed", s.link.get());
    }
  }
  update_gauges();
}

std::int64_t span_shift(bool synced, std::int64_t offset_ns,
                        const std::vector<WireSpan>& spans,
                        std::uint64_t arrival_ns) {
  if (synced) return offset_ns;
  std::uint64_t last_end = 0;
  for (const WireSpan& span : spans) {
    last_end = std::max(last_end, span.start_ns + span.dur_ns);
  }
  return static_cast<std::int64_t>(arrival_ns) -
         static_cast<std::int64_t>(last_end);
}

AnchoredSpan anchor_span(const WireSpan& span, std::int64_t shift,
                         std::uint64_t rpc_start_ns, std::uint64_t arrival_ns) {
  const std::int64_t mapped = static_cast<std::int64_t>(span.start_ns) + shift;
  std::uint64_t start = mapped < 0 ? 0 : static_cast<std::uint64_t>(mapped);
  start = std::min(std::max(start, rpc_start_ns), arrival_ns);
  AnchoredSpan out;
  out.start_ns = start;
  out.dur_ns = std::min(span.dur_ns, arrival_ns - start);
  return out;
}

void FleetDispatcher::complete_ticket(std::uint64_t id, const std::string& node_id,
                                      robust::SandboxResult result,
                                      const std::vector<WireSpan>& node_spans) {
  const bool eval_ok = result.outcome == robust::EvalOutcome::Ok;
  // Breaker failure taxonomy: the node broke the eval (its worker died or it
  // went silent past the deadline). A config crashing deterministically is
  // the config's fault — quarantine handles that — so it must not trip the
  // node's breaker.
  const bool node_fault =
      (result.outcome == robust::EvalOutcome::Crashed && result.worker_died) ||
      result.outcome == robust::EvalOutcome::TimedOut;
  double waited_s = -1.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tickets_.find(id);
    // A result from a node the ticket was already re-dispatched away from is
    // stale: exactly one delivery may win, or a tell could be double-issued.
    if (it == tickets_.end() || it->second.done || it->second.node != node_id) {
      return;
    }
    Ticket& t = it->second;
    t.done = true;
    t.result = std::move(result);
    t.result.worker_node = node_id;
    t.node.clear();
    waited_s = now_s() - t.submitted_s;
    auto nit = nodes_.find(node_id);
    if (nit != nodes_.end()) {
      auto& inflight = nit->second->inflight;
      inflight.erase(std::remove(inflight.begin(), inflight.end(), id),
                     inflight.end());
    }
    // Stitch the node-side spans under the fleet.rpc span, mapped from the
    // node's steady clock into ours. With a heartbeat-derived offset the
    // mapping is absolute (error bounded by rtt/2); before the first
    // exchange we fall back to anchoring the last span's end at the
    // result's arrival. Either way spans are clamped into the rpc interval
    // so a skewed clock can never make a child escape its parent.
    if (telemetry_ != nullptr && telemetry_->enabled() && t.rpc_span != 0 &&
        !node_spans.empty()) {
      const std::uint64_t arrival = telemetry_->now_ns();
      const bool synced = nit != nodes_.end() && nit->second->clock.synced();
      const std::int64_t shift = span_shift(
          synced, synced ? nit->second->clock.offset_ns() : 0, node_spans,
          arrival);
      for (const WireSpan& span : node_spans) {
        const AnchoredSpan a = anchor_span(span, shift, t.rpc_start_ns, arrival);
        telemetry_->record_span(span.name, t.rpc_span, a.start_ns, a.dur_ns,
                                /*pid=*/0, "fleet-node", t.trace.trace);
      }
    }
    if (t.result.outcome == robust::EvalOutcome::Crashed &&
        t.result.worker_died && quarantine_.enabled()) {
      const std::size_t crashes = quarantine_.record_crash(t.config);
      if (crashes == quarantine_.threshold()) {
        log_warn("fleet: configuration quarantined fleet-wide after ", crashes,
                 " crashes (", t.result.error, ")");
      }
    }
  }
  registry_.record_eval(node_id, eval_ok);
  breaker_record(node_id, !node_fault, waited_s >= 0.0 ? waited_s : 0.0);
  if (telemetry_ != nullptr && telemetry_->enabled() && waited_s >= 0.0) {
    telemetry_->metrics().histogram(obs::metric::kFleetEvalSeconds).observe(waited_s);
    telemetry_->metrics()
        .histogram(obs::metric::kFleetEvalSeconds + metric_suffix(node_id))
        .observe(waited_s);
  }
  done_cv_.notify_all();
  pump(true);  // the freed slot pulls the next queued ticket
}

robust::SandboxResult FleetDispatcher::evaluate(const search::Config& config,
                                                double deadline_seconds) {
  if (quarantine_.quarantined(config)) {
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().counter(obs::metric::kEvalsQuarantined).inc();
    }
    robust::set_last_worker_slot(-1);
    robust::SandboxResult r;
    r.outcome = robust::EvalOutcome::Crashed;
    r.error = "configuration quarantined after " +
              std::to_string(quarantine_.threshold()) + " crashes";
    return r;
  }

  // The rpc span covers queue wait + dispatch + node round trip; it inherits
  // the caller's ambient span (the scheduler's eval span), so node-side
  // spans imported under it complete the client -> worker tree.
  obs::ScopedSpan rpc_span(telemetry_, "fleet.rpc",
                           obs::Telemetry::kInheritParent, "fleet");
  std::uint64_t tid = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tid = next_ticket_++;
    Ticket t;
    t.id = tid;
    t.config = config;
    t.deadline_s = deadline_seconds;
    t.queued = true;
    t.submitted_s = now_s();
    if (rpc_span.id() != 0) {
      t.trace = rpc_span.context();
      t.rpc_span = rpc_span.id();
      t.rpc_start_ns = telemetry_->now_ns();
    }
    tickets_.emplace(tid, std::move(t));
    queue_.push_back(tid);
  }
  pump(false);

  robust::SandboxResult result;
  double starved_since = now_s();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      auto it = tickets_.find(tid);
      if (it == tickets_.end()) {  // cannot happen; defensive
        result.outcome = robust::EvalOutcome::Crashed;
        result.error = "fleet ticket lost";
        break;
      }
      Ticket& t = it->second;
      if (t.done) {
        result = std::move(t.result);
        tickets_.erase(it);
        break;
      }
      if (stopping_) {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), tid), queue_.end());
        tickets_.erase(it);
        result.outcome = robust::EvalOutcome::Crashed;
        result.error = "fleet dispatcher stopped";
        break;
      }
      // Starvation guard: queued with zero live nodes for too long. The clock
      // resets whenever the ticket is on a node or capacity exists.
      if (!t.queued || registry_.nodes_alive() > 0) {
        starved_since = now_s();
      } else if (now_s() - starved_since > options_.no_nodes_timeout_s) {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), tid), queue_.end());
        tickets_.erase(it);
        result.outcome = robust::EvalOutcome::Crashed;
        result.error = "no fleet nodes available";
        break;
      }
      done_cv_.wait_for(lock, std::chrono::milliseconds(100));
      // Re-offer a ticket that is still queued: dispatch capacity can
      // reappear without any event that pumps — a breaker's cool-down
      // elapsing admits half-open probes — so a waiter must not depend on
      // results or registrations to get its work re-considered.
      if (t.queued && !stopping_) {
        lock.unlock();
        pump(false);
        lock.lock();
      }
    }
  }
  robust::set_last_worker_slot(result.worker_slot);
  robust::set_last_worker_node(result.worker_node);
  return result;
}

CircuitBreaker& FleetDispatcher::breaker_for(const std::string& id) {
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  return breakers_.try_emplace(id, options_.breaker).first->second;
}

void FleetDispatcher::breaker_record(const std::string& id, bool ok,
                                     double latency_s) {
  if (breaker_for(id).record(ok, latency_s, now_s())) {
    log_warn("fleet: node '", id,
             "' circuit breaker opened; holding dispatch for cool-down");
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().counter(obs::metric::kBreakerOpens).inc();
    }
  }
}

bool FleetDispatcher::degraded() const {
  const double now = now_s();
  std::size_t live = 0;
  std::size_t open = 0;
  for (const NodeInfo& node : registry_.snapshot()) {
    if (!node.alive) continue;
    ++live;
    std::lock_guard<std::mutex> lock(breakers_mutex_);
    auto it = breakers_.find(node.id);
    if (it != breakers_.end() && it->second.open_now(now)) ++open;
  }
  return live > 0 && open == live;
}

std::size_t FleetDispatcher::concurrency() const {
  return std::max<std::size_t>(1, registry_.slots_total());
}

std::size_t FleetDispatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

json::Value FleetDispatcher::status_json() const {
  json::Value out = registry_.to_json();
  json::Object& obj = out.as_object();
  obj["port"] = json::Value(static_cast<double>(port_));
  obj["queue_depth"] = json::Value(queue_depth());
  obj["steals"] = json::Value(static_cast<double>(steals()));
  obj["redispatches"] = json::Value(static_cast<double>(redispatches()));
  {
    const double now = now_s();
    json::Object breakers;
    std::lock_guard<std::mutex> lock(breakers_mutex_);
    for (auto& [id, breaker] : breakers_) {
      breakers[id] = breaker.to_json(now);
    }
    obj["breakers"] = json::Value(std::move(breakers));
  }
  {
    json::Object clocks;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, node] : nodes_) {
      json::Object c;
      c["synced"] = json::Value(node->clock.synced());
      if (node->clock.synced()) {
        c["offset_ns"] = json::Value(static_cast<double>(node->clock.offset_ns()));
        c["rtt_ns"] = json::Value(static_cast<double>(node->clock.best_rtt_ns()));
      }
      clocks[id] = json::Value(std::move(c));
    }
    obj["clocks"] = json::Value(std::move(clocks));
  }
  obj["degraded"] = json::Value(degraded());
  return out;
}

void FleetDispatcher::update_gauges() {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  std::size_t busy = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, node] : nodes_) busy += node->inflight.size();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, node] : nodes_) {
      if (!node->clock.synced()) continue;
      telemetry_->metrics()
          .gauge(obs::metric::kFleetClockOffsetSeconds + metric_suffix(id))
          .set(std::abs(static_cast<double>(node->clock.offset_ns())) / 1e9);
    }
  }
  telemetry_->metrics().gauge(obs::metric::kFleetNodesUp)
      .set(static_cast<double>(registry_.nodes_alive()));
  telemetry_->metrics().gauge(obs::metric::kFleetSlotsBusy)
      .set(static_cast<double>(busy));
  std::size_t open = 0;
  {
    const double now = now_s();
    std::lock_guard<std::mutex> lock(breakers_mutex_);
    for (const auto& [id, breaker] : breakers_) {
      if (breaker.open_now(now)) ++open;
    }
  }
  telemetry_->metrics().gauge(obs::metric::kBreakerNodesOpen)
      .set(static_cast<double>(open));
}

void FleetDispatcher::stop() {
  if (stopping_.exchange(true)) {
    // Second caller (destructor after an explicit stop): threads are joined.
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, node] : nodes_) node->link->close();
  }
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [tid, t] : tickets_) {
      if (t.done) continue;
      t.done = true;
      t.result.outcome = robust::EvalOutcome::Crashed;
      t.result.error = "fleet dispatcher stopped";
    }
    queue_.clear();
  }
  done_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace tunekit::fleet
