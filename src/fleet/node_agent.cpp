#include "fleet/node_agent.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "net/deadline.hpp"
#include "robust/worker_pool.hpp"

namespace tunekit::fleet {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The node's span/heartbeat clock: raw steady ns. The dispatcher maps these
/// into its own clock with the heartbeat-derived offset (fleet/clock_sync).
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string default_node_id() {
  char host[256] = "node";
  ::gethostname(host, sizeof(host) - 1);
  host[sizeof(host) - 1] = '\0';
  return std::string(host) + "-" + std::to_string(::getpid());
}

/// Reconnect backoff: exponential in `failures`, capped, then shortened by
/// up to 20% by a deterministic (node_id, failures) factor — when the
/// dispatcher restarts, a whole fleet of agents must not redial in lockstep.
double reconnect_backoff_s(const NodeAgentOptions& options,
                           const std::string& node_id, std::size_t failures) {
  const double base = std::min(
      options.reconnect_base_s *
          static_cast<double>(1ull << std::min<std::size_t>(failures, 10)),
      options.reconnect_max_s);
  const std::uint64_t h =
      common::stable_hash(node_id) ^ static_cast<std::uint64_t>(failures);
  const double jitter = 1.0 - 0.2 * (static_cast<double>(h % 1000) / 999.0);
  return base * jitter;
}

}  // namespace

NodeAgent::NodeAgent(NodeAgentOptions options)
    : options_(std::move(options)),
      node_id_(options_.node_id.empty() ? default_node_id() : options_.node_id),
      backend_(options_.backend) {}

NodeAgent::~NodeAgent() { stop(); }

void NodeAgent::stop() {
  stop_.store(true);
  session_done_.store(true);
  {
    std::lock_guard<std::mutex> lock(link_mutex_);
    if (active_link_) active_link_->close();
  }
  queue_cv_.notify_all();
}

bool NodeAgent::muted() const {
  const double at = mute_at_s_.load(std::memory_order_relaxed);
  return at > 0.0 && steady_now_s() >= at;
}

void NodeAgent::sleep_interruptible(double seconds) {
  const double until = steady_now_s() + seconds;
  while (!stop_ && steady_now_s() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool NodeAgent::run() {
  if (!backend_) {
    if (options_.sandbox.argv.empty()) {
      log_warn("fleet-node: no worker binary configured");
      return false;
    }
    auto pool = std::make_shared<robust::WorkerPool>(
        options_.sandbox, options_.slots, /*quarantine_after=*/0,
        options_.telemetry);
    if (!pool->healthy()) {
      log_warn("fleet-node: worker '", options_.sandbox.argv[0],
               "' could not be started");
      return false;
    }
    backend_ = pool;
  }

  std::size_t failures = 0;
  while (!stop_) {
    std::string error;
    const int fd = net::dial_tcp(options_.host, options_.port,
                                 net::Deadline::after(options_.connect_timeout_s),
                                 &error);
    if (fd < 0) {
      const double backoff = reconnect_backoff_s(options_, node_id_, failures);
      ++failures;
      log_warn("fleet-node: ", error, "; retrying in ", backoff, "s");
      sleep_interruptible(backoff);
      continue;
    }
    auto link = std::make_shared<NdjsonLink>(fd);
    {
      std::lock_guard<std::mutex> lock(link_mutex_);
      active_link_ = link;
    }

    json::Object reg;
    reg["op"] = "register";
    reg["format"] = json::Value(kFleetFormat);
    reg["node"] = json::Value(node_id_);
    reg["slots"] = json::Value(options_.slots);
    json::Value reply;
    bool registered = false;
    if (link->send(json::Value(std::move(reg)), net::Deadline::after(5.0)) &&
        link->recv(reply, net::Deadline::after(10.0)) ==
            NdjsonLink::RecvStatus::Line) {
      const std::string op =
          reply.contains("op") && reply.at("op").is_string()
              ? reply.at("op").as_string()
              : "";
      if (op == "registered") {
        registered = true;
        failures = 0;
        if (options_.chaos_mute_after_s > 0.0 &&
            mute_at_s_.load(std::memory_order_relaxed) == 0.0) {
          mute_at_s_.store(steady_now_s() + options_.chaos_mute_after_s,
                           std::memory_order_relaxed);
        }
        serve(link, std::max(0.1, reply.number_or("hb_interval_s", 1.0)));
      } else if (op == "reject") {
        const double retry = reply.number_or("retry_after_s", 0.0);
        log_warn("fleet-node: registration rejected",
                 retry > 0.0 ? "; retrying in " + std::to_string(retry) + "s"
                             : std::string());
        if (retry > 0.0) sleep_interruptible(retry + 0.05);
      }
    }
    {
      std::lock_guard<std::mutex> lock(link_mutex_);
      if (active_link_ == link) active_link_.reset();
    }
    link->close();
    if (!registered && !stop_) {
      const double backoff = reconnect_backoff_s(options_, node_id_, failures);
      ++failures;
      sleep_interruptible(backoff);
    }
  }
  return true;
}

void NodeAgent::serve(const std::shared_ptr<NdjsonLink>& link,
                      double hb_interval_s) {
  session_done_.store(false);
  {
    // Evals queued for a previous (now dead) link were re-dispatched by the
    // dispatcher already; running them here would double-issue results.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }

  std::thread heartbeat([this, link, hb_interval_s] {
    while (!session_done_ && !link->closed()) {
      if (!muted()) {
        json::Object hb;
        hb["op"] = "hb";
        hb["busy"] = json::Value(busy_.load(std::memory_order_relaxed));
        hb["t_ns"] = json::Value(static_cast<double>(steady_now_ns()));
        hb["rtt_ns"] = json::Value(
            static_cast<double>(last_rtt_ns_.load(std::memory_order_relaxed)));
        if (!link->send(json::Value(std::move(hb)), net::Deadline::after(2.0))) {
          break;
        }
      }
      const auto step = std::chrono::duration<double>(hb_interval_s);
      std::this_thread::sleep_for(
          std::chrono::duration_cast<std::chrono::milliseconds>(step));
    }
  });

  std::vector<std::thread> evaluators;
  evaluators.reserve(options_.slots);
  for (std::size_t i = 0; i < options_.slots; ++i) {
    evaluators.emplace_back(&NodeAgent::eval_loop, this, link);
  }

  while (!stop_) {
    json::Value msg;
    const NdjsonLink::RecvStatus st = link->recv(msg, net::Deadline::after(0.5));
    if (st == NdjsonLink::RecvStatus::Timeout) continue;
    if (st != NdjsonLink::RecvStatus::Line) break;
    std::string op;
    try {
      op = msg.at("op").as_string();
    } catch (const std::exception&) {
      continue;
    }
    if (op == "hb_ack") {
      // The echo of our own steady stamp: now minus it is the full hb ->
      // hb_ack round trip, reported on the next heartbeat so the dispatcher
      // can bound its offset estimate.
      const double echoed = msg.number_or("t_ns", 0.0);
      if (echoed > 0.0) {
        const std::uint64_t sent = static_cast<std::uint64_t>(echoed);
        const std::uint64_t now = steady_now_ns();
        if (now > sent) {
          last_rtt_ns_.store(now - sent, std::memory_order_relaxed);
        }
      }
    } else if (op == "eval") {
      PendingEval ev;
      ev.id = static_cast<std::uint64_t>(msg.number_or("id", 0.0));
      if (msg.contains("traceparent") && msg.at("traceparent").is_string()) {
        ev.traceparent = msg.at("traceparent").as_string();
      }
      ev.enqueued_ns = steady_now_ns();
      // The dispatcher omits `deadline_s` when the eval has no deadline; a
      // missing field must mean "unbounded", not "0 seconds" (which the
      // sandbox would enforce with an instant SIGKILL).
      ev.deadline_s = msg.number_or("deadline_s",
                                    std::numeric_limits<double>::infinity());
      bool ok = true;
      try {
        for (const json::Value& v : msg.at("config").as_array()) {
          ev.config.push_back(v.as_number());
        }
      } catch (const std::exception&) {
        ok = false;
      }
      if (ok) {
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          queue_.push_back(std::move(ev));
        }
        queue_cv_.notify_one();
      } else {
        robust::SandboxResult bad;
        bad.outcome = robust::EvalOutcome::InvalidConfig;
        bad.error = "malformed eval message";
        link->send(result_message(ev.id, bad), net::Deadline::after(5.0));
      }
    } else if (op == "exit") {
      break;
    }
  }

  session_done_.store(true);
  queue_cv_.notify_all();
  link->close();
  for (std::thread& t : evaluators) t.join();
  heartbeat.join();
}

void NodeAgent::eval_loop(const std::shared_ptr<NdjsonLink>& link) {
  while (true) {
    PendingEval ev;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return session_done_ || !queue_.empty(); });
      if (session_done_ && queue_.empty()) return;
      if (queue_.empty()) continue;
      ev = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hang: hold the eval without running or replying. The dispatcher's
    // heartbeat monitor must notice the silence and re-dispatch elsewhere.
    while (muted() && !stop_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (stop_) return;

    busy_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t eval_start_ns =
        ev.traceparent.empty() ? 0 : steady_now_ns();
    robust::SandboxResult result = backend_->evaluate(ev.config, ev.deadline_s);
    if (options_.spin_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options_.spin_ms));
    }
    busy_.fetch_sub(1, std::memory_order_relaxed);
    evals_served_.fetch_add(1, std::memory_order_relaxed);
    json::Value reply = result_message(ev.id, result);
    if (!ev.traceparent.empty()) {
      // Node-clock-anchored spans for the dispatcher to stitch under its
      // fleet.rpc span: the slot queue wait and the objective run itself.
      // Raw steady ns — the dispatcher owns the clock mapping.
      const std::uint64_t eval_end_ns = steady_now_ns();
      json::Array spans;
      if (eval_start_ns > ev.enqueued_ns) {
        json::Object wait;
        wait["name"] = json::Value(std::string("node.queue"));
        wait["start_ns"] = json::Value(static_cast<double>(ev.enqueued_ns));
        wait["dur_ns"] =
            json::Value(static_cast<double>(eval_start_ns - ev.enqueued_ns));
        spans.emplace_back(std::move(wait));
      }
      json::Object run;
      run["name"] = json::Value(std::string("node.objective"));
      run["start_ns"] = json::Value(static_cast<double>(eval_start_ns));
      run["dur_ns"] = json::Value(static_cast<double>(
          eval_end_ns > eval_start_ns ? eval_end_ns - eval_start_ns : 0));
      spans.emplace_back(std::move(run));
      reply.as_object()["spans"] = json::Value(std::move(spans));
    }
    link->send(reply, net::Deadline::after(5.0));
  }
}

}  // namespace tunekit::fleet
