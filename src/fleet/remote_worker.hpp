#pragma once
// Remote worker transport: the tunekit-worker NDJSON protocol lifted onto
// TCP, so evaluation slots can live on other machines.
//
// Wire protocol ("tunekit-fleet-v1", one JSON object per line, UTF-8, '\n'
// terminated — the same framing the process sandbox speaks over pipes):
//
//   node -> dispatcher:
//     {"op":"register","format":"tunekit-fleet-v1","node":ID,"slots":N,
//      "app":NAME}                                   once, after connect
//     {"op":"hb","busy":K[,"t_ns":NS][,"rtt_ns":NS]} periodic heartbeat;
//                       t_ns is the node's steady clock at send, rtt_ns the
//                       node-measured previous hb->hb_ack round trip (0 =
//                       not yet measured) — the dispatcher's clock-offset
//                       estimate (fleet/clock_sync) feeds on both
//     {"op":"result","id":T,"outcome":"ok","value":V,"cost":C,
//      "regions":{...}[,"dispersion":D][,"error":MSG][,"slot":S]
//      [,"spans":[{"name":N,"start_ns":S,"dur_ns":D},...]]}
//                       spans are node-clock-anchored timings of the eval
//                       (present only when the eval carried a traceparent);
//                       the dispatcher maps them into its own clock and
//                       stitches them under the fleet.rpc span
//
//   dispatcher -> node:
//     {"op":"registered","node":ID,"hb_interval_s":X} registration accepted
//     {"op":"reject","reason":MSG[,"retry_after_s":S]} refused (per-node
//                                                      quarantine backoff)
//     {"op":"hb_ack","t_ns":NS}                       echoes the hb's t_ns so
//                                                     the node can measure rtt
//     {"op":"eval","id":T,"config":[...],"deadline_s":S
//      [,"traceparent":"00-<trace>-<rpc span>-01"]}   distributed tracing:
//                       the node reports spans for this eval and may adopt
//                       the context into its own telemetry
//     {"op":"exit"}                                   orderly drain
//
// Unknown keys are ignored on both sides, so the protocol can grow without
// a version bump (the same policy tunekit-worker-v1 follows). Transport
// failures map onto the existing robust::EvalOutcome taxonomy: a dropped
// connection or a missed heartbeat is a Crashed evaluation — the node died
// under the work, exactly like a worker process dying under an eval — so
// quarantine, retry, and journaling behave identically local or remote.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/json.hpp"
#include "net/deadline.hpp"
#include "robust/process_sandbox.hpp"
#include "search/space.hpp"

namespace tunekit::fleet {

inline constexpr const char* kFleetFormat = "tunekit-fleet-v1";

/// One NDJSON-framed TCP connection. Sends are serialized by an internal
/// mutex (the dispatcher writes to a node from several threads); recv() must
/// be called from a single reader thread. Takes ownership of `fd`.
class NdjsonLink {
 public:
  explicit NdjsonLink(int fd) : fd_(fd) {}
  ~NdjsonLink();
  NdjsonLink(const NdjsonLink&) = delete;
  NdjsonLink& operator=(const NdjsonLink&) = delete;

  enum class RecvStatus {
    Line,       ///< `out` holds a parsed object
    Timeout,    ///< deadline passed with no complete line
    Closed,     ///< peer closed (or the link was shut down locally)
    Malformed,  ///< a line arrived but did not parse as a JSON object
  };

  /// Serialize + send one message under the deadline. Returns false when the
  /// peer is gone or the deadline expired (the link is closed either way —
  /// a transport that cannot make progress is dead).
  bool send(const json::Value& message, const net::Deadline& deadline);

  /// Read the next line. On Malformed the connection stays open but the
  /// caller should treat the peer as broken (one bad line means framing is
  /// lost).
  RecvStatus recv(json::Value& out, const net::Deadline& deadline);

  /// Shut the socket down (wakes a blocked recv with Closed and fails any
  /// later send). Idempotent, safe from any thread. The fd itself is closed
  /// only by the destructor, so a concurrent recv never touches a recycled
  /// descriptor.
  void close();

  bool closed() const { return shut_.load(std::memory_order_acquire); }

 private:
  int fd_ = -1;
  std::atomic<bool> shut_{false};
  std::mutex send_mutex_;
  std::string rx_buffer_;
};

/// Build the {"op":"eval",...} request for ticket `id`. A non-empty
/// `traceparent` asks the node for node-side spans and lets it adopt the
/// dispatch's trace.
json::Value eval_message(std::uint64_t id, const search::Config& config,
                         double deadline_seconds,
                         const std::string& traceparent = {});

/// Build the {"op":"result",...} reply from a completed local evaluation.
json::Value result_message(std::uint64_t id, const robust::SandboxResult& result);

/// Decode a {"op":"result",...} line into the sandbox taxonomy. Missing or
/// unknown outcome strings classify InvalidConfig (the node replied but the
/// reply is unusable), mirroring the process sandbox's malformed-reply rule.
robust::SandboxResult result_from_wire(const json::Value& message);

}  // namespace tunekit::fleet
