#pragma once
// Random-forest regressor with impurity and permutation feature importance.
// Used by the methodology's §IV-B insight step: "feature importance analysis,
// leveraging Random Forest trees" decides which parameters to keep when a
// merged search exceeds the 10-dimension cap.

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "stats/decision_tree.hpp"

namespace tunekit::stats {

struct ForestOptions {
  std::size_t n_trees = 100;
  TreeOptions tree;
  /// Fraction of rows drawn (with replacement) per tree.
  double bootstrap_fraction = 1.0;
  /// Features per split; 0 means d/3 (regression default), capped at d.
  std::size_t max_features = 0;
  std::uint64_t seed = 7;
  /// Worker threads for tree fitting: 1 fits serially (the default), 0 uses
  /// hardware_concurrency(), n uses n. The fitted forest — including
  /// impurity importances — is bit-identical for a fixed seed regardless of
  /// this value: every tree's RNG is pre-split sequentially from the forest
  /// seed before any parallel dispatch, trees land in index order, and
  /// importances are accumulated in that same order.
  std::size_t n_threads = 1;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  void fit(const linalg::Matrix& x, const std::vector<double>& y);

  double predict(const std::vector<double>& features) const;
  std::vector<double> predict_all(const linalg::Matrix& x) const;

  /// R^2 of the forest on a dataset.
  double score(const linalg::Matrix& x, const std::vector<double>& y) const;

  /// Mean impurity-decrease importance per feature, normalized to sum 1
  /// (all-zero if no split ever used any feature).
  std::vector<double> impurity_importance() const;

  /// Permutation importance: mean increase in MSE when one feature column
  /// is shuffled. Normalized to sum 1 over non-negative scores.
  std::vector<double> permutation_importance(const linalg::Matrix& x,
                                             const std::vector<double>& y,
                                             std::size_t n_repeats = 5) const;

  bool fitted() const { return !trees_.empty(); }
  std::size_t n_trees() const { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<RegressionTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace tunekit::stats
