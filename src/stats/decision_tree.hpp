#pragma once
// CART regression tree: variance-reduction splits over a (samples x
// features) matrix. Building block of the random forest used for the
// paper's feature-importance analysis (§IV-B, "leveraging Random Forest
// trees").

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace tunekit::stats {

struct TreeOptions {
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features considered per split; 0 means all features.
  std::size_t max_features = 0;
};

class RegressionTree {
 public:
  explicit RegressionTree(TreeOptions options = {}) : options_(options) {}

  /// Fit on row-indexed samples. `rows` selects the (possibly bootstrapped)
  /// training rows; duplicates allowed. `rng` drives feature subsampling.
  void fit(const linalg::Matrix& x, const std::vector<double>& y,
           const std::vector<std::size_t>& rows, tunekit::Rng& rng);

  /// Fit on all rows.
  void fit(const linalg::Matrix& x, const std::vector<double>& y, tunekit::Rng& rng);

  double predict(const std::vector<double>& features) const;

  /// Impurity-decrease importance per feature (unnormalized: summed
  /// weighted variance reduction at every split on that feature).
  const std::vector<double>& impurity_importance() const { return importance_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    // Internal node when feature != npos; otherwise a leaf with `value`.
    std::size_t feature = npos;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;
    std::size_t n_samples = 0;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t build(const linalg::Matrix& x, const std::vector<double>& y,
                    std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
                    std::size_t depth, tunekit::Rng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace tunekit::stats
