#pragma once
// Classical pairwise orthogonality (interaction) analysis — the expensive
// literature approach (paper §II / [4]) that the sensitivity-based
// inference replaces.
//
// For every parameter pair (i, j) it estimates the mixed effect
//
//   I(i, j) = | f(x + δ_i + δ_j) − f(x + δ_i) − f(x + δ_j) + f(x) |
//
// averaged over V perturbation draws and normalized by |f(x)|. A value near
// zero means the parameters contribute (locally) additively — they can be
// searched separately; a large value flags an interaction.
//
// Cost: O(V · D²) objective evaluations versus the sensitivity analysis'
// O(V · D). bench/ablation_observation_cost quantifies the gap, reproducing
// the paper's core cost argument.

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace tunekit::stats {

struct OrthogonalityOptions {
  /// Perturbation draws per pair.
  std::size_t n_draws = 3;
  /// Perturbation size as a fraction of each parameter's range.
  double step_fraction = 0.25;
  /// Invalid perturbed configurations are skipped.
  bool skip_invalid = true;
};

class OrthogonalityReport {
 public:
  explicit OrthogonalityReport(std::size_t n_params);

  /// Normalized interaction strength of the pair (i, j); symmetric.
  double interaction(std::size_t i, std::size_t j) const;
  void set_interaction(std::size_t i, std::size_t j, double value);

  std::size_t n_params() const { return interactions_.rows(); }

  /// Pairs with interaction >= threshold, strongest first.
  struct Pair {
    std::size_t i;
    std::size_t j;
    double strength;
  };
  std::vector<Pair> interacting_pairs(double threshold) const;

  /// Partition of parameters into additive groups: parameters joined by an
  /// above-threshold interaction end up in the same group (union-find).
  std::vector<std::vector<std::size_t>> additive_groups(double threshold) const;

  /// Objective evaluations consumed.
  std::size_t observations = 0;

 private:
  linalg::Matrix interactions_;
};

class OrthogonalityAnalyzer {
 public:
  explicit OrthogonalityAnalyzer(OrthogonalityOptions options = {})
      : options_(options) {}

  /// Full pairwise analysis around `baseline`. Throws std::invalid_argument
  /// if the baseline is invalid or evaluates to zero.
  OrthogonalityReport analyze(search::Objective& objective,
                              const search::SearchSpace& space,
                              const search::Config& baseline, tunekit::Rng& rng) const;

  /// Evaluations a full analysis will need (upper bound): V * (D² + D)/2 * 4
  /// minus shared corners; exposed so callers can budget ahead.
  std::size_t predicted_observations(std::size_t n_params) const;

 private:
  OrthogonalityOptions options_;
};

}  // namespace tunekit::stats
