#include "stats/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tunekit::stats {

namespace {

struct SplitCandidate {
  std::size_t feature = static_cast<std::size_t>(-1);
  double threshold = 0.0;
  double gain = 0.0;  // weighted variance decrease
  bool valid() const { return feature != static_cast<std::size_t>(-1); }
};

double sum_range(const std::vector<double>& y, const std::vector<std::size_t>& rows,
                 std::size_t begin, std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += y[rows[i]];
  return s;
}

double sq_sum_range(const std::vector<double>& y, const std::vector<std::size_t>& rows,
                    std::size_t begin, std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += y[rows[i]] * y[rows[i]];
  return s;
}

}  // namespace

void RegressionTree::fit(const linalg::Matrix& x, const std::vector<double>& y,
                         const std::vector<std::size_t>& rows, tunekit::Rng& rng) {
  if (x.rows() != y.size()) throw std::invalid_argument("RegressionTree::fit: size mismatch");
  if (rows.empty()) throw std::invalid_argument("RegressionTree::fit: no training rows");
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<std::size_t> work = rows;
  build(x, y, work, 0, work.size(), 0, rng);
}

void RegressionTree::fit(const linalg::Matrix& x, const std::vector<double>& y,
                         tunekit::Rng& rng) {
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit(x, y, rows, rng);
}

std::size_t RegressionTree::build(const linalg::Matrix& x, const std::vector<double>& y,
                                  std::vector<std::size_t>& rows, std::size_t begin,
                                  std::size_t end, std::size_t depth, tunekit::Rng& rng) {
  const std::size_t n = end - begin;
  const double sum = sum_range(y, rows, begin, end);
  const double mean = sum / static_cast<double>(n);

  const std::size_t node_index = nodes_.size();
  nodes_.push_back({});
  nodes_[node_index].value = mean;
  nodes_[node_index].n_samples = n;

  if (depth >= options_.max_depth || n < options_.min_samples_split) return node_index;

  // Parent impurity (biased variance, as CART uses).
  const double sq = sq_sum_range(y, rows, begin, end);
  const double parent_impurity = sq / static_cast<double>(n) - mean * mean;
  if (parent_impurity <= 1e-15) return node_index;

  // Choose the candidate feature subset.
  const std::size_t d = x.cols();
  std::size_t n_features = options_.max_features == 0 ? d : std::min(options_.max_features, d);
  std::vector<std::size_t> features;
  if (n_features == d) {
    features.resize(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(d, n_features);
  }

  SplitCandidate best;
  std::vector<std::pair<double, std::size_t>> sorted(n);  // (feature value, row)
  for (std::size_t f : features) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = rows[begin + i];
      sorted[i] = {x(row, f), row};
    }
    std::sort(sorted.begin(), sorted.end());

    // Prefix scan: evaluate every boundary between distinct feature values.
    double left_sum = 0.0, left_sq = 0.0;
    const double total_sq = sq;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double yi = y[sorted[i].second];
      left_sum += yi;
      left_sq += yi * yi;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double lmean = left_sum / static_cast<double>(nl);
      const double rmean = right_sum / static_cast<double>(nr);
      const double limp = left_sq / static_cast<double>(nl) - lmean * lmean;
      const double rimp = right_sq / static_cast<double>(nr) - rmean * rmean;
      const double weighted =
          (static_cast<double>(nl) * limp + static_cast<double>(nr) * rimp) /
          static_cast<double>(n);
      const double gain = parent_impurity - weighted;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        best.gain = gain;
      }
    }
  }

  if (!best.valid() || best.gain <= 1e-15) return node_index;

  // Partition rows in place around the threshold.
  auto middle = std::partition(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                               rows.begin() + static_cast<std::ptrdiff_t>(end),
                               [&](std::size_t row) {
                                 return x(row, best.feature) <= best.threshold;
                               });
  const auto mid = static_cast<std::size_t>(middle - rows.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate split

  importance_[best.feature] += best.gain * static_cast<double>(n);

  const std::size_t left = build(x, y, rows, begin, mid, depth + 1, rng);
  const std::size_t right = build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double RegressionTree::predict(const std::vector<double>& features) const {
  if (nodes_.empty()) throw std::runtime_error("RegressionTree::predict before fit");
  std::size_t i = 0;
  for (;;) {
    const Node& node = nodes_[i];
    if (node.feature == npos) return node.value;
    if (features.at(node.feature) <= node.threshold) {
      i = node.left;
    } else {
      i = node.right;
    }
  }
}

std::size_t RegressionTree::depth() const {
  if (nodes_.empty()) return 0;
  std::function<std::size_t(std::size_t)> walk = [&](std::size_t i) -> std::size_t {
    const Node& node = nodes_[i];
    if (node.feature == npos) return 1;
    return 1 + std::max(walk(node.left), walk(node.right));
  };
  return walk(0);
}

}  // namespace tunekit::stats
