#pragma once
// Correlation analyses for the methodology's data-insight step. The paper
// uses Pearson correlation to discover linear relationships (e.g. the ~0.6
// correlation between threadblock size and active threadblocks per SM that
// the occupancy constraint induces) and suggests grouping correlated
// parameters in one search.

#include <vector>

#include "linalg/matrix.hpp"

namespace tunekit::stats {

/// Pearson correlation coefficient; returns 0 when either series is
/// constant (no linear relationship measurable).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (Pearson over average-ranked data).
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Column-wise Pearson correlation matrix of a samples x features matrix.
linalg::Matrix pearson_matrix(const linalg::Matrix& samples);

/// Pairs of features whose |pearson| exceeds `threshold`, as (i, j, r).
struct CorrelatedPair {
  std::size_t i;
  std::size_t j;
  double r;
};
std::vector<CorrelatedPair> correlated_pairs(const linalg::Matrix& samples,
                                             double threshold);

}  // namespace tunekit::stats
