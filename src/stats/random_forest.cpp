#include "stats/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace tunekit::stats {

void RandomForest::fit(const linalg::Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("RandomForest::fit: bad training data");
  }
  n_features_ = x.cols();
  trees_.clear();
  trees_.reserve(options_.n_trees);

  TreeOptions tree_opts = options_.tree;
  if (options_.max_features == 0) {
    tree_opts.max_features = std::max<std::size_t>(1, n_features_ / 3);
  } else {
    tree_opts.max_features = std::min(options_.max_features, n_features_);
  }

  tunekit::Rng rng(options_.seed);
  const auto n = x.rows();
  const auto n_draw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(options_.bootstrap_fraction *
                                               static_cast<double>(n))));

  // Determinism under parallelism: every tree's RNG is split off the forest
  // stream sequentially — the exact sequence the serial loop produced — so
  // tree t sees the same randomness no matter which worker fits it or in
  // what order the workers finish.
  std::vector<tunekit::Rng> tree_rngs;
  tree_rngs.reserve(options_.n_trees);
  for (std::size_t t = 0; t < options_.n_trees; ++t) tree_rngs.push_back(rng.split());

  const auto fit_tree = [&](std::size_t t) {
    tunekit::Rng& tree_rng = tree_rngs[t];
    std::vector<std::size_t> rows(n_draw);
    for (auto& r : rows) {
      r = static_cast<std::size_t>(
          tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    RegressionTree tree(tree_opts);
    tree.fit(x, y, rows, tree_rng);
    trees_[t] = std::move(tree);
  };

  trees_.resize(options_.n_trees);
  if (options_.n_threads == 1 || options_.n_trees < 2) {
    for (std::size_t t = 0; t < options_.n_trees; ++t) fit_tree(t);
  } else {
    tunekit::ThreadPool pool(options_.n_threads);
    pool.parallel_for(options_.n_trees, fit_tree);
  }
}

double RandomForest::predict(const std::vector<double>& features) const {
  if (trees_.empty()) throw std::runtime_error("RandomForest::predict before fit");
  double acc = 0.0;
  for (const auto& t : trees_) acc += t.predict(features);
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_all(const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

double RandomForest::score(const linalg::Matrix& x, const std::vector<double>& y) const {
  return r_squared(y, predict_all(x));
}

std::vector<double> RandomForest::impurity_importance() const {
  if (trees_.empty()) throw std::runtime_error("RandomForest: not fitted");
  std::vector<double> acc(n_features_, 0.0);
  for (const auto& t : trees_) {
    const auto& imp = t.impurity_importance();
    for (std::size_t f = 0; f < n_features_; ++f) acc[f] += imp[f];
  }
  double total = 0.0;
  for (double v : acc) total += v;
  if (total > 0.0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

std::vector<double> RandomForest::permutation_importance(const linalg::Matrix& x,
                                                         const std::vector<double>& y,
                                                         std::size_t n_repeats) const {
  if (trees_.empty()) throw std::runtime_error("RandomForest: not fitted");
  if (x.rows() != y.size() || x.rows() < 2) {
    throw std::invalid_argument("RandomForest::permutation_importance: bad data");
  }

  auto mse = [&](const linalg::Matrix& data) {
    double acc = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      const double d = predict(data.row(r)) - y[r];
      acc += d * d;
    }
    return acc / static_cast<double>(data.rows());
  };

  const double base_mse = mse(x);
  tunekit::Rng rng(options_.seed ^ 0xabcdef1234567890ull);
  std::vector<double> scores(n_features_, 0.0);

  for (std::size_t f = 0; f < n_features_; ++f) {
    double acc = 0.0;
    for (std::size_t rep = 0; rep < n_repeats; ++rep) {
      linalg::Matrix shuffled = x;
      std::vector<double> column = x.col(f);
      rng.shuffle(column);
      for (std::size_t r = 0; r < x.rows(); ++r) shuffled(r, f) = column[r];
      acc += mse(shuffled) - base_mse;
    }
    scores[f] = std::max(0.0, acc / static_cast<double>(n_repeats));
  }

  double total = 0.0;
  for (double v : scores) total += v;
  if (total > 0.0) {
    for (double& v : scores) v /= total;
  }
  return scores;
}

}  // namespace tunekit::stats
