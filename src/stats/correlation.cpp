#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tunekit::stats {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("pearson: need two equal-length series of size >= 2");
  }
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
/// Average ranks (ties get the mean of their rank span).
std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> out(v.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}
}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  return pearson(ranks(x), ranks(y));
}

linalg::Matrix pearson_matrix(const linalg::Matrix& samples) {
  const std::size_t d = samples.cols();
  linalg::Matrix corr(d, d, 0.0);
  std::vector<std::vector<double>> cols(d);
  for (std::size_t c = 0; c < d; ++c) cols[c] = samples.col(c);
  for (std::size_t i = 0; i < d; ++i) {
    corr(i, i) = 1.0;
    for (std::size_t j = i + 1; j < d; ++j) {
      const double r = pearson(cols[i], cols[j]);
      corr(i, j) = r;
      corr(j, i) = r;
    }
  }
  return corr;
}

std::vector<CorrelatedPair> correlated_pairs(const linalg::Matrix& samples,
                                             double threshold) {
  const linalg::Matrix corr = pearson_matrix(samples);
  std::vector<CorrelatedPair> out;
  for (std::size_t i = 0; i < corr.rows(); ++i) {
    for (std::size_t j = i + 1; j < corr.cols(); ++j) {
      if (std::abs(corr(i, j)) >= threshold) out.push_back({i, j, corr(i, j)});
    }
  }
  std::sort(out.begin(), out.end(), [](const CorrelatedPair& a, const CorrelatedPair& b) {
    return std::abs(a.r) > std::abs(b.r);
  });
  return out;
}

}  // namespace tunekit::stats
