#pragma once
// Descriptive statistics used across the methodology's data-insight step
// (paper §IV-B) and by the test suite.

#include <cstddef>
#include <vector>

namespace tunekit::stats {

double mean(const std::vector<double>& v);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);
/// Linear-interpolated quantile, q in [0,1].
double quantile(std::vector<double> v, double q);
double median(std::vector<double> v);

/// Coefficient of determination of predictions vs. truth.
double r_squared(const std::vector<double>& truth, const std::vector<double>& pred);

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& v);

/// Harrell's one-in-ten rule (paper §IV-B): a regression-style analysis over
/// `n_predictors` independent variables needs at least 10 observations per
/// predictor to be trustworthy.
bool one_in_ten_ok(std::size_t n_observations, std::size_t n_predictors);
std::size_t one_in_ten_required(std::size_t n_predictors);

}  // namespace tunekit::stats
