#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tunekit::stats {

namespace {
void require_nonempty(const std::vector<double>& v, const char* what) {
  if (v.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& v) {
  require_nonempty(v, "mean");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_value(const std::vector<double>& v) {
  require_nonempty(v, "min_value");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  require_nonempty(v, "max_value");
  return *std::max_element(v.begin(), v.end());
}

double quantile(std::vector<double> v, double q) {
  require_nonempty(v, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return quantile(std::move(v), 0.5); }

double r_squared(const std::vector<double>& truth, const std::vector<double>& pred) {
  if (truth.size() != pred.size() || truth.empty()) {
    throw std::invalid_argument("r_squared: size mismatch or empty");
  }
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Summary summarize(const std::vector<double>& v) {
  require_nonempty(v, "summarize");
  Summary s;
  s.count = v.size();
  s.mean = mean(v);
  s.stddev = stddev(v);
  s.min = min_value(v);
  s.median = median(v);
  s.max = max_value(v);
  return s;
}

bool one_in_ten_ok(std::size_t n_observations, std::size_t n_predictors) {
  return n_observations >= one_in_ten_required(n_predictors);
}

std::size_t one_in_ten_required(std::size_t n_predictors) { return 10 * n_predictors; }

}  // namespace tunekit::stats
