#include "stats/orthogonality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/partition.hpp"

namespace tunekit::stats {

OrthogonalityReport::OrthogonalityReport(std::size_t n_params)
    : interactions_(n_params, n_params, 0.0) {}

double OrthogonalityReport::interaction(std::size_t i, std::size_t j) const {
  return interactions_.at(i, j);
}

void OrthogonalityReport::set_interaction(std::size_t i, std::size_t j, double value) {
  interactions_.at(i, j) = value;
  interactions_.at(j, i) = value;
}

std::vector<OrthogonalityReport::Pair> OrthogonalityReport::interacting_pairs(
    double threshold) const {
  std::vector<Pair> out;
  for (std::size_t i = 0; i < interactions_.rows(); ++i) {
    for (std::size_t j = i + 1; j < interactions_.cols(); ++j) {
      if (interactions_(i, j) >= threshold) out.push_back({i, j, interactions_(i, j)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Pair& a, const Pair& b) { return a.strength > b.strength; });
  return out;
}

std::vector<std::vector<std::size_t>> OrthogonalityReport::additive_groups(
    double threshold) const {
  graph::UnionFind uf(interactions_.rows());
  for (const auto& p : interacting_pairs(threshold)) uf.unite(p.i, p.j);
  return uf.groups();
}

std::size_t OrthogonalityAnalyzer::predicted_observations(std::size_t n_params) const {
  // f(x) once, f(x + δ_i) per draw and parameter, f(x + δ_i + δ_j) per draw
  // and pair.
  const std::size_t pairs = n_params * (n_params - 1) / 2;
  return 1 + options_.n_draws * (n_params + pairs);
}

OrthogonalityReport OrthogonalityAnalyzer::analyze(search::Objective& objective,
                                                   const search::SearchSpace& space,
                                                   const search::Config& baseline,
                                                   tunekit::Rng& rng) const {
  if (!space.is_valid(baseline)) {
    throw std::invalid_argument("OrthogonalityAnalyzer: invalid baseline");
  }
  const std::size_t d = space.size();
  OrthogonalityReport report(d);

  const double f0 = objective.evaluate(baseline);
  report.observations = 1;
  if (f0 == 0.0) {
    throw std::invalid_argument("OrthogonalityAnalyzer: baseline evaluates to zero");
  }

  for (std::size_t draw = 0; draw < std::max<std::size_t>(1, options_.n_draws); ++draw) {
    // One random perturbation per parameter for this draw; sign randomized
    // so the analysis is not one-sided.
    std::vector<double> delta(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      const auto& p = space.param(i);
      const double span = p.hi() - p.lo();
      const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
      delta[i] = sign * options_.step_fraction * span * (0.5 + rng.uniform());
    }

    // Single-parameter corners f(x + δ_i).
    std::vector<double> fi(d, std::numeric_limits<double>::quiet_NaN());
    std::vector<search::Config> xi(d);
    for (std::size_t i = 0; i < d; ++i) {
      search::Config c = baseline;
      c[i] = space.param(i).snap(c[i] + delta[i]);
      if (c[i] == baseline[i]) {
        // Snapped back onto the baseline (e.g. at a range edge): flip.
        c[i] = space.param(i).snap(baseline[i] - delta[i]);
      }
      xi[i] = c;
      if (!space.is_valid(c)) {
        if (!options_.skip_invalid) {
          throw std::runtime_error("OrthogonalityAnalyzer: invalid single perturbation");
        }
        continue;
      }
      fi[i] = objective.evaluate(c);
      ++report.observations;
    }

    // Pair corners f(x + δ_i + δ_j).
    for (std::size_t i = 0; i < d; ++i) {
      if (std::isnan(fi[i])) continue;
      for (std::size_t j = i + 1; j < d; ++j) {
        if (std::isnan(fi[j])) continue;
        search::Config c = xi[i];
        c[j] = xi[j][j];
        if (!space.is_valid(c)) {
          if (!options_.skip_invalid) {
            throw std::runtime_error("OrthogonalityAnalyzer: invalid pair perturbation");
          }
          continue;
        }
        const double fij = objective.evaluate(c);
        ++report.observations;
        const double mixed = std::abs(fij - fi[i] - fi[j] + f0) / std::abs(f0);
        // Average across draws incrementally.
        const double prev = report.interaction(i, j);
        report.set_interaction(
            i, j, prev + (mixed - prev) / static_cast<double>(draw + 1));
      }
    }
  }
  return report;
}

}  // namespace tunekit::stats
