#pragma once
// Sensitivity analysis (paper §IV-B / §IV-C).
//
// One baseline configuration is evaluated, then V individual variations are
// applied to each parameter *in isolation*. The average relative runtime
// variability per (parameter, region)
//
//     s(p, r) = 1/V * Σ_i |(t_base(r) − t_i(r)) / t_base(r)|
//
// is the influence score. Running this against per-routine timings (not just
// the total) is the paper's trick for inferring routine interdependence with
// only O(V·D) observations instead of a full orthogonality analysis.
//
// Two variation modes are supported, matching the paper's two uses:
//  * MultiplicativeLadder — each variation multiplies the previous value by
//    `ladder_factor` (the synthetic-function study: 100 steps of +10%).
//  * ExpertValues — explicit per-parameter variation values (the RT-TDDFT
//    study: 5 expert-suggested variations per parameter).
// Discrete parameters under the ladder walk their level list instead, since
// multiplying a categorical id is meaningless.

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "robust/measure.hpp"
#include "robust/worker_pool.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace tunekit::obs {
class Telemetry;
}

namespace tunekit::stats {

enum class VariationMode { MultiplicativeLadder, ExpertValues };

struct SensitivityOptions {
  VariationMode mode = VariationMode::MultiplicativeLadder;
  /// V: variations per parameter.
  std::size_t n_variations = 5;
  /// Ladder multiplier (1.10 = +10% per step, as in the paper).
  double ladder_factor = 1.10;
  /// Expert-suggested variation values per parameter name (ExpertValues
  /// mode). Parameters missing from the map fall back to the ladder.
  std::map<std::string, std::vector<double>> expert_values;
  /// Invalid variations (constraint violations) are skipped; if every
  /// variation of a parameter is invalid its variability is 0.
  bool skip_invalid = true;

  /// Hardened measurement per observation: the baseline is re-measured
  /// `measure.repeats` times (it anchors every score, so it deserves the most
  /// trustworthy estimate), each variation likewise, and the repeat
  /// dispersion propagates into a per-score standard error. Failed variation
  /// measurements are skipped and counted instead of aborting the analysis.
  /// Defaults reproduce the seed behavior (one bare call per observation).
  robust::MeasureOptions measure;

  /// IsolationMode::Process routes every observation to a sandboxed worker
  /// process (the in-process watchdog deadline then becomes the worker's
  /// SIGKILL deadline). Defaults to Thread — the in-process path.
  robust::IsolationOptions isolation;

  /// Spans ("eval" per baseline/variation measurement) and evaluation
  /// counters (null = disabled, the default).
  obs::Telemetry* telemetry = nullptr;
};

struct SensitivityEntry {
  std::size_t param_index = 0;
  std::string param_name;
  /// Mean relative variability, as a fraction (0.94 == 94%).
  double variability = 0.0;
};

class SensitivityReport {
 public:
  SensitivityReport(std::vector<std::string> regions, std::vector<std::string> params);

  const std::vector<std::string>& regions() const { return regions_; }
  const std::vector<std::string>& param_names() const { return params_; }

  /// Variability score for (region, param) as a fraction.
  double score(const std::string& region, std::size_t param_index) const;
  void set_score(const std::string& region, std::size_t param_index, double value);

  /// Standard error of the score, propagated from the repeat dispersions of
  /// the baseline and variation measurements; 0 when measured once.
  double score_stderr(const std::string& region, std::size_t param_index) const;
  void set_score_stderr(const std::string& region, std::size_t param_index, double value);

  /// Lower confidence bound max(0, score - z * stderr): the influence the
  /// data still supports after measurement noise is discounted. With single
  /// measurements (stderr 0) this is the score itself.
  double lower_bound(const std::string& region, std::size_t param_index, double z) const;

  /// Top-k parameters by variability for one region (descending) — the
  /// paper's Tables II, V, VI rows.
  std::vector<SensitivityEntry> top(const std::string& region, std::size_t k) const;

  /// All parameters whose score on `region` is >= cutoff (fraction).
  std::vector<SensitivityEntry> above_cutoff(const std::string& region,
                                             double cutoff) const;

  /// Total objective evaluations consumed by the analysis (every repeat and
  /// retry counts).
  std::size_t observations = 0;
  /// Variation measurements that failed (crash/timeout/non-finite) and were
  /// skipped; their scores average over the surviving variations only.
  std::size_t failed_observations = 0;

 private:
  std::size_t region_index(const std::string& region) const;

  std::vector<std::string> regions_;
  std::vector<std::string> params_;
  linalg::Matrix scores_;   // regions x params
  linalg::Matrix stderrs_;  // regions x params
};

class SensitivityAnalyzer {
 public:
  explicit SensitivityAnalyzer(SensitivityOptions options = {}) : options_(options) {}

  /// Analyze a region-reporting objective around the given baseline.
  /// Throws std::invalid_argument if the baseline is invalid or a baseline
  /// region time is zero (variability undefined).
  SensitivityReport analyze(search::RegionObjective& objective,
                            const search::SearchSpace& space,
                            const search::Config& baseline) const;

  /// Convenience: analyze a scalar objective (single region "total").
  SensitivityReport analyze_total(search::Objective& objective,
                                  const search::SearchSpace& space,
                                  const search::Config& baseline) const;

  /// The variation values that would be tested for parameter `i` from the
  /// given baseline value (exposed for tests and for reporting).
  std::vector<double> variation_values(const search::ParamSpec& spec,
                                       double baseline_value) const;

 private:
  SensitivityOptions options_;
};

}  // namespace tunekit::stats
