#include "stats/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::stats {

namespace {

/// One instrumented observation: an "eval" span plus started/outcome counters
/// and the eval-seconds histogram. No-op when telemetry is null/disabled.
robust::Measurement measure_observation(const robust::RobustMeasurer& measurer,
                                        search::RegionObjective& objective,
                                        const search::Config& config,
                                        obs::Telemetry* telemetry) {
  obs::ScopedSpan eval_span(telemetry, "eval");
  const bool traced = telemetry != nullptr && telemetry->enabled();
  if (traced) telemetry->metrics().counter(obs::metric::kEvalsStarted).inc();
  robust::Measurement m = measurer.measure_regions(objective, config);
  eval_span.end();
  if (traced) {
    obs::outcome_counter(telemetry->metrics(), robust::to_string(m.outcome)).inc();
    telemetry->metrics()
        .histogram(obs::metric::kEvalSeconds, obs::default_time_buckets())
        .observe(m.seconds);
  }
  return m;
}

}  // namespace

SensitivityReport::SensitivityReport(std::vector<std::string> regions,
                                     std::vector<std::string> params)
    : regions_(std::move(regions)),
      params_(std::move(params)),
      scores_(regions_.size(), params_.size(), 0.0),
      stderrs_(regions_.size(), params_.size(), 0.0) {}

std::size_t SensitivityReport::region_index(const std::string& region) const {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i] == region) return i;
  }
  throw std::out_of_range("SensitivityReport: unknown region '" + region + "'");
}

double SensitivityReport::score(const std::string& region, std::size_t param_index) const {
  return scores_.at(region_index(region), param_index);
}

void SensitivityReport::set_score(const std::string& region, std::size_t param_index,
                                  double value) {
  scores_.at(region_index(region), param_index) = value;
}

double SensitivityReport::score_stderr(const std::string& region,
                                       std::size_t param_index) const {
  return stderrs_.at(region_index(region), param_index);
}

void SensitivityReport::set_score_stderr(const std::string& region,
                                         std::size_t param_index, double value) {
  stderrs_.at(region_index(region), param_index) = value;
}

double SensitivityReport::lower_bound(const std::string& region,
                                      std::size_t param_index, double z) const {
  const std::size_t r = region_index(region);
  return std::max(0.0, scores_.at(r, param_index) - z * stderrs_.at(r, param_index));
}

std::vector<SensitivityEntry> SensitivityReport::top(const std::string& region,
                                                     std::size_t k) const {
  const std::size_t r = region_index(region);
  std::vector<SensitivityEntry> entries;
  entries.reserve(params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    entries.push_back({p, params_[p], scores_(r, p)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.variability > b.variability;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::vector<SensitivityEntry> SensitivityReport::above_cutoff(const std::string& region,
                                                              double cutoff) const {
  const std::size_t r = region_index(region);
  std::vector<SensitivityEntry> entries;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    if (scores_(r, p) >= cutoff) entries.push_back({p, params_[p], scores_(r, p)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.variability > b.variability;
            });
  return entries;
}

std::vector<double> SensitivityAnalyzer::variation_values(const search::ParamSpec& spec,
                                                          double baseline_value) const {
  // Expert-provided values take precedence when present.
  if (options_.mode == VariationMode::ExpertValues) {
    auto it = options_.expert_values.find(spec.name());
    if (it != options_.expert_values.end()) {
      std::vector<double> vals;
      for (double v : it->second) {
        const double s = spec.snap(v);
        if (s != baseline_value) vals.push_back(s);
      }
      return vals;
    }
  }

  const std::size_t v_count = std::max<std::size_t>(1, options_.n_variations);
  std::vector<double> vals;
  vals.reserve(v_count);

  if (spec.cardinality() != 0 && spec.kind() != search::ParamKind::Integer) {
    // Ordinal / categorical: walk the level list, evenly spread, skipping
    // the baseline level.
    const auto& levels = spec.levels();
    std::vector<double> pool;
    for (double l : levels) {
      if (l != baseline_value) pool.push_back(l);
    }
    if (pool.empty()) return vals;
    if (pool.size() <= v_count) return pool;
    for (std::size_t k = 0; k < v_count; ++k) {
      const std::size_t idx = k * (pool.size() - 1) / (v_count > 1 ? v_count - 1 : 1);
      vals.push_back(pool[idx]);
    }
    // Deduplicate while keeping order.
    std::vector<double> dedup;
    for (double v : vals) {
      if (std::find(dedup.begin(), dedup.end(), v) == dedup.end()) dedup.push_back(v);
    }
    return dedup;
  }

  // Real / Integer: multiplicative ladder off the baseline. If the baseline
  // is (near) zero the ladder degenerates, so fall back to a span walk.
  const double eps = 1e-12 * std::max(1.0, std::abs(spec.hi() - spec.lo()));
  if (std::abs(baseline_value) < eps) {
    for (std::size_t k = 1; k <= v_count; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(v_count + 1);
      const double v = spec.snap(spec.lo() + frac * (spec.hi() - spec.lo()));
      if (v != baseline_value) vals.push_back(v);
    }
  } else {
    double v = baseline_value;
    for (std::size_t k = 0; k < v_count; ++k) {
      v *= options_.ladder_factor;
      const double snapped = spec.snap(v);
      if (snapped != baseline_value &&
          (vals.empty() || snapped != vals.back())) {
        vals.push_back(snapped);
      }
    }
  }
  return vals;
}

SensitivityReport SensitivityAnalyzer::analyze(search::RegionObjective& objective,
                                               const search::SearchSpace& space,
                                               const search::Config& baseline) const {
  if (!space.is_valid(baseline)) {
    throw std::invalid_argument("SensitivityAnalyzer: baseline configuration is invalid");
  }
  // Process isolation: observations run in sandboxed worker processes, where
  // the pool's SIGKILL deadline replaces the in-process watchdog (the
  // analysis itself is sequential, so one worker suffices).
  robust::MeasureOptions measure = options_.measure;
  robust::IsolationOptions isolation = options_.isolation;
  if (isolation.telemetry == nullptr) isolation.telemetry = options_.telemetry;
  std::unique_ptr<robust::SandboxedRegionObjective> sandboxed;
  if (auto pool = robust::WorkerPool::create(isolation, 1)) {
    sandboxed = std::make_unique<robust::SandboxedRegionObjective>(
        pool, measure.watchdog.timeout_seconds);
    measure.watchdog.timeout_seconds = std::numeric_limits<double>::infinity();
  }
  search::RegionObjective& measured = sandboxed ? *sandboxed : objective;

  // The baseline anchors every score in the analysis, so it gets the full
  // robust treatment: watchdog, repeats, outlier rejection. If even the
  // re-measured baseline fails there is nothing to normalize against.
  const robust::RobustMeasurer measurer(measure);
  const robust::Measurement base_m =
      measure_observation(measurer, measured, baseline, options_.telemetry);
  if (base_m.outcome != robust::EvalOutcome::Ok) {
    throw std::invalid_argument(
        std::string("SensitivityAnalyzer: baseline measurement failed as ") +
        robust::to_string(base_m.outcome) +
        (base_m.error.empty() ? "" : (": " + base_m.error)));
  }
  const search::RegionTimes& base = base_m.regions;

  std::vector<std::string> regions;
  regions.reserve(base.regions.size() + 1);
  for (const auto& [name, _] : base.regions) regions.push_back(name);
  regions.push_back("total");

  std::vector<std::string> param_names;
  param_names.reserve(space.size());
  for (const auto& p : space.params()) param_names.push_back(p.name());

  SensitivityReport report(regions, param_names);
  report.observations = base_m.n_samples;

  auto base_time = [&](const std::string& region) {
    return region == "total" ? base.total : base.regions.at(region);
  };
  for (const auto& r : regions) {
    if (base_time(r) == 0.0) {
      throw std::invalid_argument("SensitivityAnalyzer: baseline time for region '" + r +
                                  "' is zero; variability undefined");
    }
  }

  // Standard error of a region's measured mean (0 when measured once).
  auto sigma_of = [](const robust::Measurement& m, const std::string& r) {
    if (r == "total") return m.stderr_of_mean;
    auto it = m.region_dispersion.find(r);
    if (it == m.region_dispersion.end()) return 0.0;
    const auto n = static_cast<double>(std::max<std::size_t>(1, m.n_kept()));
    return it->second / std::sqrt(n);
  };

  for (std::size_t p = 0; p < space.size(); ++p) {
    const auto values = variation_values(space.param(p), baseline[p]);
    std::map<std::string, double> acc;
    std::map<std::string, double> var_acc;
    std::size_t used = 0;
    for (double v : values) {
      search::Config varied = baseline;
      varied[p] = v;
      if (!space.is_valid(varied)) {
        if (options_.skip_invalid) continue;
        throw std::runtime_error("SensitivityAnalyzer: invalid variation for '" +
                                 space.param(p).name() + "'");
      }
      const robust::Measurement m =
          measure_observation(measurer, measured, varied, options_.telemetry);
      report.observations += m.n_samples;
      if (m.outcome != robust::EvalOutcome::Ok) {
        // A failed variation is data lost, not an analysis abort: the score
        // averages over the variations that survived.
        ++report.failed_observations;
        log_warn("sensitivity: variation of '", space.param(p).name(), "' failed as ",
                 robust::to_string(m.outcome), "; skipping");
        continue;
      }
      const search::RegionTimes& t = m.regions;
      ++used;
      for (const auto& r : regions) {
        const double tb = base_time(r);
        const double tr = r == "total" ? t.total : t.regions.at(r);
        acc[r] += std::abs((tb - tr) / tb);
        // First-order error propagation of d = (tb - tr)/tb through both
        // measured means: var(d) = (s_r^2 + s_b^2 (tr/tb)^2) / tb^2. The
        // shared baseline makes terms weakly correlated; ignoring that keeps
        // the estimate simple and slightly conservative per-term.
        const double sr = sigma_of(m, r);
        const double sb = sigma_of(base_m, r);
        const double ratio = tr / tb;
        var_acc[r] += (sr * sr + sb * sb * ratio * ratio) / (tb * tb);
      }
    }
    if (used == 0) {
      log_debug("sensitivity: no valid variations for parameter ",
                space.param(p).name());
      continue;
    }
    for (const auto& r : regions) {
      report.set_score(r, p, acc[r] / static_cast<double>(used));
      report.set_score_stderr(r, p,
                              std::sqrt(var_acc[r]) / static_cast<double>(used));
    }
  }
  return report;
}

namespace {
/// Present a scalar objective as a single-region objective.
class TotalOnly final : public search::RegionObjective {
 public:
  explicit TotalOnly(search::Objective& inner) : inner_(inner) {}
  search::RegionTimes evaluate_regions(const search::Config& c) override {
    search::RegionTimes t;
    t.total = inner_.evaluate(c);
    return t;
  }
  search::RegionTimes evaluate_regions_cancellable(
      const search::Config& c, const search::CancelFlag& cancel) override {
    search::RegionTimes t;
    t.total = inner_.evaluate_cancellable(c, cancel);
    return t;
  }
  bool thread_safe() const override { return inner_.thread_safe(); }

 private:
  search::Objective& inner_;
};
}  // namespace

SensitivityReport SensitivityAnalyzer::analyze_total(search::Objective& objective,
                                                     const search::SearchSpace& space,
                                                     const search::Config& baseline) const {
  TotalOnly wrapper(objective);
  return analyze(wrapper, space, baseline);
}

}  // namespace tunekit::stats
