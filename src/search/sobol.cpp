#include "search/sobol.hpp"

#include <stdexcept>

namespace tunekit::search {

namespace {

/// Primitive polynomial + initial direction numbers per dimension
/// (Joe & Kuo style table, dimensions 2..24; dimension 1 is van der Corput).
struct SobolDim {
  unsigned degree;
  unsigned poly;  // coefficients a_1..a_{s-1} packed as bits
  std::uint32_t m[7];
};

constexpr SobolDim kDims[] = {
    {1, 0, {1, 0, 0, 0, 0, 0, 0}},          // d = 2
    {2, 1, {1, 3, 0, 0, 0, 0, 0}},          // d = 3
    {3, 1, {1, 3, 1, 0, 0, 0, 0}},          // d = 4
    {3, 2, {1, 1, 1, 0, 0, 0, 0}},          // d = 5
    {4, 1, {1, 1, 3, 3, 0, 0, 0}},          // d = 6
    {4, 4, {1, 3, 5, 13, 0, 0, 0}},         // d = 7
    {5, 2, {1, 1, 5, 5, 17, 0, 0}},         // d = 8
    {5, 4, {1, 1, 5, 5, 5, 0, 0}},          // d = 9
    {5, 7, {1, 1, 7, 11, 19, 0, 0}},        // d = 10
    {5, 11, {1, 1, 5, 1, 1, 0, 0}},         // d = 11
    {5, 13, {1, 1, 1, 3, 11, 0, 0}},        // d = 12
    {5, 14, {1, 3, 5, 5, 31, 0, 0}},        // d = 13
    {6, 1, {1, 3, 3, 9, 7, 49, 0}},         // d = 14
    {6, 13, {1, 1, 1, 15, 21, 21, 0}},      // d = 15
    {6, 16, {1, 3, 1, 13, 27, 49, 0}},      // d = 16
    {6, 19, {1, 1, 1, 15, 7, 5, 0}},        // d = 17
    {6, 22, {1, 3, 1, 15, 13, 25, 0}},      // d = 18
    {6, 25, {1, 1, 5, 5, 19, 61, 0}},       // d = 19
    {7, 1, {1, 3, 7, 11, 23, 15, 103}},     // d = 20
    {7, 4, {1, 3, 7, 13, 13, 15, 69}},      // d = 21
    {7, 7, {1, 1, 3, 13, 7, 35, 63}},       // d = 22
    {7, 8, {1, 3, 5, 9, 1, 25, 53}},        // d = 23
    {7, 14, {1, 3, 1, 13, 9, 35, 107}},     // d = 24
};

constexpr int kBits = 32;

}  // namespace

SobolSequence::SobolSequence(std::size_t dims, std::uint64_t scramble_seed)
    : dims_(dims) {
  if (dims == 0 || dims > kMaxDims) {
    throw std::invalid_argument("SobolSequence: dims must be in [1, 24]");
  }
  v_.assign(dims, std::vector<std::uint32_t>(kBits, 0));
  state_.assign(dims, 0);
  shift_.assign(dims, 0);

  // Dimension 0: van der Corput in base 2.
  for (int b = 0; b < kBits; ++b) v_[0][b] = 1u << (kBits - 1 - b);

  for (std::size_t d = 1; d < dims; ++d) {
    const SobolDim& def = kDims[d - 1];
    const unsigned s = def.degree;
    for (unsigned k = 0; k < s; ++k) {
      v_[d][k] = def.m[k] << (kBits - 1 - k);
    }
    for (int k = static_cast<int>(s); k < kBits; ++k) {
      std::uint32_t value = v_[d][k - s] ^ (v_[d][k - s] >> s);
      for (unsigned i = 1; i < s; ++i) {
        if ((def.poly >> (s - 1 - i)) & 1u) value ^= v_[d][k - i];
      }
      v_[d][k] = value;
    }
  }

  if (scramble_seed != 0) {
    tunekit::Rng rng(scramble_seed);
    for (auto& mask : shift_) {
      mask = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFll));
    }
  }
}

std::vector<double> SobolSequence::next() {
  std::vector<double> point(dims_);
  if (index_ > 0) {
    // Gray-code update: flip the direction number of the lowest zero bit of
    // index-1.
    std::size_t c = 0;
    std::size_t value = index_ - 1;
    while (value & 1u) {
      value >>= 1;
      ++c;
    }
    for (std::size_t d = 0; d < dims_; ++d) state_[d] ^= v_[d][c];
  }
  for (std::size_t d = 0; d < dims_; ++d) {
    point[d] = static_cast<double>(state_[d] ^ shift_[d]) * 0x1.0p-32;
  }
  ++index_;
  return point;
}

void SobolSequence::skip(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) next();
}

std::vector<Config> SobolSequence::sample(const SearchSpace& space, std::size_t n,
                                          std::uint64_t scramble_seed) {
  SobolSequence seq(space.size(), scramble_seed);
  seq.skip(16);  // drop the degenerate prefix
  std::vector<Config> out;
  out.reserve(n);
  // Generate up to 20x oversampling before falling back to rejection.
  for (std::size_t tries = 0; out.size() < n && tries < 20 * n + 64; ++tries) {
    Config c = space.decode_unit(seq.next());
    if (space.is_valid(c)) {
      out.push_back(std::move(c));
    } else if (space.has_repair()) {
      Config fixed = space.repair(std::move(c));
      if (space.is_valid(fixed)) out.push_back(std::move(fixed));
    }
  }
  tunekit::Rng rng(scramble_seed ^ 0x50b01);
  while (out.size() < n) out.push_back(space.sample_valid(rng));
  return out;
}

}  // namespace tunekit::search
