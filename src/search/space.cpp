#include "search/space.hpp"

#include <cmath>
#include <stdexcept>

namespace tunekit::search {

std::size_t SearchSpace::add(ParamSpec spec) {
  if (has(spec.name())) {
    throw std::invalid_argument("SearchSpace::add: duplicate parameter '" + spec.name() +
                                "'");
  }
  params_.push_back(std::move(spec));
  return params_.size() - 1;
}

void SearchSpace::add_constraint(std::string name,
                                 std::function<bool(const Config&)> predicate) {
  if (!predicate) throw std::invalid_argument("SearchSpace::add_constraint: null predicate");
  constraints_.push_back({std::move(name), std::move(predicate)});
}

std::size_t SearchSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name() == name) return i;
  }
  throw std::out_of_range("SearchSpace: no parameter named '" + name + "'");
}

bool SearchSpace::has(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name() == name) return true;
  }
  return false;
}

Config SearchSpace::defaults() const {
  Config c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) c[i] = params_[i].default_value();
  return c;
}

Config SearchSpace::snap(Config config) const {
  if (config.size() != params_.size()) {
    throw std::invalid_argument("SearchSpace::snap: arity mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) config[i] = params_[i].snap(config[i]);
  return config;
}

bool SearchSpace::is_valid(const Config& config) const {
  return !first_violation(config).has_value();
}

std::optional<std::string> SearchSpace::first_violation(const Config& config) const {
  if (config.size() != params_.size()) return "arity";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].is_valid_value(config[i])) return "range:" + params_[i].name();
  }
  for (const auto& c : constraints_) {
    if (!c.predicate(config)) return c.name;
  }
  return std::nullopt;
}

Config SearchSpace::decode_unit(const std::vector<double>& u) const {
  if (u.size() != params_.size()) {
    throw std::invalid_argument("SearchSpace::decode_unit: arity mismatch");
  }
  Config c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) c[i] = params_[i].from_unit(u[i]);
  return c;
}

std::vector<double> SearchSpace::encode_unit(const Config& config) const {
  if (config.size() != params_.size()) {
    throw std::invalid_argument("SearchSpace::encode_unit: arity mismatch");
  }
  std::vector<double> u(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) u[i] = params_[i].to_unit(config[i]);
  return u;
}

Config SearchSpace::sample(tunekit::Rng& rng) const {
  std::vector<double> u(params_.size());
  for (auto& x : u) x = rng.uniform();
  return decode_unit(u);
}

Config SearchSpace::sample_valid(tunekit::Rng& rng, std::size_t max_tries) const {
  for (std::size_t t = 0; t < max_tries; ++t) {
    Config c = sample(rng);
    if (is_valid(c)) return c;
    if (repair_) {
      Config fixed = repair(std::move(c));
      if (is_valid(fixed)) return fixed;
    }
  }
  throw std::runtime_error(
      "SearchSpace::sample_valid: no valid configuration found; constraints may be "
      "unsatisfiable or too tight for rejection sampling");
}

void SearchSpace::set_repair(std::function<Config(const Config&)> repair) {
  repair_ = std::move(repair);
}

Config SearchSpace::repair(Config config) const {
  if (!repair_) return config;
  return snap(repair_(config));
}

double SearchSpace::log10_cardinality(std::size_t real_resolution) const {
  double acc = 0.0;
  for (const auto& p : params_) {
    const std::size_t card = p.cardinality();
    acc += std::log10(static_cast<double>(card ? card : real_resolution));
  }
  return acc;
}

SearchSpace SearchSpace::subspace(const std::vector<std::size_t>& indices) const {
  SearchSpace sub;
  for (std::size_t idx : indices) {
    if (idx >= params_.size()) throw std::out_of_range("SearchSpace::subspace");
    sub.add(params_[idx]);
  }
  return sub;
}

}  // namespace tunekit::search
