#include "search/eval_db.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/io.hpp"
#include "common/json.hpp"

namespace tunekit::search {

EvalDb::EvalDb(EvalDb&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  evals_ = std::move(other.evals_);
}

EvalDb& EvalDb::operator=(EvalDb&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    evals_ = std::move(other.evals_);
  }
  return *this;
}

void EvalDb::record(Config config, double value, double cost_seconds) {
  record(std::move(config), value, cost_seconds, robust::classify_value(value));
}

void EvalDb::record(Config config, double value, double cost_seconds,
                    robust::EvalOutcome outcome, double dispersion) {
  Evaluation e;
  e.config = std::move(config);
  e.value = value;
  e.cost_seconds = cost_seconds;
  e.outcome = outcome;
  e.dispersion = dispersion;
  record(std::move(e));
}

void EvalDb::record(Evaluation evaluation) {
  std::lock_guard<std::mutex> lock(mutex_);
  evals_.push_back(std::move(evaluation));
}

std::size_t EvalDb::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evals_.size();
}

std::vector<Evaluation> EvalDb::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evals_;
}

std::optional<Evaluation> EvalDb::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<Evaluation> best;
  for (const auto& e : evals_) {
    // Non-finite covers +inf failure sentinels too, not just NaN.
    if (!std::isfinite(e.value)) continue;
    if (!best || e.value < best->value) best = e;
  }
  return best;
}

std::vector<Evaluation> EvalDb::best_k(std::size_t k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Evaluation> sorted;
  sorted.reserve(evals_.size());
  for (const auto& e : evals_) {
    if (std::isfinite(e.value)) sorted.push_back(e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Evaluation& a, const Evaluation& b) { return a.value < b.value; });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<double> EvalDb::best_trajectory() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out;
  out.reserve(evals_.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : evals_) {
    if (std::isfinite(e.value) && e.value < best) best = e.value;
    out.push_back(best);
  }
  return out;
}

std::map<robust::EvalOutcome, std::size_t> EvalDb::outcome_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<robust::EvalOutcome, std::size_t> counts;
  for (const auto& e : evals_) ++counts[e.outcome];
  return counts;
}

void EvalDb::save(const std::string& path, common::Io* io) const {
  json::Array entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& e : evals_) {
      json::Array cfg;
      for (double v : e.config) cfg.emplace_back(v);
      json::Object obj;
      obj["config"] = json::Value(std::move(cfg));
      obj["value"] = json::Value(e.value);
      obj["cost_seconds"] = json::Value(e.cost_seconds);
      // Optional fields (absent in seed-era checkpoints): keep the format id
      // stable so old readers/writers interoperate.
      if (e.outcome != robust::EvalOutcome::Ok) {
        obj["outcome"] = json::Value(std::string(robust::to_string(e.outcome)));
      }
      if (e.dispersion != 0.0) obj["dispersion"] = json::Value(e.dispersion);
      if (e.duration_ms > 0.0) obj["duration_ms"] = json::Value(e.duration_ms);
      if (e.worker_slot >= 0) obj["worker_slot"] = json::Value(e.worker_slot);
      entries.emplace_back(std::move(obj));
    }
  }
  json::Object root;
  root["format"] = json::Value("tunekit-evaldb-v1");
  root["evaluations"] = json::Value(std::move(entries));
  // Atomic replace: a crash mid-save must never corrupt an existing
  // checkpoint, or the crash recovery it exists for would be lost.
  json::save_atomic(path, json::Value(std::move(root)), 2,
                    io != nullptr ? *io : common::real_io());
}

EvalDb EvalDb::load(const std::string& path, const SearchSpace& space) {
  const json::Value root = json::load(path);
  if (!root.contains("format") || root.at("format").as_string() != "tunekit-evaldb-v1") {
    throw std::runtime_error("EvalDb::load: unrecognized checkpoint format in " + path);
  }
  EvalDb db;
  for (const auto& entry : root.at("evaluations").as_array()) {
    const auto& cfg_json = entry.at("config").as_array();
    if (cfg_json.size() != space.size()) {
      throw std::runtime_error("EvalDb::load: config arity mismatch in " + path);
    }
    Config cfg(cfg_json.size());
    for (std::size_t i = 0; i < cfg_json.size(); ++i) {
      cfg[i] = cfg_json[i].is_null() ? std::numeric_limits<double>::quiet_NaN()
                                     : cfg_json[i].as_number();
    }
    const double value = entry.at("value").is_null()
                             ? std::numeric_limits<double>::quiet_NaN()
                             : entry.at("value").as_number();
    robust::EvalOutcome outcome = robust::classify_value(value);
    if (entry.contains("outcome")) {
      outcome = robust::outcome_from_string(entry.at("outcome").as_string());
    }
    Evaluation e;
    e.config = std::move(cfg);
    e.value = value;
    e.cost_seconds = entry.number_or("cost_seconds", 0.0);
    e.outcome = outcome;
    e.dispersion = entry.number_or("dispersion", 0.0);
    // Absent in checkpoints written before the telemetry era; keep defaults.
    e.duration_ms = entry.number_or("duration_ms", 0.0);
    e.worker_slot = static_cast<int>(entry.number_or("worker_slot", -1.0));
    db.record(std::move(e));
  }
  return db;
}

}  // namespace tunekit::search
