#include "search/constraints.hpp"

#include <cmath>
#include <stdexcept>

namespace tunekit::search::constraints {

Predicate product_le(std::vector<std::size_t> indices, double limit) {
  return [indices = std::move(indices), limit](const Config& c) {
    double product = 1.0;
    for (std::size_t i : indices) product *= c.at(i);
    return product <= limit;
  };
}

Predicate sum_le(std::vector<std::size_t> indices, double limit) {
  return [indices = std::move(indices), limit](const Config& c) {
    double sum = 0.0;
    for (std::size_t i : indices) sum += c.at(i);
    return sum <= limit;
  };
}

Predicate divides(std::size_t index, long value) {
  if (value == 0) throw std::invalid_argument("constraints::divides: value is zero");
  return [index, value](const Config& c) {
    const double raw = c.at(index);
    const long divisor = std::lround(raw);
    if (divisor == 0 || std::abs(raw - static_cast<double>(divisor)) > 1e-9) {
      return false;
    }
    return value % divisor == 0;
  };
}

Predicate at_most(std::size_t index, double limit) {
  return [index, limit](const Config& c) { return c.at(index) <= limit; };
}

Predicate le_param(std::size_t a, std::size_t b) {
  return [a, b](const Config& c) { return c.at(a) <= c.at(b); };
}

Predicate all_of(std::vector<Predicate> predicates) {
  return [predicates = std::move(predicates)](const Config& c) {
    for (const auto& p : predicates) {
      if (!p(c)) return false;
    }
    return true;
  };
}

Predicate any_of(std::vector<Predicate> predicates) {
  return [predicates = std::move(predicates)](const Config& c) {
    for (const auto& p : predicates) {
      if (p(c)) return true;
    }
    return predicates.empty();
  };
}

Predicate if_equal(std::size_t index, double value, Predicate then_predicate) {
  return [index, value, then_predicate = std::move(then_predicate)](const Config& c) {
    if (c.at(index) != value) return true;
    return then_predicate(c);
  };
}

}  // namespace tunekit::search::constraints
