#include "search/random_search.hpp"

#include <algorithm>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace tunekit::search {

SearchResult RandomSearch::run(Objective& objective, const SearchSpace& space) const {
  Stopwatch watch;
  SearchResult result;
  result.method = "random";

  tunekit::Rng rng(options_.seed);
  std::vector<Config> configs;
  configs.reserve(options_.max_evals);
  for (std::size_t i = 0; i < options_.max_evals; ++i) {
    configs.push_back(space.sample_valid(rng, options_.max_sample_tries));
  }

  std::vector<double> values(configs.size());
  const std::size_t threads =
      objective.thread_safe() ? std::max<std::size_t>(1, options_.n_threads) : 1;
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(configs.size(),
                      [&](std::size_t i) { values[i] = objective.evaluate(configs[i]); });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      values[i] = objective.evaluate(configs[i]);
    }
  }

  result.values = values;
  result.trajectory.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < result.best_value) {
      result.best_value = values[i];
      result.best_config = configs[i];
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::search
