#include "search/random_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace tunekit::search {

SearchResult RandomSearch::run(Objective& objective, const SearchSpace& space) const {
  Stopwatch watch;
  SearchResult result;
  result.method = "random";

  tunekit::Rng rng(options_.seed);
  std::vector<Config> configs;
  configs.reserve(options_.max_evals);
  for (std::size_t i = 0; i < options_.max_evals; ++i) {
    configs.push_back(space.sample_valid(rng, options_.max_sample_tries));
  }

  std::vector<double> values(configs.size());
  auto eval_one = [&](std::size_t i) {
    try {
      values[i] = objective.evaluate(configs[i]);
    } catch (const std::exception& e) {
      // A crashing sample is recorded as NaN and skipped by the incumbent
      // scan, instead of aborting the whole (possibly parallel) sweep.
      log_warn("random: evaluation failed (", e.what(), "); recording as failure");
      values[i] = std::numeric_limits<double>::quiet_NaN();
    } catch (...) {
      log_warn("random: evaluation threw a non-standard exception; recording as failure");
      values[i] = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const std::size_t threads =
      objective.thread_safe() ? std::max<std::size_t>(1, options_.n_threads) : 1;
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(configs.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) eval_one(i);
  }

  result.values = values;
  result.trajectory.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isfinite(values[i]) && values[i] < result.best_value) {
      result.best_value = values[i];
      result.best_config = configs[i];
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::search
