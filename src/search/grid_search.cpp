#include "search/grid_search.hpp"

#include "common/stopwatch.hpp"
#include "search/samplers.hpp"

namespace tunekit::search {

SearchResult GridSearch::run(Objective& objective, const SearchSpace& space) const {
  Stopwatch watch;
  SearchResult result;
  result.method = "grid";

  const auto grid = grid_configs(space, options_.real_levels, options_.max_grid_points);

  std::size_t stride = 1;
  if (options_.max_evals > 0 && grid.size() > options_.max_evals) {
    stride = (grid.size() + options_.max_evals - 1) / options_.max_evals;
  }

  for (std::size_t i = 0; i < grid.size(); i += stride) {
    const double v = objective.evaluate(grid[i]);
    result.values.push_back(v);
    if (v < result.best_value) {
      result.best_value = v;
      result.best_config = grid[i];
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = result.values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::search
