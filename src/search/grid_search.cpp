#include "search/grid_search.hpp"

#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "search/samplers.hpp"

namespace tunekit::search {

SearchResult GridSearch::run(Objective& objective, const SearchSpace& space) const {
  Stopwatch watch;
  SearchResult result;
  result.method = "grid";

  const auto grid = grid_configs(space, options_.real_levels, options_.max_grid_points);

  std::size_t stride = 1;
  if (options_.max_evals > 0 && grid.size() > options_.max_evals) {
    stride = (grid.size() + options_.max_evals - 1) / options_.max_evals;
  }

  for (std::size_t i = 0; i < grid.size(); i += stride) {
    double v = std::numeric_limits<double>::quiet_NaN();
    try {
      v = objective.evaluate(grid[i]);
    } catch (const std::exception& e) {
      // One crashing cell must not abort the whole enumeration.
      log_warn("grid: evaluation failed (", e.what(), "); recording as failure");
    } catch (...) {
      log_warn("grid: evaluation threw a non-standard exception; recording as failure");
    }
    result.values.push_back(v);
    if (std::isfinite(v) && v < result.best_value) {
      result.best_value = v;
      result.best_config = grid[i];
    }
    result.trajectory.push_back(result.best_value);
  }
  result.evaluations = result.values.size();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace tunekit::search
