#include "search/config.hpp"

#include <sstream>

#include "search/space.hpp"

namespace tunekit::search {

NamedConfig to_named(const SearchSpace& space, const Config& config) {
  NamedConfig named;
  for (std::size_t i = 0; i < space.size() && i < config.size(); ++i) {
    named[space.param(i).name()] = config[i];
  }
  return named;
}

Config from_named(const SearchSpace& space, const NamedConfig& named) {
  Config c = space.defaults();
  for (std::size_t i = 0; i < space.size(); ++i) {
    auto it = named.find(space.param(i).name());
    if (it != named.end()) c[i] = it->second;
  }
  return c;
}

std::string describe(const SearchSpace& space, const Config& config) {
  std::ostringstream os;
  for (std::size_t i = 0; i < space.size() && i < config.size(); ++i) {
    if (i) os << ", ";
    os << space.param(i).name() << '=' << config[i];
  }
  return os.str();
}

}  // namespace tunekit::search
