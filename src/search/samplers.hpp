#pragma once
// Design-of-experiments samplers. BO initialization uses Latin hypercube
// (good low-dimensional stratification with few points); Random Search uses
// uniform sampling; the Halton sequence provides a deterministic
// low-discrepancy alternative for acquisition candidate sets.

#include <vector>

#include "common/rng.hpp"
#include "search/space.hpp"

namespace tunekit::search {

/// `n` uniform unit-cube points in `dim` dimensions.
std::vector<std::vector<double>> uniform_unit(std::size_t n, std::size_t dim,
                                              tunekit::Rng& rng);

/// Latin hypercube design: each dimension is stratified into n cells, one
/// sample per cell, cells permuted independently per dimension.
std::vector<std::vector<double>> latin_hypercube_unit(std::size_t n, std::size_t dim,
                                                      tunekit::Rng& rng);

/// First `n` points of the Halton sequence (skipping `skip` initial points)
/// using the first `dim` primes as bases.
std::vector<std::vector<double>> halton_unit(std::size_t n, std::size_t dim,
                                             std::size_t skip = 20);

/// Decode unit-cube points through the space and keep only valid configs.
/// Tops up with rejection sampling until `n` valid configs are collected
/// (throws if the constraint acceptance rate is pathologically low).
std::vector<Config> sample_valid_configs(const SearchSpace& space, std::size_t n,
                                         tunekit::Rng& rng, bool latin_hypercube = true);

/// Full-factorial grid over discrete levels; Real parameters get
/// `real_levels` equispaced levels. Throws if the grid would exceed
/// `max_points`.
std::vector<Config> grid_configs(const SearchSpace& space, std::size_t real_levels,
                                 std::size_t max_points = 2'000'000);

}  // namespace tunekit::search
