#pragma once
// Reusable constraint builders for common expert rules (paper §IV-A /
// §VI): resource products, divisibility for balanced decompositions, and
// conditional bounds. Each returns a predicate ready for
// SearchSpace::add_constraint, keeping application code declarative.

#include <functional>
#include <vector>

#include "search/config.hpp"

namespace tunekit::search::constraints {

using Predicate = std::function<bool(const Config&)>;

/// Π config[i] for i in `indices` <= limit  (e.g. tb * tb_sm <= threads/SM,
/// or the MPI grid product <= allocated ranks).
Predicate product_le(std::vector<std::size_t> indices, double limit);

/// Σ config[i] <= limit.
Predicate sum_le(std::vector<std::size_t> indices, double limit);

/// config[index] divides `value` (balanced decomposition: only divisors of
/// the band/k-point count avoid idle ranks).
Predicate divides(std::size_t index, long value);

/// config[index] <= limit.
Predicate at_most(std::size_t index, double limit);

/// config[a] <= config[b] (ordering between two parameters).
Predicate le_param(std::size_t a, std::size_t b);

/// p AND q.
Predicate all_of(std::vector<Predicate> predicates);

/// p OR q.
Predicate any_of(std::vector<Predicate> predicates);

/// if config[index] == value then `then_predicate` must hold.
Predicate if_equal(std::size_t index, double value, Predicate then_predicate);

}  // namespace tunekit::search::constraints
