#pragma once
// Tuning-parameter specification.
//
// The paper's searches mix real variables (synthetic functions: x in
// [-50, 50]), integers / power-of-two ordinals (threadblock sizes, unroll
// factors, streams, batches) and categorical choices. Every parameter knows
// how to map to and from the unit interval, which is the coordinate system
// the samplers and the GP operate in.

#include <cstddef>
#include <string>
#include <vector>

namespace tunekit::search {

enum class ParamKind { Real, Integer, Ordinal, Categorical };

const char* to_string(ParamKind kind);

class ParamSpec {
 public:
  /// Continuous parameter on [lo, hi].
  static ParamSpec real(std::string name, double lo, double hi, double default_value);

  /// Integer parameter on [lo, hi] (inclusive).
  static ParamSpec integer(std::string name, std::int64_t lo, std::int64_t hi,
                           std::int64_t default_value);

  /// Ordered numeric levels (e.g. {1,2,4,8,...}); values need not be evenly
  /// spaced but must be strictly increasing.
  static ParamSpec ordinal(std::string name, std::vector<double> levels,
                           double default_value);

  /// Unordered choice among `n` categories, stored as 0..n-1.
  static ParamSpec categorical(std::string name, std::size_t n_categories,
                               std::size_t default_category);

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double default_value() const { return default_; }
  const std::vector<double>& levels() const { return levels_; }

  /// Number of distinct values; 0 for Real (uncountable).
  std::size_t cardinality() const;

  /// True if `v` is one of the representable values (within tolerance for
  /// discrete kinds, inside the range for Real).
  bool is_valid_value(double v) const;

  /// Snap an arbitrary double to the nearest representable value.
  double snap(double v) const;

  /// Decode u in [0,1] to a parameter value (snapped for discrete kinds).
  double from_unit(double u) const;

  /// Encode a parameter value to [0,1]. Discrete kinds map to the center of
  /// their level's cell so that from_unit(to_unit(v)) == v.
  double to_unit(double v) const;

 private:
  ParamSpec() = default;

  std::string name_;
  ParamKind kind_ = ParamKind::Real;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double default_ = 0.0;
  std::vector<double> levels_;  // Ordinal/Categorical only
};

/// Convenience: the power-of-two ladder {base, base*2, ..., <= max}.
std::vector<double> pow2_levels(double base, double max);

}  // namespace tunekit::search
