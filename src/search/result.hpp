#pragma once
// Result type shared by every search driver (random, grid, BO).

#include <limits>
#include <string>
#include <vector>

#include "search/space.hpp"

namespace tunekit::search {

struct SearchResult {
  /// Label set by the driver ("random", "grid", "bo").
  std::string method;

  Config best_config;
  double best_value = std::numeric_limits<double>::infinity();

  /// Objective value of each evaluation in order.
  std::vector<double> values;

  /// Best-so-far after each evaluation (the Figure 6 series).
  std::vector<double> trajectory;

  std::size_t evaluations = 0;
  double seconds = 0.0;

  bool found() const { return evaluations > 0 && best_config.size() > 0; }
};

}  // namespace tunekit::search
