#pragma once
// SearchSpace: an ordered set of ParamSpecs plus named validity constraints.
//
// Constraints model the paper's expert rules, e.g. tb * tb_sm must not
// exceed the architecture's max active threads per SM, and the MPI grid
// product must not exceed the allocated cores. Constraint-aware sampling
// uses rejection with a bounded retry count, mirroring how BO frameworks
// filter invalid candidates.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "search/config.hpp"
#include "search/param.hpp"

namespace tunekit::search {

struct Constraint {
  std::string name;
  std::function<bool(const Config&)> predicate;
};

class SearchSpace {
 public:
  SearchSpace() = default;

  /// Append a parameter; returns its index. Throws on duplicate names.
  std::size_t add(ParamSpec spec);

  /// Register a validity predicate over full configs.
  void add_constraint(std::string name, std::function<bool(const Config&)> predicate);

  /// Optional constraint-repair hook (GPTune-style feasibility projection):
  /// given an invalid configuration, return a nearby candidate that is more
  /// likely to satisfy the constraints (e.g. clamp tb_sm to the residency
  /// limit). Used by the samplers when plain rejection is too wasteful —
  /// heavily constrained spaces like the RT-TDDFT one accept well under 1%
  /// of uniform samples.
  void set_repair(std::function<Config(const Config&)> repair);
  bool has_repair() const { return static_cast<bool>(repair_); }

  /// Apply the repair hook (followed by snapping); returns the input
  /// unchanged if no repair is registered.
  Config repair(Config config) const;

  std::size_t size() const { return params_.size(); }
  const ParamSpec& param(std::size_t i) const { return params_.at(i); }
  const std::vector<ParamSpec>& params() const { return params_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Index of the parameter named `name`; throws std::out_of_range if absent.
  std::size_t index_of(const std::string& name) const;
  bool has(const std::string& name) const;

  /// All-defaults configuration.
  Config defaults() const;

  /// Snap every coordinate to a representable value (does not enforce
  /// constraints).
  Config snap(Config config) const;

  /// True if every coordinate is representable and every constraint holds.
  bool is_valid(const Config& config) const;

  /// Name of the first violated constraint, or nullopt if valid.
  std::optional<std::string> first_violation(const Config& config) const;

  /// Decode a unit-cube point (one coordinate per parameter) to a Config.
  Config decode_unit(const std::vector<double>& u) const;

  /// Encode a Config to the unit cube.
  std::vector<double> encode_unit(const Config& config) const;

  /// Rejection-sample a valid configuration. Throws std::runtime_error if no
  /// valid sample is found within `max_tries`.
  Config sample_valid(tunekit::Rng& rng, std::size_t max_tries = 10000) const;

  /// A uniformly random (not necessarily valid) configuration.
  Config sample(tunekit::Rng& rng) const;

  /// log10 of the number of discrete configurations, treating Real
  /// parameters as `real_resolution` levels. Used for Table IV-style
  /// search-space size reporting.
  double log10_cardinality(std::size_t real_resolution = 100) const;

  /// Sub-space restricted to the given parameter indices (constraints are
  /// not inherited — they are defined over full configs; use an embedding
  /// objective to apply them).
  SearchSpace subspace(const std::vector<std::size_t>& indices) const;

 private:
  std::vector<ParamSpec> params_;
  std::vector<Constraint> constraints_;
  std::function<Config(const Config&)> repair_;
};

}  // namespace tunekit::search
