#pragma once
// Exhaustive / budgeted grid search baseline.
//
// Enumerates the full factorial grid (real parameters discretized); when the
// grid exceeds the evaluation budget a deterministic stride subsamples it so
// coverage stays uniform.

#include <cstddef>

#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::search {

struct GridSearchOptions {
  /// Levels used to discretize Real parameters.
  std::size_t real_levels = 4;
  /// Evaluation budget; 0 means evaluate the whole grid.
  std::size_t max_evals = 0;
  /// Hard cap on grid enumeration size (protects against accidental
  /// combinatorial explosions).
  std::size_t max_grid_points = 2'000'000;
};

class GridSearch {
 public:
  explicit GridSearch(GridSearchOptions options = {}) : options_(options) {}

  SearchResult run(Objective& objective, const SearchSpace& space) const;

 private:
  GridSearchOptions options_;
};

}  // namespace tunekit::search
