#include "search/param.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tunekit::search {

const char* to_string(ParamKind kind) {
  switch (kind) {
    case ParamKind::Real: return "real";
    case ParamKind::Integer: return "integer";
    case ParamKind::Ordinal: return "ordinal";
    case ParamKind::Categorical: return "categorical";
  }
  return "?";
}

ParamSpec ParamSpec::real(std::string name, double lo, double hi, double default_value) {
  if (!(lo < hi)) throw std::invalid_argument("ParamSpec::real: lo >= hi");
  if (default_value < lo || default_value > hi) {
    throw std::invalid_argument("ParamSpec::real: default outside range");
  }
  ParamSpec p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Real;
  p.lo_ = lo;
  p.hi_ = hi;
  p.default_ = default_value;
  return p;
}

ParamSpec ParamSpec::integer(std::string name, std::int64_t lo, std::int64_t hi,
                             std::int64_t default_value) {
  if (lo > hi) throw std::invalid_argument("ParamSpec::integer: lo > hi");
  if (default_value < lo || default_value > hi) {
    throw std::invalid_argument("ParamSpec::integer: default outside range");
  }
  ParamSpec p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Integer;
  p.lo_ = static_cast<double>(lo);
  p.hi_ = static_cast<double>(hi);
  p.default_ = static_cast<double>(default_value);
  return p;
}

ParamSpec ParamSpec::ordinal(std::string name, std::vector<double> levels,
                             double default_value) {
  if (levels.empty()) throw std::invalid_argument("ParamSpec::ordinal: no levels");
  for (std::size_t i = 1; i < levels.size(); ++i) {
    if (!(levels[i] > levels[i - 1])) {
      throw std::invalid_argument("ParamSpec::ordinal: levels must be strictly increasing");
    }
  }
  if (std::find(levels.begin(), levels.end(), default_value) == levels.end()) {
    throw std::invalid_argument("ParamSpec::ordinal: default not a level");
  }
  ParamSpec p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Ordinal;
  p.lo_ = levels.front();
  p.hi_ = levels.back();
  p.default_ = default_value;
  p.levels_ = std::move(levels);
  return p;
}

ParamSpec ParamSpec::categorical(std::string name, std::size_t n_categories,
                                 std::size_t default_category) {
  if (n_categories == 0) throw std::invalid_argument("ParamSpec::categorical: empty");
  if (default_category >= n_categories) {
    throw std::invalid_argument("ParamSpec::categorical: default out of range");
  }
  ParamSpec p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Categorical;
  p.lo_ = 0.0;
  p.hi_ = static_cast<double>(n_categories - 1);
  p.default_ = static_cast<double>(default_category);
  p.levels_.resize(n_categories);
  for (std::size_t i = 0; i < n_categories; ++i) p.levels_[i] = static_cast<double>(i);
  return p;
}

std::size_t ParamSpec::cardinality() const {
  switch (kind_) {
    case ParamKind::Real: return 0;
    case ParamKind::Integer:
      return static_cast<std::size_t>(hi_ - lo_) + 1;
    case ParamKind::Ordinal:
    case ParamKind::Categorical: return levels_.size();
  }
  return 0;
}

bool ParamSpec::is_valid_value(double v) const {
  constexpr double kTol = 1e-9;
  switch (kind_) {
    case ParamKind::Real: return v >= lo_ - kTol && v <= hi_ + kTol;
    case ParamKind::Integer:
      return v >= lo_ - kTol && v <= hi_ + kTol &&
             std::abs(v - std::round(v)) <= kTol;
    case ParamKind::Ordinal:
    case ParamKind::Categorical:
      return std::any_of(levels_.begin(), levels_.end(),
                         [&](double l) { return std::abs(l - v) <= kTol; });
  }
  return false;
}

double ParamSpec::snap(double v) const {
  switch (kind_) {
    case ParamKind::Real: return std::clamp(v, lo_, hi_);
    case ParamKind::Integer: return std::clamp(std::round(v), lo_, hi_);
    case ParamKind::Ordinal:
    case ParamKind::Categorical: {
      double best = levels_.front();
      double best_d = std::abs(v - best);
      for (double l : levels_) {
        const double d = std::abs(v - l);
        if (d < best_d) {
          best = l;
          best_d = d;
        }
      }
      return best;
    }
  }
  return v;
}

double ParamSpec::from_unit(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (kind_) {
    case ParamKind::Real: return lo_ + u * (hi_ - lo_);
    case ParamKind::Integer: {
      const double span = hi_ - lo_ + 1.0;
      double v = lo_ + std::floor(u * span);
      return std::min(v, hi_);
    }
    case ParamKind::Ordinal:
    case ParamKind::Categorical: {
      const auto n = levels_.size();
      auto idx = static_cast<std::size_t>(std::floor(u * static_cast<double>(n)));
      if (idx >= n) idx = n - 1;
      return levels_[idx];
    }
  }
  return u;
}

double ParamSpec::to_unit(double v) const {
  switch (kind_) {
    case ParamKind::Real:
      return hi_ > lo_ ? std::clamp((v - lo_) / (hi_ - lo_), 0.0, 1.0) : 0.0;
    case ParamKind::Integer: {
      const double span = hi_ - lo_ + 1.0;
      const double cell = std::clamp(std::round(v) - lo_, 0.0, hi_ - lo_);
      return (cell + 0.5) / span;
    }
    case ParamKind::Ordinal:
    case ParamKind::Categorical: {
      const double snapped = snap(v);
      std::size_t idx = 0;
      for (std::size_t i = 0; i < levels_.size(); ++i) {
        if (levels_[i] == snapped) {
          idx = i;
          break;
        }
      }
      return (static_cast<double>(idx) + 0.5) / static_cast<double>(levels_.size());
    }
  }
  return 0.0;
}

std::vector<double> pow2_levels(double base, double max) {
  if (base <= 0 || max < base) throw std::invalid_argument("pow2_levels: bad range");
  std::vector<double> out;
  for (double v = base; v <= max; v *= 2.0) out.push_back(v);
  return out;
}

}  // namespace tunekit::search
