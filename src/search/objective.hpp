#pragma once
// Objective abstractions. All objectives are minimized.
//
// RegionTimes carries per-routine timings: the methodology's sensitivity
// analysis needs to know how each parameter variation moved *each routine's*
// runtime, not just the total (paper §IV-C).
//
// SubspaceObjective embeds a lower-dimensional search into a full-space
// objective: searched coordinates come from the sub-config, everything else
// is frozen at a base configuration. This is how the methodology turns one
// 20-dimensional problem into the optimized set of ≤10-dimensional searches.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "search/space.hpp"

namespace tunekit::search {

/// Cooperative-cancellation flag shared between a watchdog and the
/// evaluation it guards. Copies share state; cancel() is visible to every
/// holder. Long-running objectives should poll cancelled() at convenient
/// points and abandon the run (throw, or return any value — a cancelled
/// evaluation's result is discarded by the watchdog).
class CancelFlag {
 public:
  CancelFlag() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-routine timing result of one application evaluation.
struct RegionTimes {
  std::map<std::string, double> regions;
  double total = 0.0;

  double region_or_total(const std::string& name) const {
    if (name.empty() || name == "total") return total;
    auto it = regions.find(name);
    return it == regions.end() ? total : it->second;
  }
};

/// Scalar objective to minimize.
class Objective {
 public:
  virtual ~Objective() = default;

  virtual double evaluate(const Config& config) = 0;

  /// Evaluate under a cooperative-cancellation flag (set by a watchdog when
  /// the call overruns its deadline). The default ignores the flag; override
  /// in objectives that can abort a long run early.
  virtual double evaluate_cancellable(const Config& config, const CancelFlag& cancel) {
    (void)cancel;
    return evaluate(config);
  }

  /// True if evaluate() may be called concurrently from several threads.
  virtual bool thread_safe() const { return false; }
};

/// Objective that also reports per-region timings.
class RegionObjective : public Objective {
 public:
  virtual RegionTimes evaluate_regions(const Config& config) = 0;

  /// Cancellable variant of evaluate_regions; default ignores the flag.
  virtual RegionTimes evaluate_regions_cancellable(const Config& config,
                                                   const CancelFlag& cancel) {
    (void)cancel;
    return evaluate_regions(config);
  }

  double evaluate(const Config& config) override { return evaluate_regions(config).total; }
  double evaluate_cancellable(const Config& config, const CancelFlag& cancel) override {
    return evaluate_regions_cancellable(config, cancel).total;
  }
};

/// Wrap a plain function as an Objective.
class FunctionObjective final : public Objective {
 public:
  explicit FunctionObjective(std::function<double(const Config&)> fn,
                             bool thread_safe = true)
      : fn_(std::move(fn)), thread_safe_(thread_safe) {}

  double evaluate(const Config& config) override { return fn_(config); }
  bool thread_safe() const override { return thread_safe_; }

 private:
  std::function<double(const Config&)> fn_;
  bool thread_safe_;
};

/// Decorator counting evaluations (not thread-safe counting unless the
/// wrapped objective is; the counter itself is plain — wrap usage
/// accordingly in parallel drivers).
class CountingObjective final : public Objective {
 public:
  explicit CountingObjective(Objective& inner) : inner_(inner) {}

  double evaluate(const Config& config) override {
    ++count_;
    return inner_.evaluate(config);
  }
  bool thread_safe() const override { return false; }
  std::size_t count() const { return count_; }

 private:
  Objective& inner_;
  std::size_t count_ = 0;
};

/// Restriction of a full-space objective to a subset of its parameters.
///
/// The subspace inherits a single "parent-valid" constraint that embeds the
/// sub-config into the base configuration and checks the full space's
/// constraints, so samplers and BO only propose sub-configs whose embedding
/// is feasible.
class SubspaceObjective final : public Objective {
 public:
  /// `indices[i]` is the full-space parameter index of subspace coordinate i.
  SubspaceObjective(Objective& inner, const SearchSpace& full_space,
                    std::vector<std::size_t> indices, Config base);

  // The subspace constraint captures `this`; the object must stay put.
  SubspaceObjective(const SubspaceObjective&) = delete;
  SubspaceObjective& operator=(const SubspaceObjective&) = delete;

  const SearchSpace& space() const { return sub_space_; }
  const std::vector<std::size_t>& indices() const { return indices_; }

  /// Write the sub-config coordinates into a copy of the base config.
  Config embed(const Config& sub) const;

  /// Update the frozen coordinates (e.g. after an earlier search in the plan
  /// fixed some parameters to their tuned values).
  void set_base(Config base);
  const Config& base() const { return base_; }

  double evaluate(const Config& sub) override { return inner_.evaluate(embed(sub)); }
  double evaluate_cancellable(const Config& sub, const CancelFlag& cancel) override {
    return inner_.evaluate_cancellable(embed(sub), cancel);
  }
  bool thread_safe() const override { return inner_.thread_safe(); }

 private:
  Objective& inner_;
  const SearchSpace& full_space_;
  std::vector<std::size_t> indices_;
  Config base_;
  SearchSpace sub_space_;
};

}  // namespace tunekit::search
