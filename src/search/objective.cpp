#include "search/objective.hpp"

#include <stdexcept>

namespace tunekit::search {

SubspaceObjective::SubspaceObjective(Objective& inner, const SearchSpace& full_space,
                                     std::vector<std::size_t> indices, Config base)
    : inner_(inner),
      full_space_(full_space),
      indices_(std::move(indices)),
      base_(std::move(base)) {
  if (base_.size() != full_space_.size()) {
    throw std::invalid_argument("SubspaceObjective: base arity mismatch");
  }
  for (std::size_t idx : indices_) {
    if (idx >= full_space_.size()) {
      throw std::out_of_range("SubspaceObjective: index out of range");
    }
  }
  sub_space_ = full_space_.subspace(indices_);
  // Feasibility of the embedded configuration is the subspace's constraint.
  sub_space_.add_constraint("parent-valid", [this](const Config& sub) {
    return full_space_.is_valid(embed(sub));
  });
  // Project the parent's repair hook into the subspace.
  if (full_space_.has_repair()) {
    sub_space_.set_repair([this](const Config& sub) {
      const Config fixed = full_space_.repair(embed(sub));
      Config out(indices_.size());
      for (std::size_t i = 0; i < indices_.size(); ++i) out[i] = fixed[indices_[i]];
      return out;
    });
  }
}

Config SubspaceObjective::embed(const Config& sub) const {
  if (sub.size() != indices_.size()) {
    throw std::invalid_argument("SubspaceObjective::embed: arity mismatch");
  }
  Config full = base_;
  for (std::size_t i = 0; i < indices_.size(); ++i) full[indices_[i]] = sub[i];
  return full;
}

void SubspaceObjective::set_base(Config base) {
  if (base.size() != full_space_.size()) {
    throw std::invalid_argument("SubspaceObjective::set_base: arity mismatch");
  }
  base_ = std::move(base);
}

}  // namespace tunekit::search
