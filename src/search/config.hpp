#pragma once
// A Config is a full assignment of values, one per parameter of a
// SearchSpace, stored positionally. NamedConfig is the map form used in
// reports and checkpoints.

#include <map>
#include <string>
#include <vector>

namespace tunekit::search {

using Config = std::vector<double>;
using NamedConfig = std::map<std::string, double>;

class SearchSpace;  // fwd

/// Positional -> named (requires the owning space for parameter names).
NamedConfig to_named(const SearchSpace& space, const Config& config);

/// Named -> positional; missing names take the parameter default.
Config from_named(const SearchSpace& space, const NamedConfig& named);

/// Human-readable "name=value, ..." rendering.
std::string describe(const SearchSpace& space, const Config& config);

}  // namespace tunekit::search
