#pragma once
// Sobol' low-discrepancy sequence (up to 24 dimensions) with Joe-Kuo style
// direction numbers and optional Owen-style digital scrambling. Better
// space-filling than Latin hypercube for medium sample counts, useful for
// the feature-importance dataset and as an alternative BO initial design.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "search/space.hpp"

namespace tunekit::search {

class SobolSequence {
 public:
  static constexpr std::size_t kMaxDims = 24;

  /// `scramble_seed` != 0 applies a random digital shift (per-dimension
  /// XOR mask), decorrelating repeated designs while preserving the
  /// low-discrepancy structure.
  explicit SobolSequence(std::size_t dims, std::uint64_t scramble_seed = 0);

  std::size_t dims() const { return dims_; }

  /// The next point of the sequence, in [0, 1)^dims.
  std::vector<double> next();

  /// Skip ahead (the first points of an unscrambled sequence are degenerate;
  /// skipping a power of two preserves balance).
  void skip(std::size_t count);

  /// Generate n points through a SearchSpace, keeping valid configs and
  /// topping up with repaired / rejection samples.
  static std::vector<Config> sample(const SearchSpace& space, std::size_t n,
                                    std::uint64_t scramble_seed = 0);

 private:
  std::size_t dims_;
  std::size_t index_ = 0;
  /// Direction numbers: v_[d][b] for bit b of dimension d.
  std::vector<std::vector<std::uint32_t>> v_;
  std::vector<std::uint32_t> state_;
  std::vector<std::uint32_t> shift_;
};

}  // namespace tunekit::search
