#include "search/samplers.hpp"

#include <array>
#include <stdexcept>

namespace tunekit::search {

std::vector<std::vector<double>> uniform_unit(std::size_t n, std::size_t dim,
                                              tunekit::Rng& rng) {
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& x : p) x = rng.uniform();
  }
  return pts;
}

std::vector<std::vector<double>> latin_hypercube_unit(std::size_t n, std::size_t dim,
                                                      tunekit::Rng& rng) {
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  std::vector<std::size_t> perm(n);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) {
      // Jittered position inside stratum perm[i].
      pts[i][d] = (static_cast<double>(perm[i]) + rng.uniform()) / static_cast<double>(n);
    }
  }
  return pts;
}

namespace {
constexpr std::array<int, 32> kPrimes = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31,
                                         37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                                         83, 89, 97, 101, 103, 107, 109, 113, 127, 131};

double radical_inverse(std::size_t i, int base) {
  double f = 1.0, r = 0.0;
  while (i > 0) {
    f /= base;
    r += f * static_cast<double>(i % static_cast<std::size_t>(base));
    i /= static_cast<std::size_t>(base);
  }
  return r;
}
}  // namespace

std::vector<std::vector<double>> halton_unit(std::size_t n, std::size_t dim,
                                             std::size_t skip) {
  if (dim > kPrimes.size()) {
    throw std::invalid_argument("halton_unit: dimension exceeds prime table");
  }
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      pts[i][d] = radical_inverse(i + skip + 1, kPrimes[d]);
    }
  }
  return pts;
}

std::vector<Config> sample_valid_configs(const SearchSpace& space, std::size_t n,
                                         tunekit::Rng& rng, bool latin_hypercube) {
  std::vector<Config> out;
  out.reserve(n);
  const auto unit = latin_hypercube ? latin_hypercube_unit(n, space.size(), rng)
                                    : uniform_unit(n, space.size(), rng);
  for (const auto& u : unit) {
    Config c = space.decode_unit(u);
    if (space.is_valid(c)) {
      out.push_back(std::move(c));
    } else if (space.has_repair()) {
      Config fixed = space.repair(std::move(c));
      if (space.is_valid(fixed)) out.push_back(std::move(fixed));
    }
  }
  // Top up rejected designs with plain rejection sampling.
  while (out.size() < n) {
    out.push_back(space.sample_valid(rng));
  }
  return out;
}

std::vector<Config> grid_configs(const SearchSpace& space, std::size_t real_levels,
                                 std::size_t max_points) {
  if (real_levels < 2) throw std::invalid_argument("grid_configs: real_levels < 2");
  // Collect the level list per dimension.
  std::vector<std::vector<double>> levels(space.size());
  double total = 1.0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.param(i);
    if (p.cardinality() == 0) {
      levels[i].resize(real_levels);
      for (std::size_t k = 0; k < real_levels; ++k) {
        levels[i][k] =
            p.lo() + (p.hi() - p.lo()) * static_cast<double>(k) /
                         static_cast<double>(real_levels - 1);
      }
    } else if (p.kind() == ParamKind::Integer) {
      for (double v = p.lo(); v <= p.hi(); v += 1.0) levels[i].push_back(v);
    } else {
      levels[i] = p.levels();
    }
    total *= static_cast<double>(levels[i].size());
    if (total > static_cast<double>(max_points)) {
      throw std::runtime_error("grid_configs: grid exceeds max_points");
    }
  }

  std::vector<Config> out;
  out.reserve(static_cast<std::size_t>(total));
  Config current(space.size());
  // Odometer enumeration.
  std::vector<std::size_t> idx(space.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < space.size(); ++i) current[i] = levels[i][idx[i]];
    if (space.is_valid(current)) out.push_back(current);
    std::size_t d = 0;
    while (d < space.size()) {
      if (++idx[d] < levels[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == space.size()) break;
  }
  return out;
}

}  // namespace tunekit::search
