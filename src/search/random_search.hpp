#pragma once
// Random Search baseline (Table III's first column pair).
//
// Uniform valid configurations are drawn and evaluated; with a thread pool
// and a thread-safe objective the evaluations run concurrently — the paper
// notes Random Search's "inherent parallelizability" against BO's
// sequentiality, which we reproduce.

#include <cstddef>

#include "common/rng.hpp"
#include "search/objective.hpp"
#include "search/result.hpp"

namespace tunekit::search {

struct RandomSearchOptions {
  std::size_t max_evals = 100;
  std::uint64_t seed = 1;
  /// Worker threads; 1 means sequential. Ignored (forced to 1) when the
  /// objective is not thread-safe.
  std::size_t n_threads = 1;
  std::size_t max_sample_tries = 10000;
};

class RandomSearch {
 public:
  explicit RandomSearch(RandomSearchOptions options = {}) : options_(options) {}

  SearchResult run(Objective& objective, const SearchSpace& space) const;

 private:
  RandomSearchOptions options_;
};

}  // namespace tunekit::search
