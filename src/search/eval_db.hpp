#pragma once
// Evaluation database: every (configuration, objective) pair observed during
// a search, with JSON persistence. This provides the crash-recovery property
// the paper values in GPTune: a search killed mid-way resumes from the
// evaluations already on disk instead of re-running them.

#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "robust/outcome.hpp"
#include "search/space.hpp"

namespace tunekit::common {
class Io;
}

namespace tunekit::search {

struct Evaluation {
  Config config;
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Seconds the evaluation itself took (0 when unknown).
  double cost_seconds = 0.0;
  /// Why the evaluation failed (or Ok). Replaces the old implicit "NaN means
  /// something went wrong" convention: a resumed search or a report can tell
  /// a crash from a timeout from an invalid configuration.
  robust::EvalOutcome outcome = robust::EvalOutcome::Ok;
  /// Robust sigma of the repeated measurement (0 = single measurement).
  double dispersion = 0.0;
  /// Wall-clock milliseconds the whole evaluation round trip took (dispatch
  /// to result, including retries/timeouts) — distinct from cost_seconds,
  /// which is the application-reported runtime. 0 = unknown.
  double duration_ms = 0.0;
  /// Worker-pool slot that ran the evaluation (-1 = in-process or unknown),
  /// so reports can attribute failures to a sick slot.
  int worker_slot = -1;
};

class EvalDb {
 public:
  EvalDb() = default;

  /// Movable (fresh mutex in the destination); not copyable.
  EvalDb(EvalDb&& other) noexcept;
  EvalDb& operator=(EvalDb&& other) noexcept;
  EvalDb(const EvalDb&) = delete;
  EvalDb& operator=(const EvalDb&) = delete;

  /// Thread-safe append. The outcome defaults to a classification of the
  /// value itself (finite -> Ok, otherwise NonFinite).
  void record(Config config, double value, double cost_seconds = 0.0);
  void record(Config config, double value, double cost_seconds,
              robust::EvalOutcome outcome, double dispersion = 0.0);
  /// Full-provenance append (telemetry-era records).
  void record(Evaluation evaluation);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot of all evaluations (copy; safe under concurrent appends).
  std::vector<Evaluation> all() const;

  /// Best (lowest) finite evaluation so far, if any.
  std::optional<Evaluation> best() const;

  /// The k lowest-value evaluations, ascending (non-finite values excluded).
  std::vector<Evaluation> best_k(std::size_t k) const;

  /// How many evaluations ended in each outcome (Ok included).
  std::map<robust::EvalOutcome, std::size_t> outcome_counts() const;

  /// Best-so-far trajectory: entry i is the minimum over evaluations [0..i].
  /// This is the series Figure 6 plots.
  std::vector<double> best_trajectory() const;

  /// Persist to / restore from a JSON checkpoint. The space is used to
  /// validate arity on load; non-conforming entries are rejected with
  /// std::runtime_error. `io` (null = the real filesystem) routes the
  /// checkpoint write through the fault-injection seam.
  void save(const std::string& path, common::Io* io = nullptr) const;
  static EvalDb load(const std::string& path, const SearchSpace& space);

 private:
  mutable std::mutex mutex_;
  std::vector<Evaluation> evals_;
};

}  // namespace tunekit::search
