#include "structure/affinity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "stats/correlation.hpp"

namespace tunekit::structure {

namespace {

json::Value matrix_to_json(const linalg::Matrix& m) {
  json::Array flat;
  flat.reserve(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) flat.push_back(json::Value(m(r, c)));
  }
  return json::Value(std::move(flat));
}

linalg::Matrix matrix_from_json(const json::Value& v, std::size_t dims) {
  linalg::Matrix m(dims, dims);
  const auto& flat = v.as_array();
  if (flat.size() != dims * dims) {
    throw std::invalid_argument("AffinityEstimator: matrix size mismatch");
  }
  std::size_t k = 0;
  for (std::size_t r = 0; r < dims; ++r) {
    for (std::size_t c = 0; c < dims; ++c) m(r, c) = flat[k++].as_number();
  }
  return m;
}

json::Value vector_to_json(const std::vector<double>& v) {
  json::Array arr;
  arr.reserve(v.size());
  for (double d : v) arr.push_back(json::Value(d));
  return json::Value(std::move(arr));
}

std::vector<double> vector_from_json(const json::Value& v, std::size_t dims) {
  const auto& arr = v.as_array();
  if (arr.size() != dims) {
    throw std::invalid_argument("AffinityEstimator: vector size mismatch");
  }
  std::vector<double> out(dims);
  for (std::size_t i = 0; i < dims; ++i) out[i] = arr[i].as_number();
  return out;
}

}  // namespace

AffinityEstimator::AffinityEstimator(std::size_t dims, AffinityOptions options)
    : dims_(dims),
      options_(options),
      ew_x_(dims, 0.0),
      ew_xy_(dims, 0.0),
      ew_xx_(dims, 0.0),
      importance_(dims, 0.0),
      interaction_(dims, dims),
      affinity_(dims, dims) {
  if (dims_ == 0) throw std::invalid_argument("AffinityEstimator: zero dims");
}

void AffinityEstimator::observe(const std::vector<double>& unit, double value) {
  if (unit.size() != dims_) {
    throw std::invalid_argument("AffinityEstimator::observe: dim mismatch");
  }
  archive_units_.push_back(unit);
  archive_values_.push_back(value);
  ++seen_;

  // Warm-start the EWMA as a plain running mean until 1/decay observations,
  // then switch to exponential forgetting so relevance shifts stay visible.
  const double a = std::max(options_.decay, 1.0 / static_cast<double>(seen_));
  ew_y_ += a * (value - ew_y_);
  ew_yy_ += a * (value * value - ew_yy_);
  for (std::size_t i = 0; i < dims_; ++i) {
    const double x = unit[i];
    ew_x_[i] += a * (x - ew_x_[i]);
    ew_xy_[i] += a * (x * value - ew_xy_[i]);
    ew_xx_[i] += a * (x * x - ew_xx_[i]);
  }
}

std::vector<double> AffinityEstimator::selection_scores() const {
  std::vector<double> out(dims_, 0.0);
  const double var_y = std::max(0.0, ew_yy_ - ew_y_ * ew_y_);
  if (var_y <= 1e-12) return out;
  for (std::size_t i = 0; i < dims_; ++i) {
    const double var_x = std::max(0.0, ew_xx_[i] - ew_x_[i] * ew_x_[i]);
    if (var_x <= 1e-12) continue;
    const double cov = ew_xy_[i] - ew_x_[i] * ew_y_;
    out[i] = std::min(1.0, std::abs(cov) / std::sqrt(var_x * var_y));
  }
  return out;
}

void AffinityEstimator::refit(std::size_t min_rows) {
  const std::size_t n = archive_values_.size();
  if (n < std::max<std::size_t>(min_rows, 4)) return;

  linalg::Matrix x(n, dims_);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < dims_; ++c) x(r, c) = archive_units_[r][c];
  }

  stats::RandomForest forest(options_.forest);
  forest.fit(x, archive_values_);
  importance_ = forest.impurity_importance();

  // Pairwise interaction: strip the *whole* additive quadratic model — one
  // ridge regression of y on every dimension's centered linear and quadratic
  // term — then correlate each pair's centered product with that global
  // residual. Under a purely additive objective the residual is noise, so
  // every product correlates ~0; a multiplicative coupling survives into the
  // residual and its own pair's product correlates strongly. Removing all
  // main effects (not just the pair's) matters: another block's unmodeled
  // additive structure would otherwise inflate the residual variance and
  // drown the true pair's signal.
  std::vector<double> mean(dims_, 0.0);
  for (std::size_t c = 0; c < dims_; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) acc += x(r, c);
    mean[c] = acc / static_cast<double>(n);
  }
  double y_mean = 0.0;
  for (double v : archive_values_) y_mean += v;
  y_mean /= static_cast<double>(n);

  // Design: [d_0, d_0^2, d_1, d_1^2, ...] with every column centered, so the
  // intercept is just y_mean.
  const std::size_t p = 2 * dims_;
  linalg::Matrix phi(n, p);
  for (std::size_t c = 0; c < dims_; ++c) {
    double sq_mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double d = x(r, c) - mean[c];
      phi(r, 2 * c) = d;
      phi(r, 2 * c + 1) = d * d;
      sq_mean += d * d;
    }
    sq_mean /= static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) phi(r, 2 * c + 1) -= sq_mean;
  }

  // Ridge-regularized normal equations keep the solve well-posed even when
  // the archive is small or the sampler clustered the rows.
  linalg::Matrix gram(p, p);
  std::vector<double> rhs(p, 0.0);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) acc += phi(r, a) * phi(r, b);
      gram(a, b) = acc;
      gram(b, a) = acc;
    }
    gram(a, a) += 1e-6 * static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      rhs[a] += phi(r, a) * (archive_values_[r] - y_mean);
    }
  }
  const linalg::Matrix chol = linalg::cholesky(gram);
  const std::vector<double> beta = linalg::solve_with_cholesky(chol, rhs);

  std::vector<double> residual(n);
  for (std::size_t r = 0; r < n; ++r) {
    double fit = y_mean;
    for (std::size_t a = 0; a < p; ++a) fit += phi(r, a) * beta[a];
    residual[r] = archive_values_[r] - fit;
  }

  std::vector<double> product(n);
  for (std::size_t i = 0; i < dims_; ++i) {
    interaction_(i, i) = 0.0;
    for (std::size_t j = i + 1; j < dims_; ++j) {
      for (std::size_t r = 0; r < n; ++r) {
        product[r] = phi(r, 2 * i) * phi(r, 2 * j);
      }
      double score = stats::pearson(product, residual);
      if (!std::isfinite(score)) score = 0.0;
      score = std::min(1.0, std::abs(score));
      interaction_(i, j) = score;
      interaction_(j, i) = score;
    }
  }

  combine();
}

void AffinityEstimator::combine() {
  // Per-node evidence normalized to [0, 1] relative to the strongest node
  // so channel weights are comparable across objectives.
  const auto sel = selection_scores();
  double imp_max = 0.0, sel_max = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    imp_max = std::max(imp_max, importance_[i]);
    sel_max = std::max(sel_max, sel[i]);
  }
  for (std::size_t i = 0; i < dims_; ++i) {
    affinity_(i, i) = 0.0;
    for (std::size_t j = i + 1; j < dims_; ++j) {
      const double imp = imp_max > 0.0
                             ? std::min(importance_[i], importance_[j]) / imp_max
                             : 0.0;
      const double inc = sel_max > 0.0 ? std::min(sel[i], sel[j]) / sel_max : 0.0;
      // Interaction is the edge signal; node channels gate it so a strong
      // product-correlation between two irrelevant parameters cannot force
      // a merge on its own.
      const double edge = interaction_(i, j);
      const double score = options_.w_interaction * edge +
                           options_.w_importance * imp * edge +
                           options_.w_incremental * inc * edge;
      affinity_(i, j) = score;
      affinity_(j, i) = score;
    }
  }
}

json::Value AffinityEstimator::to_json() const {
  json::Object obj;
  obj["dims"] = json::Value(dims_);
  obj["seen"] = json::Value(seen_);
  obj["ew_x"] = vector_to_json(ew_x_);
  obj["ew_xy"] = vector_to_json(ew_xy_);
  obj["ew_xx"] = vector_to_json(ew_xx_);
  obj["ew_y"] = json::Value(ew_y_);
  obj["ew_yy"] = json::Value(ew_yy_);
  obj["importance"] = vector_to_json(importance_);
  obj["interaction"] = matrix_to_json(interaction_);
  obj["affinity"] = matrix_to_json(affinity_);
  return json::Value(std::move(obj));
}

void AffinityEstimator::restore(const json::Value& state) {
  if (static_cast<std::size_t>(state.at("dims").as_int()) != dims_) {
    throw std::invalid_argument("AffinityEstimator::restore: dim mismatch");
  }
  seen_ = static_cast<std::size_t>(state.at("seen").as_int());
  ew_x_ = vector_from_json(state.at("ew_x"), dims_);
  ew_xy_ = vector_from_json(state.at("ew_xy"), dims_);
  ew_xx_ = vector_from_json(state.at("ew_xx"), dims_);
  ew_y_ = state.at("ew_y").as_number();
  ew_yy_ = state.at("ew_yy").as_number();
  importance_ = vector_from_json(state.at("importance"), dims_);
  interaction_ = matrix_from_json(state.at("interaction"), dims_);
  affinity_ = matrix_from_json(state.at("affinity"), dims_);
  archive_units_.clear();
  archive_values_.clear();
}

void AffinityEstimator::seed_archive(const std::vector<std::vector<double>>& units,
                                     const std::vector<double>& values) {
  if (units.size() != values.size()) {
    throw std::invalid_argument("AffinityEstimator::seed_archive: size mismatch");
  }
  archive_units_ = units;
  archive_values_ = values;
}

}  // namespace tunekit::structure
