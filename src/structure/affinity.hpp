#pragma once
// Online parameter-affinity estimation: the evidence source behind the
// living partition. The paper fixes its dependency structure after a single
// Phase-1 sensitivity pass; here the structure is re-estimated from the
// accumulated observation stream so a mis-specified initial cut can be
// corrected mid-search (cf. BoGraph's learned structure, PAPERS.md).
//
// Three evidence channels feed a symmetric dims x dims affinity matrix:
//
//   1. Random-forest impurity importance, refreshed on a cadence — a pair
//      can only interact if both endpoints matter at all.
//   2. Pairwise interaction scores: |corr| between the centered product
//      z = (x_i - m_i)(x_j - m_j) and the objective residual after a ridge
//      fit of every dimension's linear + quadratic main effect. A purely
//      additive objective leaves a structureless residual (every pair scores
//      ~0); a multiplicative coupling survives into it and scores high.
//   3. A dynamic-trees-style incremental selection score: exponentially
//      weighted |corr(x_i, y)| updated O(d) at every tell, so relevance
//      shifts are visible between batch refits.
//
// The estimator's full state round-trips through JSON exactly (doubles are
// serialized with %.17g), which is what lets a resumed session restore the
// learned structure byte-for-byte.

#include <cstddef>
#include <vector>

#include "common/json.hpp"
#include "linalg/matrix.hpp"
#include "stats/random_forest.hpp"

namespace tunekit::structure {

struct AffinityOptions {
  /// Channel weights; they need not sum to 1 (the affinity is compared
  /// against a threshold, not normalized).
  double w_importance = 0.25;
  double w_interaction = 0.6;
  double w_incremental = 0.15;
  /// EWMA decay for the incremental selection score (per observation).
  double decay = 0.02;
  /// Forest used for the batch importance refresh.
  stats::ForestOptions forest;
};

class AffinityEstimator {
 public:
  AffinityEstimator(std::size_t dims, AffinityOptions options = {});

  /// O(d) incremental update; call at every tell.
  void observe(const std::vector<double>& unit, double value);

  /// Batch refresh from the full archive: random-forest importance plus
  /// pairwise interaction scores. No-op below `min_rows` observations.
  void refit(std::size_t min_rows = 8);

  std::size_t dims() const { return dims_; }
  /// Observations seen in total, including ones covered by a restored
  /// snapshot (the archive may transiently hold fewer after restore()).
  std::size_t observations() const { return seen_; }

  /// Symmetric affinity matrix; entry (i,j) is the combined evidence that
  /// parameters i and j belong in the same block.
  const linalg::Matrix& affinity() const { return affinity_; }

  /// Latest normalized random-forest importance (all-zero before the first
  /// refit).
  const std::vector<double>& importance() const { return importance_; }

  /// Incremental |corr(x_i, y)| selection scores.
  std::vector<double> selection_scores() const;

  /// Full estimator state (archive excluded — the caller re-seeds it from
  /// its own durable observation log). Round-trips exactly via restore().
  json::Value to_json() const;
  /// Restores counters, incremental moments, importance, interaction and
  /// affinity matrices. The observation archive stays empty; use
  /// seed_archive() to refill it.
  void restore(const json::Value& state);

  /// Refill the batch archive (e.g. from EvalDb after a resume) without
  /// touching the incremental state or counters.
  void seed_archive(const std::vector<std::vector<double>>& units,
                    const std::vector<double>& values);

 private:
  void combine();

  std::size_t dims_;
  AffinityOptions options_;

  // Batch archive (unit-cube rows + objective values).
  std::vector<std::vector<double>> archive_units_;
  std::vector<double> archive_values_;
  /// Observations seen in total, including ones restored via snapshot; the
  /// incremental moments cover exactly this many tells.
  std::size_t seen_ = 0;

  // Incremental EW moments per dimension: mean x, mean y, mean x*y,
  // mean x^2, mean y^2 (y moments shared across dims).
  std::vector<double> ew_x_, ew_xy_, ew_xx_;
  double ew_y_ = 0.0, ew_yy_ = 0.0;

  std::vector<double> importance_;
  linalg::Matrix interaction_;
  linalg::Matrix affinity_;
};

}  // namespace tunekit::structure
