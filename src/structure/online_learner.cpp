#include "structure/online_learner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "graph/partition.hpp"

namespace tunekit::structure {

namespace {

json::Value partition_to_json(const Partition& partition) {
  json::Array blocks;
  blocks.reserve(partition.size());
  for (const auto& block : partition) {
    json::Array members;
    members.reserve(block.size());
    for (std::size_t idx : block) members.push_back(json::Value(idx));
    blocks.push_back(json::Value(std::move(members)));
  }
  return json::Value(std::move(blocks));
}

Partition partition_from_json(const json::Value& v) {
  Partition out;
  for (const auto& block : v.as_array()) {
    std::vector<std::size_t> members;
    for (const auto& idx : block.as_array()) {
      members.push_back(static_cast<std::size_t>(idx.as_int()));
    }
    out.push_back(std::move(members));
  }
  return out;
}

}  // namespace

Partition normalize_partition(Partition partition) {
  for (auto& block : partition) std::sort(block.begin(), block.end());
  std::sort(partition.begin(), partition.end(),
            [](const auto& a, const auto& b) {
              if (a.empty() || b.empty()) return b.empty() && !a.empty();
              return a.front() < b.front();
            });
  partition.erase(std::remove_if(partition.begin(), partition.end(),
                                 [](const auto& b) { return b.empty(); }),
                  partition.end());
  return partition;
}

double cut_mass(const linalg::Matrix& affinity, const Partition& partition) {
  const std::size_t dims = affinity.rows();
  std::vector<std::size_t> block_of(dims, static_cast<std::size_t>(-1));
  for (std::size_t b = 0; b < partition.size(); ++b) {
    for (std::size_t idx : partition[b]) {
      if (idx < dims) block_of[idx] = b;
    }
  }
  double mass = 0.0;
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i + 1; j < dims; ++j) {
      if (block_of[i] != block_of[j]) mass += affinity(i, j);
    }
  }
  return mass;
}

double partition_cost(const linalg::Matrix& affinity, const Partition& partition,
                      double threshold) {
  const std::size_t dims = affinity.rows();
  std::vector<std::size_t> block_of(dims, static_cast<std::size_t>(-1));
  for (std::size_t b = 0; b < partition.size(); ++b) {
    for (std::size_t idx : partition[b]) {
      if (idx < dims) block_of[idx] = b;
    }
  }
  double cost = 0.0;
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i + 1; j < dims; ++j) {
      if (block_of[i] != block_of[j]) {
        cost += std::max(0.0, affinity(i, j) - threshold);
      } else {
        cost += std::max(0.0, threshold - affinity(i, j));
      }
    }
  }
  return cost;
}

bool RepartitionPolicy::consider(const Partition& proposal, double evidence,
                                 std::size_t observations,
                                 std::size_t last_adoption) {
  if (evidence < options_.evidence_threshold) {
    streak_ = 0;
    pending_.reset();
    return false;
  }
  if (pending_ && *pending_ == proposal) {
    ++streak_;
  } else {
    pending_ = proposal;
    streak_ = 1;
  }
  if (streak_ < options_.hysteresis) return false;
  // Cooldown counts from the last adoption (or from the session start).
  if (observations < last_adoption + options_.cooldown) return false;
  streak_ = 0;
  pending_.reset();
  return true;
}

json::Value RepartitionPolicy::to_json() const {
  json::Object obj;
  obj["streak"] = json::Value(streak_);
  obj["pending"] = pending_ ? partition_to_json(*pending_) : json::Value();
  return json::Value(std::move(obj));
}

void RepartitionPolicy::restore(const json::Value& state) {
  streak_ = static_cast<std::size_t>(state.at("streak").as_int());
  const auto& pending = state.at("pending");
  if (pending.is_null()) {
    pending_.reset();
  } else {
    pending_ = partition_from_json(pending);
  }
}

OnlineLearner::OnlineLearner(std::size_t dims, Partition initial,
                             OnlineLearnerOptions options)
    : dims_(dims),
      options_(options),
      partition_(normalize_partition(std::move(initial))),
      estimator_(dims, options.affinity),
      policy_(options.policy) {
  if (partition_.empty()) {
    // Default: every parameter independent; the learner merges from there.
    for (std::size_t i = 0; i < dims_; ++i) partition_.push_back({i});
  }
  json::Object entry;
  entry["kind"] = json::Value("init");
  entry["eval"] = json::Value(std::size_t{0});
  entry["evidence"] = json::Value(0.0);
  entry["blocks"] = json::Value(partition_.size());
  entry["partition"] = partition_to_json(partition_);
  history_.push_back(json::Value(std::move(entry)));
}

std::size_t OnlineLearner::evals_since_repartition() const {
  const std::size_t n = estimator_.observations();
  return n >= last_repartition_eval_ ? n - last_repartition_eval_ : 0;
}

std::size_t OnlineLearner::largest_block() const {
  std::size_t best = 0;
  for (const auto& block : partition_) best = std::max(best, block.size());
  return best;
}

Partition OnlineLearner::propose() const {
  graph::UnionFind uf(dims_);
  const auto& a = estimator_.affinity();
  for (std::size_t i = 0; i < dims_; ++i) {
    for (std::size_t j = i + 1; j < dims_; ++j) {
      if (a(i, j) > options_.affinity_threshold) uf.unite(i, j);
    }
  }
  return uf.groups();
}

bool OnlineLearner::refit_due() const {
  const std::size_t n = estimator_.observations() + 1;
  return options_.cadence != 0 && n >= options_.min_observations &&
         n % options_.cadence == 0;
}

StructureEvent OnlineLearner::observe(const std::vector<double>& unit,
                                      double value) {
  estimator_.observe(unit, value);
  StructureEvent event;

  const std::size_t n = estimator_.observations();
  if (n < options_.min_observations) return event;
  if (options_.cadence == 0 || n % options_.cadence != 0) return event;

  Stopwatch watch;
  estimator_.refit(options_.min_observations);
  ++refits_;
  event.refit = true;

  const Partition proposal = propose();
  const auto& a = estimator_.affinity();
  const double t = options_.affinity_threshold;
  // Total pair tension bounds any partition's cost, so the evidence is the
  // normalized cost reduction in [-1, 1].
  double tension = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    for (std::size_t j = i + 1; j < dims_; ++j) {
      tension += std::abs(a(i, j) - t);
    }
  }
  const double gain =
      partition_cost(a, partition_, t) - partition_cost(a, proposal, t);
  event.evidence = tension > 1e-12 ? gain / tension : 0.0;

  if (proposal != partition_ &&
      policy_.consider(proposal, event.evidence, n, last_repartition_eval_)) {
    partition_ = proposal;
    ++repartitions_;
    last_repartition_eval_ = n;
    event.repartitioned = true;
    json::Object entry;
    entry["kind"] = json::Value("repartition");
    entry["eval"] = json::Value(n);
    entry["evidence"] = json::Value(event.evidence);
    entry["blocks"] = json::Value(partition_.size());
    entry["partition"] = partition_to_json(partition_);
    history_.push_back(json::Value(std::move(entry)));
  }
  event.refit_seconds = watch.seconds();
  return event;
}

json::Value OnlineLearner::snapshot() const {
  json::Object obj;
  obj["dims"] = json::Value(dims_);
  obj["observations"] = json::Value(estimator_.observations());
  obj["refits"] = json::Value(refits_);
  obj["repartitions"] = json::Value(repartitions_);
  obj["last_repartition_eval"] = json::Value(last_repartition_eval_);
  obj["partition"] = partition_to_json(partition_);
  obj["estimator"] = estimator_.to_json();
  obj["policy"] = policy_.to_json();
  obj["history"] = json::Value(history_);
  return json::Value(std::move(obj));
}

void OnlineLearner::restore(const json::Value& state) {
  if (static_cast<std::size_t>(state.at("dims").as_int()) != dims_) {
    throw std::invalid_argument("OnlineLearner::restore: dim mismatch");
  }
  refits_ = static_cast<std::size_t>(state.at("refits").as_int());
  repartitions_ = static_cast<std::size_t>(state.at("repartitions").as_int());
  last_repartition_eval_ =
      static_cast<std::size_t>(state.at("last_repartition_eval").as_int());
  partition_ = partition_from_json(state.at("partition"));
  estimator_.restore(state.at("estimator"));
  policy_.restore(state.at("policy"));
  history_ = state.at("history").as_array();
}

void OnlineLearner::seed_archive(const std::vector<std::vector<double>>& units,
                                 const std::vector<double>& values) {
  estimator_.seed_archive(units, values);
}

}  // namespace tunekit::structure
