#pragma once
// The living partition: an online dependency-structure learner that watches
// the observation stream, maintains a parameter-affinity matrix
// (structure::AffinityEstimator), and proposes a revised coordinate cut via
// the same union-find partitioning the paper's Phase-4 uses for routines.
// A RepartitionPolicy (evidence threshold + hysteresis + cooldown) decides
// when the search should actually adopt the new decomposition, so the
// partition adapts without thrashing.
//
// The learner is engine-agnostic: TuningSession feeds it at tell time and
// journals its snapshots as {"e":"struct"} records; AdditiveBo adopts its
// decisions through a regroup hook; the bench drives it directly.

#include <cstddef>
#include <optional>
#include <vector>

#include "common/json.hpp"
#include "structure/affinity.hpp"

namespace tunekit::structure {

using Partition = std::vector<std::vector<std::size_t>>;

/// Canonical form: every block sorted, blocks ordered by smallest member.
/// Two partitions are equal iff their normalized forms are equal.
Partition normalize_partition(Partition partition);

/// Sum of affinity mass cut by a partition (pairs in different blocks).
double cut_mass(const linalg::Matrix& affinity, const Partition& partition);

/// Correlation-clustering cost of a partition: cut pairs pay their affinity
/// above `threshold`, within-block pairs pay the shortfall below it. The
/// threshold is the indifference point, so — unlike raw cut mass — merging
/// blocks on weak edges *costs* instead of paying, and the trivial one-block
/// partition is not a universal attractor.
double partition_cost(const linalg::Matrix& affinity, const Partition& partition,
                      double threshold);

struct RepartitionPolicyOptions {
  /// Minimum evidence for a re-cut: the fraction of the total pair tension
  /// (sum of |affinity - threshold| over all pairs) the proposal's
  /// partition_cost recovers relative to the current partition's.
  double evidence_threshold = 0.10;
  /// Consecutive refits that must agree on the same proposal.
  std::size_t hysteresis = 2;
  /// Minimum observations between adoptions (and before the first).
  std::size_t cooldown = 20;
};

/// Hysteresis state machine: adopt a proposal only after it has been
/// confirmed by `hysteresis` consecutive refits, each clearing the evidence
/// threshold, and not within `cooldown` observations of the last adoption.
class RepartitionPolicy {
 public:
  explicit RepartitionPolicy(RepartitionPolicyOptions options = {})
      : options_(options) {}

  /// Feed one refit's proposal; returns true when it should be adopted now.
  bool consider(const Partition& proposal, double evidence,
                std::size_t observations, std::size_t last_adoption);

  const RepartitionPolicyOptions& options() const { return options_; }
  std::size_t streak() const { return streak_; }
  const std::optional<Partition>& pending() const { return pending_; }

  json::Value to_json() const;
  void restore(const json::Value& state);

 private:
  RepartitionPolicyOptions options_;
  std::size_t streak_ = 0;
  std::optional<Partition> pending_;
};

struct OnlineLearnerOptions {
  /// Refit the affinity sources every `cadence` observations.
  std::size_t cadence = 20;
  /// Observations required before the first refit.
  std::size_t min_observations = 24;
  /// Affinity above which a pair is united in the proposed cut.
  double affinity_threshold = 0.25;
  AffinityOptions affinity;
  RepartitionPolicyOptions policy;
};

/// What one observe() call did.
struct StructureEvent {
  bool refit = false;
  bool repartitioned = false;
  /// Evidence of the (adopted or rejected) proposal at the last refit.
  double evidence = 0.0;
  /// Seconds spent in the refit (0 when no refit ran).
  double refit_seconds = 0.0;
};

class OnlineLearner {
 public:
  OnlineLearner(std::size_t dims, Partition initial, OnlineLearnerOptions options = {});

  /// Feed one completed observation (unit-cube coordinates + objective
  /// value). May trigger a refit and, through the policy, a repartition.
  StructureEvent observe(const std::vector<double>& unit, double value);

  /// True when the next observe() call will run a batch refit (lets callers
  /// open a telemetry span around it).
  bool refit_due() const;

  std::size_t dims() const { return dims_; }
  const Partition& active_partition() const { return partition_; }
  const AffinityEstimator& estimator() const { return estimator_; }

  std::size_t observations() const { return estimator_.observations(); }
  std::size_t refits() const { return refits_; }
  std::size_t repartitions() const { return repartitions_; }
  std::size_t last_repartition_eval() const { return last_repartition_eval_; }
  std::size_t evals_since_repartition() const;
  std::size_t largest_block() const;

  /// Complete learner state (estimator, policy, counters, partition history).
  /// snapshot() after restore(snapshot()) is byte-for-byte identical.
  json::Value snapshot() const;
  void restore(const json::Value& state);

  /// Refill the estimator's batch archive after restore() (the snapshot
  /// deliberately omits raw observations — the session's EvalDb is the
  /// durable source of truth for those).
  void seed_archive(const std::vector<std::vector<double>>& units,
                    const std::vector<double>& values);

 private:
  Partition propose() const;

  std::size_t dims_;
  OnlineLearnerOptions options_;
  Partition partition_;
  AffinityEstimator estimator_;
  RepartitionPolicy policy_;

  std::size_t refits_ = 0;
  std::size_t repartitions_ = 0;
  std::size_t last_repartition_eval_ = 0;
  /// Adoption log: the initial cut plus one entry per repartition, each with
  /// the eval index and evidence. Survives compaction because it rides
  /// inside every snapshot.
  json::Array history_;
};

}  // namespace tunekit::structure
