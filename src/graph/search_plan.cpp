#include "graph/search_plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/partition.hpp"

namespace tunekit::graph {

std::size_t SearchPlan::n_stages() const {
  std::size_t max_stage = 0;
  for (const auto& s : searches) max_stage = std::max(max_stage, s.stage);
  return searches.empty() ? 0 : max_stage + 1;
}

std::vector<const PlannedSearch*> SearchPlan::stage_searches(std::size_t stage) const {
  std::vector<const PlannedSearch*> out;
  for (const auto& s : searches) {
    if (s.stage == stage) out.push_back(&s);
  }
  return out;
}

std::string SearchPlan::describe(const InfluenceGraph& graph) const {
  std::ostringstream os;
  for (const auto& s : searches) {
    os << "[stage " << s.stage << "] " << s.name << " (" << s.params.size() << " params): ";
    for (std::size_t i = 0; i < s.params.size(); ++i) {
      if (i) os << ", ";
      os << graph.param_name(s.params[i]);
    }
    if (!s.dropped_params.empty()) {
      os << "  [dropped by dim-cap: ";
      for (std::size_t i = 0; i < s.dropped_params.size(); ++i) {
        if (i) os << ", ";
        os << graph.param_name(s.dropped_params[i]);
      }
      os << "]";
    }
    os << "\n";
  }
  if (!untuned_params.empty()) {
    os << "untuned (defaults): ";
    for (std::size_t i = 0; i < untuned_params.size(); ++i) {
      if (i) os << ", ";
      os << graph.param_name(untuned_params[i]);
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Importance used for ranking: explicit score if provided, else the
/// parameter's maximum influence over all routines.
double param_rank_score(const InfluenceGraph& graph, const PlanOptions& opt,
                        std::size_t p) {
  if (!opt.importance.empty()) {
    if (opt.importance.size() != graph.n_params()) {
      throw std::invalid_argument("build_plan: importance arity mismatch");
    }
    return opt.importance[p];
  }
  double m = 0.0;
  for (std::size_t r = 0; r < graph.n_routines(); ++r) {
    m = std::max(m, graph.influence(p, r));
  }
  return m;
}

void sort_unique(std::vector<std::size_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

SearchPlan build_plan(const InfluenceGraph& graph, const PlanOptions& opt) {
  if (!opt.importance.empty() && opt.importance.size() != graph.n_params()) {
    throw std::invalid_argument("build_plan: importance arity mismatch");
  }
  const InfluenceGraph pruned = graph.pruned(opt.cutoff);
  const std::set<std::size_t> outer(opt.outer_routines.begin(), opt.outer_routines.end());

  SearchPlan plan;
  plan.cutoff = opt.cutoff;

  // --- 1. Merge non-outer routines along cross edges. ---
  UnionFind uf(pruned.n_routines());
  for (const auto& e : pruned.cross_edges()) {
    if (outer.count(e.from_routine) || outer.count(e.to_routine)) continue;
    uf.unite(e.from_routine, e.to_routine);
  }
  std::vector<std::vector<std::size_t>> components;
  for (auto& group : uf.groups()) {
    // Drop outer routines (each forms its own singleton set here).
    group.erase(std::remove_if(group.begin(), group.end(),
                               [&](std::size_t r) { return outer.count(r) > 0; }),
                group.end());
    if (!group.empty()) components.push_back(std::move(group));
  }

  // component id per routine (npos for outer).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp_of(pruned.n_routines(), npos);
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (std::size_t r : components[c]) comp_of[r] = c;
  }

  // --- 2/5. Assign owned params to components (shared-kernel rule). ---
  std::vector<std::vector<std::size_t>> comp_params(components.size());
  for (std::size_t p = 0; p < graph.n_params(); ++p) {
    const auto& owners = graph.owners(p);
    if (owners.empty()) continue;  // globals handled below
    // Candidate components through the owners; pick the one whose owning
    // routine shows the highest influence for this parameter.
    std::size_t best_comp = npos;
    double best_influence = -1.0;
    for (std::size_t owner : owners) {
      const std::size_t c = comp_of[owner];
      if (c == npos) continue;
      const double infl = graph.influence(p, owner);
      if (infl > best_influence) {
        best_influence = infl;
        best_comp = c;
      }
    }
    if (best_comp != npos) comp_params[best_comp].push_back(p);
  }

  // --- 3. Classify global parameters. ---
  std::vector<std::size_t> shared_globals;     // stage-0 search on outer region
  std::vector<std::size_t> structure_globals;  // outer-only influence
  std::map<std::size_t, std::vector<std::size_t>> component_globals;
  std::vector<std::size_t> untuned;

  for (std::size_t p = 0; p < graph.n_params(); ++p) {
    if (!graph.is_global(p)) continue;
    std::set<std::size_t> touched_components;
    bool touches_outer = false;
    for (std::size_t r = 0; r < pruned.n_routines(); ++r) {
      if (pruned.influence(p, r) <= 0.0) continue;
      if (outer.count(r)) {
        touches_outer = true;
      } else if (comp_of[r] != npos) {
        touched_components.insert(comp_of[r]);
      }
    }
    if (touched_components.size() >= 2 || (!touched_components.empty() && touches_outer)) {
      shared_globals.push_back(p);
    } else if (touched_components.size() == 1) {
      component_globals[*touched_components.begin()].push_back(p);
    } else if (touches_outer) {
      structure_globals.push_back(p);
    } else {
      untuned.push_back(p);
    }
  }

  for (const auto& [c, globals] : component_globals) {
    for (std::size_t p : globals) comp_params[c].push_back(p);
  }

  // --- Bound groups: pull every member into the member's best search. ---
  // Search "buckets" at this point: shared_globals, structure_globals, each
  // comp_params, untuned. For each bound group, find the bucket holding the
  // highest-ranked member and move all members there.
  auto remove_from = [](std::vector<std::size_t>& v, std::size_t p) {
    v.erase(std::remove(v.begin(), v.end(), p), v.end());
  };
  struct BucketRef {
    std::vector<std::size_t>* vec;
  };
  std::vector<std::string> structure_names;  // names for structure searches
  for (const auto& bg : opt.bound_groups) {
    if (bg.params.empty()) continue;
    // Locate each member's bucket.
    std::vector<std::vector<std::size_t>*> buckets;
    buckets.push_back(&shared_globals);
    buckets.push_back(&structure_globals);
    for (auto& cp : comp_params) buckets.push_back(&cp);
    buckets.push_back(&untuned);

    auto bucket_of = [&](std::size_t p) -> std::vector<std::size_t>* {
      for (auto* b : buckets) {
        if (std::find(b->begin(), b->end(), p) != b->end()) return b;
      }
      return nullptr;
    };

    // Highest-ranked member decides the destination (untuned can never be
    // the destination unless every member is untuned).
    std::vector<std::size_t>* dest = nullptr;
    double best_rank = -1.0;
    for (std::size_t p : bg.params) {
      auto* b = bucket_of(p);
      if (b == nullptr || b == &untuned) continue;
      const double rank = param_rank_score(graph, opt, p);
      if (rank > best_rank) {
        best_rank = rank;
        dest = b;
      }
    }
    if (dest == nullptr) continue;  // whole group untuned
    for (std::size_t p : bg.params) {
      auto* b = bucket_of(p);
      if (b == dest) continue;
      if (b != nullptr) remove_from(*b, p);
      dest->push_back(p);
    }
    if (dest == &structure_globals) structure_names.push_back(bg.name);
  }

  // --- Emit searches with stages and dim caps. ---
  const std::string outer_region_name =
      outer.empty() ? std::string() : graph.routine_name(*outer.begin());

  auto apply_dim_cap = [&](PlannedSearch& s) {
    if (s.params.size() <= opt.max_dims) return;
    std::stable_sort(s.params.begin(), s.params.end(), [&](std::size_t a, std::size_t b) {
      return param_rank_score(graph, opt, a) > param_rank_score(graph, opt, b);
    });
    s.dropped_params.assign(s.params.begin() + static_cast<std::ptrdiff_t>(opt.max_dims),
                            s.params.end());
    s.params.resize(opt.max_dims);
  };

  // A stage-0/1 search whose parameter set matches a bound group inherits
  // that group's display name.
  auto bound_name_for = [&](const std::vector<std::size_t>& params,
                            const std::string& fallback) {
    std::set<std::size_t> set_params(params.begin(), params.end());
    for (const auto& bg : opt.bound_groups) {
      if (std::set<std::size_t>(bg.params.begin(), bg.params.end()) == set_params) {
        return bg.name;
      }
    }
    return fallback;
  };

  if (!shared_globals.empty()) {
    PlannedSearch s;
    s.name = "SharedGlobals";
    s.kind = SearchStageKind::SharedGlobal;
    s.stage = 0;
    s.params = shared_globals;
    sort_unique(s.params);
    s.name = bound_name_for(s.params, s.name);
    if (!outer_region_name.empty()) s.objective_regions.push_back(outer_region_name);
    apply_dim_cap(s);
    plan.searches.push_back(std::move(s));
  }

  if (!structure_globals.empty()) {
    PlannedSearch s;
    s.name = structure_names.empty() ? "Structure" : structure_names.front();
    s.kind = SearchStageKind::Structure;
    s.stage = 1;
    s.params = structure_globals;
    sort_unique(s.params);
    s.name = bound_name_for(s.params, s.name);
    if (!outer_region_name.empty()) s.objective_regions.push_back(outer_region_name);
    apply_dim_cap(s);
    plan.searches.push_back(std::move(s));
  }

  const std::size_t group_stage = plan.searches.empty() ? 0 : 2;
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (comp_params[c].empty()) continue;
    PlannedSearch s;
    std::ostringstream name;
    for (std::size_t i = 0; i < components[c].size(); ++i) {
      if (i) name << "+";
      name << graph.routine_name(components[c][i]);
    }
    s.name = name.str();
    s.kind = SearchStageKind::RoutineGroup;
    s.stage = group_stage;
    s.routines = components[c];
    s.params = comp_params[c];
    sort_unique(s.params);
    for (std::size_t r : components[c]) s.objective_regions.push_back(graph.routine_name(r));
    apply_dim_cap(s);
    plan.searches.push_back(std::move(s));
  }

  // --- Untuned report: anything not in any search. ---
  std::set<std::size_t> tuned;
  for (const auto& s : plan.searches) {
    for (std::size_t p : s.params) tuned.insert(p);
  }
  for (std::size_t p = 0; p < graph.n_params(); ++p) {
    if (!tuned.count(p)) plan.untuned_params.push_back(p);
  }
  return plan;
}

}  // namespace tunekit::graph
