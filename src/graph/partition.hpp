#pragma once
// Union-find and the routine-partition step: routines connected by
// above-cutoff cross influences are merged into one joint search group
// (paper §IV-D, "routines that are linked to others by external parameters
// must be explored together").

#include <cstddef>
#include <vector>

#include "graph/influence_graph.hpp"

namespace tunekit::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x);
  /// Returns true if the two sets were merged (false if already united).
  bool unite(std::size_t a, std::size_t b);
  bool connected(std::size_t a, std::size_t b);
  std::size_t n_sets() const { return n_sets_; }

  /// Members grouped by set, each group sorted, groups ordered by smallest
  /// member.
  std::vector<std::vector<std::size_t>> groups();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::size_t n_sets_;
};

/// Merge routines along the cross edges of an (already pruned) influence
/// graph. Each returned group is a set of routine indices to be tuned
/// jointly; singleton groups stay independent.
std::vector<std::vector<std::size_t>> merge_routines(const InfluenceGraph& pruned);

}  // namespace tunekit::graph
