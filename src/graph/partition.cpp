#include "graph/partition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace tunekit::graph {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0), n_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  if (x >= parent_.size()) throw std::out_of_range("UnionFind::find");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --n_sets_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

std::vector<std::vector<std::size_t>> UnionFind::groups() {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < parent_.size(); ++i) by_root[find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> out;
  out.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

std::vector<std::vector<std::size_t>> merge_routines(const InfluenceGraph& pruned) {
  UnionFind uf(pruned.n_routines());
  for (const auto& e : pruned.cross_edges()) {
    uf.unite(e.from_routine, e.to_routine);
  }
  return uf.groups();
}

}  // namespace tunekit::graph
