#pragma once
// Search-plan synthesis: turns a pruned influence graph into the "ultimate
// set of tuning searches" (paper §IV-D and Table VII).
//
// Rules implemented (the paper's five premises):
//  1. Routines connected by above-cutoff cross influences merge into one
//     joint search; unconnected routines stay independent.
//  2. Global (application-level) parameters influencing several routine
//     groups — or the enclosing outer region — are tuned *first* in a
//     stage-0 search against the outer region's runtime, because a single
//     uniform value must serve every kernel (nbatches/nstreams in the
//     paper).
//  3. Global parameters influencing only the outer region form their own
//     structure search (the MPI-grid triple).
//  4. Every search is capped at `max_dims` dimensions; excess parameters are
//     dropped by ascending importance and keep their defaults.
//  5. A parameter owned by routines that land in different groups (a shared
//     kernel such as cuZcopy) is tuned only in the group where its owning
//     routine shows the highest influence.

#include <string>
#include <vector>

#include "graph/influence_graph.hpp"

namespace tunekit::graph {

enum class SearchStageKind { SharedGlobal, Structure, RoutineGroup };

struct PlannedSearch {
  std::string name;
  SearchStageKind kind = SearchStageKind::RoutineGroup;
  /// Execution stage; lower stages run first, searches within a stage are
  /// independent and may run in parallel.
  std::size_t stage = 0;
  /// Routine indices covered (empty for global/structure searches).
  std::vector<std::size_t> routines;
  /// Parameter indices tuned by this search.
  std::vector<std::size_t> params;
  /// Parameters that belonged here but were dropped by the dimension cap.
  std::vector<std::size_t> dropped_params;
  /// Region names whose summed runtime is this search's objective; empty
  /// means the application total.
  std::vector<std::string> objective_regions;
};

struct SearchPlan {
  std::vector<PlannedSearch> searches;
  /// Parameters tuned by no search (keep defaults).
  std::vector<std::size_t> untuned_params;
  double cutoff = 0.0;

  /// Number of stages (max stage + 1).
  std::size_t n_stages() const;
  /// Searches of one stage, in declaration order.
  std::vector<const PlannedSearch*> stage_searches(std::size_t stage) const;
  /// Table VII-style rendering.
  std::string describe(const InfluenceGraph& graph) const;
};

/// Named set of parameters that must always travel in the same search
/// (e.g. the MPI grid triple): if any member is tuned, all members join it.
struct BoundGroup {
  std::string name;
  std::vector<std::size_t> params;
};

struct PlanOptions {
  /// Influence cut-off (fraction): 0.25 in the synthetic study, 0.10 for
  /// RT-TDDFT.
  double cutoff = 0.10;
  /// Dimension cap per search (paper: 10).
  std::size_t max_dims = 10;
  /// Per-parameter importance for dim-cap ranking (feature importance from
  /// §IV-B); empty = use each parameter's maximum influence instead.
  std::vector<double> importance;
  /// Routines treated as enclosing regions: excluded from merging, used as
  /// stage-0 objectives (e.g. "SlaterDet").
  std::vector<std::size_t> outer_routines;
  /// Structurally bound parameter sets (e.g. {"MPI Grid", {nstb,nkpb,nspb}}).
  std::vector<BoundGroup> bound_groups;
};

SearchPlan build_plan(const InfluenceGraph& graph, const PlanOptions& options);

}  // namespace tunekit::graph
