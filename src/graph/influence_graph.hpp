#pragma once
// Influence graph (paper §IV-C): routines are vertices; an edge records how
// strongly a parameter's variation moves a routine's runtime. Parameters are
// *owned* by the routine(s) whose code they configure (a kernel used by two
// regions — cuZcopy in Groups 1 and 3 — has two owners); parameters owned by
// no routine (MPI grid, nbatches, nstreams) are "global"/application-level.
//
// A cross edge — a parameter owned by routine A influencing routine B above
// the cut-off — is the paper's signal that A and B must be tuned jointly.

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace tunekit::graph {

class InfluenceGraph {
 public:
  InfluenceGraph(std::vector<std::string> routine_names,
                 std::vector<std::string> param_names);

  std::size_t n_routines() const { return routines_.size(); }
  std::size_t n_params() const { return params_.size(); }
  const std::string& routine_name(std::size_t r) const { return routines_.at(r); }
  const std::string& param_name(std::size_t p) const { return params_.at(p); }
  std::size_t routine_index(const std::string& name) const;
  std::size_t param_index(const std::string& name) const;

  /// Declare that routine `r` owns parameter `p` (multiple owners allowed).
  void add_owner(std::size_t p, std::size_t r);
  bool is_owned_by(std::size_t p, std::size_t r) const;
  /// True if the parameter has no owning routine (application-level).
  bool is_global(std::size_t p) const;
  const std::vector<std::size_t>& owners(std::size_t p) const;

  /// Influence score (variability fraction) of parameter p on routine r.
  void set_influence(std::size_t p, std::size_t r, double weight);
  double influence(std::size_t p, std::size_t r) const;

  /// Copy with every influence below `cutoff` zeroed — the edge-pruning
  /// mechanism (25% for the synthetic study, 10% for RT-TDDFT).
  InfluenceGraph pruned(double cutoff) const;

  struct CrossEdge {
    std::size_t param;
    std::size_t from_routine;  // an owner of `param`
    std::size_t to_routine;    // influenced non-owner
    double weight;
  };
  /// All owner->other-routine influences with weight > 0 (call on a pruned
  /// graph to get only above-cutoff interdependencies).
  std::vector<CrossEdge> cross_edges() const;

  struct GlobalEdge {
    std::size_t param;
    std::size_t routine;
    double weight;
  };
  /// Influences of global parameters with weight > 0.
  std::vector<GlobalEdge> global_edges() const;

  /// Graphviz rendering (Figure 2 of the paper).
  std::string to_dot() const;

 private:
  std::vector<std::string> routines_;
  std::vector<std::string> params_;
  std::vector<std::vector<std::size_t>> owners_;  // per param
  linalg::Matrix influence_;                      // params x routines
};

}  // namespace tunekit::graph
