#include "graph/influence_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tunekit::graph {

InfluenceGraph::InfluenceGraph(std::vector<std::string> routine_names,
                               std::vector<std::string> param_names)
    : routines_(std::move(routine_names)),
      params_(std::move(param_names)),
      owners_(params_.size()),
      influence_(params_.size(), routines_.size(), 0.0) {
  if (routines_.empty()) throw std::invalid_argument("InfluenceGraph: no routines");
  if (params_.empty()) throw std::invalid_argument("InfluenceGraph: no params");
}

std::size_t InfluenceGraph::routine_index(const std::string& name) const {
  for (std::size_t i = 0; i < routines_.size(); ++i) {
    if (routines_[i] == name) return i;
  }
  throw std::out_of_range("InfluenceGraph: unknown routine '" + name + "'");
}

std::size_t InfluenceGraph::param_index(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i] == name) return i;
  }
  throw std::out_of_range("InfluenceGraph: unknown param '" + name + "'");
}

void InfluenceGraph::add_owner(std::size_t p, std::size_t r) {
  if (p >= params_.size() || r >= routines_.size()) {
    throw std::out_of_range("InfluenceGraph::add_owner");
  }
  auto& list = owners_[p];
  if (std::find(list.begin(), list.end(), r) == list.end()) list.push_back(r);
}

bool InfluenceGraph::is_owned_by(std::size_t p, std::size_t r) const {
  const auto& list = owners_.at(p);
  return std::find(list.begin(), list.end(), r) != list.end();
}

bool InfluenceGraph::is_global(std::size_t p) const { return owners_.at(p).empty(); }

const std::vector<std::size_t>& InfluenceGraph::owners(std::size_t p) const {
  return owners_.at(p);
}

void InfluenceGraph::set_influence(std::size_t p, std::size_t r, double weight) {
  influence_.at(p, r) = weight;
}

double InfluenceGraph::influence(std::size_t p, std::size_t r) const {
  return influence_.at(p, r);
}

InfluenceGraph InfluenceGraph::pruned(double cutoff) const {
  InfluenceGraph g = *this;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    for (std::size_t r = 0; r < routines_.size(); ++r) {
      if (g.influence_(p, r) < cutoff) g.influence_(p, r) = 0.0;
    }
  }
  return g;
}

std::vector<InfluenceGraph::CrossEdge> InfluenceGraph::cross_edges() const {
  std::vector<CrossEdge> edges;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    if (owners_[p].empty()) continue;
    for (std::size_t r = 0; r < routines_.size(); ++r) {
      if (influence_(p, r) <= 0.0 || is_owned_by(p, r)) continue;
      for (std::size_t owner : owners_[p]) {
        edges.push_back({p, owner, r, influence_(p, r)});
      }
    }
  }
  return edges;
}

std::vector<InfluenceGraph::GlobalEdge> InfluenceGraph::global_edges() const {
  std::vector<GlobalEdge> edges;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    if (!owners_[p].empty()) continue;
    for (std::size_t r = 0; r < routines_.size(); ++r) {
      if (influence_(p, r) > 0.0) edges.push_back({p, r, influence_(p, r)});
    }
  }
  return edges;
}

std::string InfluenceGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph influence {\n  rankdir=LR;\n";
  for (std::size_t r = 0; r < routines_.size(); ++r) {
    os << "  \"" << routines_[r] << "\" [shape=box];\n";
  }
  for (std::size_t p = 0; p < params_.size(); ++p) {
    for (std::size_t r = 0; r < routines_.size(); ++r) {
      const double w = influence_(p, r);
      if (w <= 0.0) continue;
      std::string src;
      if (owners_[p].empty()) {
        src = params_[p];
        os << "  \"" << src << "\" [shape=ellipse,style=dashed];\n";
      } else {
        src = routines_[owners_[p].front()];
        if (is_owned_by(p, r)) continue;  // intra-routine edges are implicit
      }
      os << "  \"" << src << "\" -> \"" << routines_[r] << "\" [label=\"" << params_[p]
         << " (" << static_cast<int>(w * 100.0) << "%)\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace tunekit::graph
