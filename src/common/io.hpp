#pragma once
// File-IO seam for deterministic fault injection.
//
// Everything durability-critical (session journals, EvalDb snapshots) funnels
// its writes through an `Io` so tests can script hostile-disk scenarios the
// way `FaultyApp` / `--chaos-segv` already script hostile evaluations:
//
//   - ENOSPC after N bytes (disk fills mid-append),
//   - EIO on the K-th fsync, with later fsyncs falsely succeeding
//     (fsyncgate semantics: the dirty page was dropped, retrying lies),
//   - short writes (interrupted write syscall),
//   - torn writes ("crash": a prefix reaches disk, everything after is
//     silently dropped while still reporting success to the caller),
//   - rename failure (atomic-replace step of compaction fails).
//
// `real_io()` is the zero-overhead passthrough used in production; `FaultIo`
// wraps any base Io with a seeded `FaultScript`. An optional path filter
// confines faults to one session's files even when a whole SessionManager
// shares the instance, which is how the chaos tests poison exactly one
// session out of many.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <system_error>
#include <unordered_map>

namespace tunekit::common {

/// Abstract file-IO surface. Semantics mirror the underlying libc calls:
/// `write` returns bytes accepted (short counts possible) and sets errno on
/// failure; `flush`/`fsync_file`/`fsync_dir`/`close` return 0 or -1+errno;
/// `rename` reports failure through `ec`.
class Io {
 public:
  virtual ~Io() = default;
  virtual std::FILE* open(const std::string& path, const char* mode) = 0;
  virtual std::size_t write(std::FILE* f, const char* data, std::size_t size) = 0;
  virtual int flush(std::FILE* f) = 0;
  virtual int fsync_file(std::FILE* f) = 0;
  virtual int fsync_dir(const std::string& dir) = 0;
  virtual bool rename(const std::string& from, const std::string& to,
                      std::error_code& ec) = 0;
  virtual int close(std::FILE* f) = 0;
};

/// The passthrough Io every production path uses (fsync_file retries EINTR).
Io& real_io();

/// Deterministic fault scenario. Indices are 1-based and count calls made
/// through one FaultIo instance against files matching `path_contains`
/// (empty = all files). 0 disables a fault.
struct FaultScript {
  /// Writes fail with ENOSPC once this many bytes were accepted.
  std::uint64_t enospc_after_bytes = 0;
  /// This fsync (1-based) fails with EIO; every later fsync on the same
  /// instance *falsely succeeds* — matching the kernel behavior that made
  /// retrying fsync after EIO unsafe.
  std::uint64_t fail_fsync_at = 0;
  /// This write (1-based) accepts only half its bytes.
  std::uint64_t short_write_at = 0;
  /// "Crash" at this write (1-based): a prefix of it reaches the file, the
  /// call still reports full success, and every later write/flush/fsync on
  /// faulted files is silently dropped — what the file contains afterwards
  /// is exactly what a power cut would have left.
  std::uint64_t torn_write_at = 0;
  /// This rename (1-based) fails with EIO.
  std::uint64_t rename_fail_at = 0;
  /// Only paths containing this substring are subject to faults.
  std::string path_contains;
  /// Scenario seed, echoed into logs/reports so a failing chaos run can be
  /// replayed exactly.
  std::uint64_t seed = 0;
};

/// Io wrapper injecting the faults scripted in `FaultScript`. Thread-safe;
/// counters let tests assert how far a scenario progressed.
class FaultIo : public Io {
 public:
  explicit FaultIo(FaultScript script, Io& base = real_io());

  std::FILE* open(const std::string& path, const char* mode) override;
  std::size_t write(std::FILE* f, const char* data, std::size_t size) override;
  int flush(std::FILE* f) override;
  int fsync_file(std::FILE* f) override;
  int fsync_dir(const std::string& dir) override;
  bool rename(const std::string& from, const std::string& to,
              std::error_code& ec) override;
  int close(std::FILE* f) override;

  const FaultScript& script() const { return script_; }
  std::uint64_t bytes_written() const { return bytes_written_.load(); }
  std::uint64_t write_calls() const { return write_calls_.load(); }
  std::uint64_t fsync_calls() const { return fsync_calls_.load(); }
  std::uint64_t rename_calls() const { return rename_calls_.load(); }
  std::uint64_t faults_injected() const { return faults_injected_.load(); }
  /// True once the torn-write "crash" fired: the instance is dead — faulted
  /// files silently swallow everything.
  bool crashed() const { return crashed_.load(); }

 private:
  bool matches(const std::string& path) const;
  bool faulted(std::FILE* f);

  FaultScript script_;
  Io& base_;
  std::mutex mutex_;
  /// FILE* -> subject-to-faults, recorded at open() against the path filter.
  std::unordered_map<std::FILE*, bool> files_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> write_calls_{0};
  std::atomic<std::uint64_t> fsync_calls_{0};
  std::atomic<std::uint64_t> rename_calls_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<bool> fsync_failed_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace tunekit::common
