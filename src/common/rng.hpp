#pragma once
// Deterministic random number generation for tunekit.
//
// Every stochastic component in the library (samplers, noise injection,
// forest bootstrapping, acquisition multistarts, ...) draws from an Rng that
// is explicitly seeded by the caller. This makes every experiment in the
// paper reproduction replayable bit-for-bit from a single seed printed by the
// bench harness.

#include <cstdint>
#include <random>
#include <vector>

namespace tunekit {

/// Seedable random generator with a splitting facility for building
/// statistically independent child streams (e.g. one per parallel search).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(mix(seed)) {}

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw.
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// A child generator whose stream is independent of this one.
  /// Uses a SplitMix64 step over an internal split counter so repeated
  /// splits of the same parent yield distinct, reproducible children.
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Raw engine access for use with standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::mt19937_64 engine_;
  std::uint64_t split_counter_ = 0;
};

}  // namespace tunekit
