#pragma once
// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum framing
// journal records against bit rot. Software table-driven implementation —
// journal appends are fsync-bound, so a hardware CRC instruction would be
// invisible in profiles.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tunekit::common {

/// CRC32C of `size` bytes at `data`. Known vector: "123456789" -> 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t size);

inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

/// Fixed-width lowercase hex rendering used by the journal record framing
/// ("tunekit-session-v2"): exactly 8 characters, zero-padded.
std::string crc32c_hex(std::string_view s);

}  // namespace tunekit::common
