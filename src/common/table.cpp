#include "common/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tunekit {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header list");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&]() {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace tunekit
