#pragma once
// Minimal self-contained JSON value type with parser and serializer.
//
// Used for the evaluation-database checkpoint files that give tunekit the
// crash-recovery capability the paper values in GPTune: a killed search can
// be resumed from the evaluations persisted so far.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tunekit::common {
class Io;
}

namespace tunekit::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// Thrown on malformed JSON input or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value: null, bool, number (double), string, array, or object.
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  Value(int i) : type_(Type::Number), num_(i) {}
  Value(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(std::size_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws JsonError if absent or not an object.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Object member with fallback default.
  double number_or(const std::string& key, double fallback) const;

  /// Serialize. `indent` < 0 gives compact output; >= 0 pretty-prints.
  std::string dump(int indent = -1) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Container nesting bound for parse(): a document nested kMaxParseDepth
/// deep (or deeper) is rejected; kMaxParseDepth - 1 is the deepest accepted.
/// Untrusted network input (a request body of 100k '[' bytes) must produce a
/// JsonError, not a stack overflow — the parser is recursive, so depth is
/// bounded explicitly.
inline constexpr std::size_t kMaxParseDepth = 192;

/// Parse a complete JSON document; throws JsonError on malformed input.
/// Hardened for untrusted input: container nesting beyond kMaxParseDepth,
/// numbers outside double range (e.g. "1e999"), and non-grammar numbers
/// ("01", "1.", "+5", "1e") are all rejected with a clean JsonError.
Value parse(const std::string& text);

/// Convenience: read/write a JSON file. `load` throws JsonError if the file
/// cannot be read or parsed; `save` throws std::runtime_error on I/O failure.
Value load(const std::string& path);
void save(const std::string& path, const Value& value, int indent = 2);

/// As save(), but crash-safe: the document is written to a temporary file in
/// the same directory, flushed to disk, and atomically renamed over `path` —
/// a crash mid-save can never leave a truncated or corrupt file behind.
void save_atomic(const std::string& path, const Value& value, int indent = 2);

/// As save_atomic(), routed through an IO seam so fault-injection tests can
/// script disk failures; fsync results are checked (write/fsync/rename
/// failure throws) and the directory entry is synced after the rename.
void save_atomic(const std::string& path, const Value& value, int indent,
                 common::Io& io);

}  // namespace tunekit::json
