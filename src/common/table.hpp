#pragma once
// ASCII table formatter. Every bench harness prints its reproduction of a
// paper table/figure through this, so the output reads like the paper.

#include <string>
#include <vector>

namespace tunekit {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header separator.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tunekit
