#include "common/rng.hpp"

#include <stdexcept>

namespace tunekit {

std::uint64_t Rng::mix(std::uint64_t x) {
  // SplitMix64 finalizer: decorrelates nearby seeds.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::split() {
  const std::uint64_t child_seed = mix(engine_() ^ mix(++split_counter_));
  return Rng(child_seed);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace tunekit
