#pragma once
// Minimal leveled logger. Searches can take minutes; the drivers emit
// progress at Info level, internals at Debug. Quiet by default so bench
// table output stays clean.
//
// The sink is pluggable (tests capture log lines, the CLI tees to a file via
// --log-file); the default sink writes the historical stable format
// "[tunekit LEVEL] msg" to stderr. An optional decoration mode prefixes each
// message with a wall-clock timestamp and a dense thread id — off by default
// so existing output and anything parsing it stay unchanged.

#include <functional>
#include <sstream>
#include <string>

namespace tunekit {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted message. `msg` is the bare text (no level prefix,
/// no decorations) so sinks can format as they like; format_log_line() gives
/// the default rendering.
using LogSink = std::function<void(LogLevel level, const std::string& msg)>;

/// Replace the sink (nullptr restores the default stderr sink). Returns the
/// previous sink so callers can chain or restore it. Thread-safe.
LogSink set_log_sink(LogSink sink);

/// When on, format_log_line() (and thus the default sink) prefixes messages
/// with an ISO-8601 UTC wall-clock timestamp and a dense thread id:
/// "[tunekit LEVEL 2026-08-06T12:34:56.789Z t=3] msg". Off by default.
void set_log_decorations(bool on);
bool log_decorations();

/// The default rendering: "[tunekit LEVEL] msg", with timestamp + thread id
/// inserted when decorations are on. For custom sinks that tee to files.
std::string format_log_line(LogLevel level, const std::string& msg);

/// Emit a message (thread-safe) if `level` passes the threshold.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
inline void log_concat(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_concat(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  log_concat(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Warn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::Error) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Error, os.str());
}

}  // namespace tunekit
