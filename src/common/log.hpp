#pragma once
// Minimal leveled logger. Searches can take minutes; the drivers emit
// progress at Info level, internals at Debug. Quiet by default so bench
// table output stays clean.

#include <sstream>
#include <string>

namespace tunekit {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message (thread-safe) if `level` passes the threshold.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
inline void log_concat(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_concat(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  log_concat(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Warn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::Error) return;
  std::ostringstream os;
  detail::log_concat(os, args...);
  log_message(LogLevel::Error, os.str());
}

}  // namespace tunekit
