#include "common/crc32c.hpp"

#include <array>

namespace tunekit::common {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size) {
  const auto& t = table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ t[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32c_hex(std::string_view s) {
  static const char digits[] = "0123456789abcdef";
  std::uint32_t crc = crc32c(s.data(), s.size());
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace tunekit::common
