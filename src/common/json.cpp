#include "common/json.hpp"

#include "common/io.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define TUNEKIT_JSON_HAVE_FSYNC 1
#endif

namespace tunekit::json {

bool Value::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) throw JsonError("json: not a string");
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

Array& Value::as_array() {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

Object& Value::as_object() {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_.count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_number();
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; persist as null (round-trips as missing data).
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Value::dump_impl(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(out, num_); break;
    case Type::String: dump_string(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        indent_to(out, indent, depth + 1);
        arr_[i].dump_impl(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        indent_to(out, indent, depth + 1);
        dump_string(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_impl(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value(std::size_t depth) {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs not needed for our files).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  bool digit_at(std::size_t p) const {
    return p < text_.size() && std::isdigit(static_cast<unsigned char>(text_[p]));
  }

  // Strict RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // The previous scanner swallowed any run of number-ish characters and let
  // std::stod accept a prefix, so "1.2.3" or "1e+" parsed silently; network
  // input must be rejected, not reinterpreted.
  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("expected a value");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("bad number: leading zero");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("bad number: missing fraction digits");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digit_at(pos_)) fail("bad number: missing exponent digits");
      while (digit_at(pos_)) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // strtod instead of stod: overflow must be a clean error, but underflow
    // (subnormals our own dump emits, or "1e-999") must still parse.
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL)) {
      fail("number out of range");
    }
    return Value(d);
  }

  Value parse_array(std::size_t depth) {
    // `depth` counts enclosing containers, so this one is number depth + 1.
    if (depth + 1 >= kMaxParseDepth) fail("nesting too deep");
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      char c = next();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object(std::size_t depth) {
    if (depth + 1 >= kMaxParseDepth) fail("nesting too deep");
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      char c = next();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("json: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void save(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("json: cannot write '" + path + "'");
  out << value.dump(indent) << '\n';
  if (!out) throw std::runtime_error("json: write failed for '" + path + "'");
}

void save_atomic(const std::string& path, const Value& value, int indent) {
  save_atomic(path, value, indent, common::real_io());
}

void save_atomic(const std::string& path, const Value& value, int indent,
                 common::Io& io) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = io.open(tmp, "wb");
  if (!f) throw std::runtime_error("json: cannot write '" + tmp + "'");
  const std::string text = value.dump(indent) + "\n";
  const bool written = io.write(f, text.data(), text.size()) == text.size();
  const bool flushed = written && io.flush(f) == 0;
  // An unchecked fsync here would quietly trade away the crash-safety this
  // function exists to provide (fsyncgate: the dirty page is gone, retrying
  // lies) — treat it exactly like a failed write.
  const bool synced = flushed && io.fsync_file(f) == 0;
  io.close(f);
  if (!synced) {
    std::filesystem::remove(tmp);
    throw std::runtime_error("json: write failed for '" + tmp + "'");
  }
  std::error_code ec;
  if (!io.rename(tmp, path, ec)) {
    std::filesystem::remove(tmp);
    throw std::runtime_error("json: atomic rename to '" + path + "' failed: " +
                             ec.message());
  }
  // The rename is durable only once the directory entry is synced.
  const auto dir = std::filesystem::path(path).parent_path();
  if (io.fsync_dir(dir.empty() ? "." : dir.string()) != 0) {
    throw std::runtime_error("json: directory fsync failed after rename to '" +
                             path + "'");
  }
}

}  // namespace tunekit::json
