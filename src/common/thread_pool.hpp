#pragma once
// Fixed-size worker pool used to run independent tuning searches in parallel
// (the paper runs the per-routine searches concurrently: "which can be
// conducted in parallel") and to parallelize Random Search evaluations.
//
// The pool follows the explicit-parallelism idiom: tasks are plain
// std::function jobs, results flow back through std::future, and the pool is
// an RAII object that joins its workers on destruction.

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace tunekit {

class ThreadPool {
 public:
  /// Creates `n_threads` workers; n_threads == 0 uses hardware_concurrency()
  /// (at least one).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future with its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit on stopped pool");
      jobs_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tunekit
