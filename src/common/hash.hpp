#pragma once
// Stable string hashing for shard assignment.
//
// The sharded SessionManager and the fleet registry both need a hash that is
// stable across processes, platforms, and releases: a session journaled into
// shard 3 must resolve to shard 3 after a server restart, an upgrade, or on a
// different machine reading the same journal directory. std::hash guarantees
// none of that, so we pin FNV-1a (64-bit) here and test the exact mapping.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tunekit::common {

/// 64-bit FNV-1a over the bytes of `s`. Deterministic everywhere.
inline std::uint64_t stable_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Shard index for `id` in [0, n_shards). n_shards == 0 is treated as 1.
inline std::size_t shard_of(const std::string& id, std::size_t n_shards) {
  if (n_shards <= 1) return 0;
  return static_cast<std::size_t>(stable_hash(id) % n_shards);
}

}  // namespace tunekit::common
