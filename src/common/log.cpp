#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>
#include <utility>

namespace tunekit {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<bool> g_decorations{false};
std::mutex g_mutex;  // guards the sink and serializes emission
LogSink g_sink;      // empty = default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

// Dense thread index for decorated output (0 = first thread that logged).
unsigned this_thread_index() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// Wall clock is correct here: decorated timestamps exist so log lines can be
// correlated with external events (cron, dmesg), unlike elapsed-time
// measurement which must stay on steady_clock (see common/stopwatch.hpp).
std::string utc_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<int>(ms));
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void set_log_decorations(bool on) { g_decorations.store(on, std::memory_order_relaxed); }

bool log_decorations() { return g_decorations.load(std::memory_order_relaxed); }

std::string format_log_line(LogLevel level, const std::string& msg) {
  std::string line = "[tunekit ";
  line += level_name(level);
  if (log_decorations()) {
    line += ' ';
    line += utc_timestamp();
    line += " t=";
    line += std::to_string(this_thread_index());
  }
  line += "] ";
  line += msg;
  return line;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::cerr << format_log_line(level, msg) << '\n';
}

}  // namespace tunekit
