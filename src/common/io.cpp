#include "common/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace tunekit::common {
namespace {

class RealIo final : public Io {
 public:
  std::FILE* open(const std::string& path, const char* mode) override {
    return std::fopen(path.c_str(), mode);
  }

  std::size_t write(std::FILE* f, const char* data, std::size_t size) override {
    return std::fwrite(data, 1, size, f);
  }

  int flush(std::FILE* f) override { return std::fflush(f); }

  int fsync_file(std::FILE* f) override {
    int rc;
    do {
      rc = ::fsync(::fileno(f));
    } while (rc != 0 && errno == EINTR);
    return rc;
  }

  int fsync_dir(const std::string& dir) override {
    const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
    if (dfd < 0) return -1;
    int rc;
    do {
      rc = ::fsync(dfd);
    } while (rc != 0 && errno == EINTR);
    const int saved = errno;
    ::close(dfd);
    errno = saved;
    return rc;
  }

  bool rename(const std::string& from, const std::string& to,
              std::error_code& ec) override {
    std::filesystem::rename(from, to, ec);
    return !ec;
  }

  int close(std::FILE* f) override { return std::fclose(f); }
};

}  // namespace

Io& real_io() {
  static RealIo io;
  return io;
}

FaultIo::FaultIo(FaultScript script, Io& base)
    : script_(std::move(script)), base_(base) {}

bool FaultIo::matches(const std::string& path) const {
  return script_.path_contains.empty() ||
         path.find(script_.path_contains) != std::string::npos;
}

bool FaultIo::faulted(std::FILE* f) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(f);
  // Files we did not open (e.g. opened before the FaultIo was installed) are
  // passed through untouched.
  return it != files_.end() && it->second;
}

std::FILE* FaultIo::open(const std::string& path, const char* mode) {
  std::FILE* f = base_.open(path, mode);
  if (f != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    files_[f] = matches(path);
  }
  return f;
}

std::size_t FaultIo::write(std::FILE* f, const char* data, std::size_t size) {
  if (!faulted(f)) return base_.write(f, data, size);
  if (crashed_.load()) return size;  // post-crash: swallow silently

  const std::uint64_t call = write_calls_.fetch_add(1) + 1;
  if (script_.torn_write_at != 0 && call == script_.torn_write_at) {
    // "Power cut" mid-write: a prefix lands, the caller is told everything
    // did, and the instance goes dead.
    const std::size_t prefix = size / 2;
    if (prefix > 0) base_.write(f, data, prefix);
    base_.flush(f);
    base_.fsync_file(f);
    crashed_.store(true);
    faults_injected_.fetch_add(1);
    return size;
  }
  if (script_.short_write_at != 0 && call == script_.short_write_at) {
    const std::size_t half = size / 2;
    const std::size_t n = base_.write(f, data, half);
    faults_injected_.fetch_add(1);
    errno = EINTR;
    return n;
  }
  if (script_.enospc_after_bytes != 0 &&
      bytes_written_.load() + size > script_.enospc_after_bytes) {
    faults_injected_.fetch_add(1);
    errno = ENOSPC;
    return 0;
  }
  const std::size_t n = base_.write(f, data, size);
  bytes_written_.fetch_add(n);
  return n;
}

int FaultIo::flush(std::FILE* f) {
  if (faulted(f) && crashed_.load()) return 0;
  return base_.flush(f);
}

int FaultIo::fsync_file(std::FILE* f) {
  if (!faulted(f)) return base_.fsync_file(f);
  if (crashed_.load()) return 0;
  const std::uint64_t call = fsync_calls_.fetch_add(1) + 1;
  if (script_.fail_fsync_at != 0) {
    if (call == script_.fail_fsync_at) {
      faults_injected_.fetch_add(1);
      fsync_failed_.store(true);
      errno = EIO;
      return -1;
    }
    // fsyncgate: after the EIO the kernel dropped the dirty pages and marked
    // the error as seen — a retried fsync "succeeds" without persisting what
    // was lost. Modelled by succeeding without touching the base.
    if (fsync_failed_.load()) return 0;
  }
  return base_.fsync_file(f);
}

int FaultIo::fsync_dir(const std::string& dir) {
  if (!matches(dir)) return base_.fsync_dir(dir);
  if (crashed_.load()) return 0;
  const std::uint64_t call = fsync_calls_.fetch_add(1) + 1;
  if (script_.fail_fsync_at != 0) {
    if (call == script_.fail_fsync_at) {
      faults_injected_.fetch_add(1);
      fsync_failed_.store(true);
      errno = EIO;
      return -1;
    }
    if (fsync_failed_.load()) return 0;
  }
  return base_.fsync_dir(dir);
}

bool FaultIo::rename(const std::string& from, const std::string& to,
                     std::error_code& ec) {
  if (!matches(from) && !matches(to)) return base_.rename(from, to, ec);
  if (crashed_.load()) {
    ec.clear();
    return true;
  }
  const std::uint64_t call = rename_calls_.fetch_add(1) + 1;
  if (script_.rename_fail_at != 0 && call == script_.rename_fail_at) {
    faults_injected_.fetch_add(1);
    ec = std::make_error_code(std::errc::io_error);
    return false;
  }
  return base_.rename(from, to, ec);
}

int FaultIo::close(std::FILE* f) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    files_.erase(f);
  }
  // Nothing of ours is buffered post-crash (the dead write path never touches
  // the FILE*), so close cannot leak "swallowed" bytes onto disk.
  return base_.close(f);
}

}  // namespace tunekit::common
