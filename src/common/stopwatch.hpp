#pragma once
// Monotonic stopwatch used by search drivers to report search time
// (Table III columns), by the bench harnesses, and by the telemetry layer.
//
// Deliberately std::chrono::steady_clock, never system_clock: elapsed times
// must not jump when NTP steps the wall clock mid-run (robust/measure.cpp
// and service/scheduler.cpp time evaluations that can span minutes).

#include <chrono>
#include <cstdint>

namespace tunekit {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  /// Elapsed nanoseconds (integer; for span timestamps).
  std::uint64_t ns() const {
    const auto elapsed = clock::now() - start_;
    return elapsed.count() > 0
               ? static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count())
               : 0;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tunekit
