#pragma once
// TunableApp facade over the real MiniSlater pipeline: the methodology's
// full loop (sensitivity -> DAG -> partition -> staged searches) against
// measured runtimes. Ownership mirrors the RT-TDDFT structure:
//   Group 1 and Group 3 share the pack tile and the FFT knobs (the shared
//   cuZcopy / shared FFT analogue), Group 2 owns the pairwise unroll,
//   Group 3 additionally owns the scale unroll, and the band batch is
//   application-level.

#include "core/tunable_app.hpp"
#include "minislater/pipeline.hpp"

namespace tunekit::minislater {

class MiniSlaterApp final : public core::TunableApp {
 public:
  /// Small defaults keep one evaluation in the low-millisecond range so a
  /// full methodology run finishes in seconds.
  explicit MiniSlaterApp(std::size_t n = 32, std::size_t bands = 4, int reps = 2,
                         std::uint64_t seed = 7);

  const search::SearchSpace& space() const override { return space_; }
  std::vector<core::RoutineSpec> routines() const override;
  std::vector<std::string> outer_regions() const override { return {"Slater"}; }
  std::map<std::string, std::vector<double>> expert_variations() const override;
  std::string name() const override;

  search::RegionTimes evaluate_regions(const search::Config& config) override;
  /// Real timing on a shared machine is not safely concurrent.
  bool thread_safe() const override { return false; }

  PipelineTuning decode(const search::Config& config) const;
  const MiniSlaterPipeline& pipeline() const { return pipeline_; }

  enum Index : std::size_t {
    kPackTile = 0,
    kTransposeBlock,
    kZTile,
    kPairUnroll,
    kScaleUnroll,
    kBatch,
    kNumParams
  };

 private:
  MiniSlaterPipeline pipeline_;
  search::SearchSpace space_;
};

}  // namespace tunekit::minislater
