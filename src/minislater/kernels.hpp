#pragma once
// The pointwise/copy kernels of the MiniSlater pipeline, each with the
// tuning knob its RT-TDDFT counterpart exposes (unroll factor, tile size).
// These execute real work; the knobs change instruction-level parallelism
// and access granularity, so measured runtimes respond to them.

#include <cstddef>

#include "minislater/fft.hpp"

namespace tunekit::minislater {

/// vec2zvec-like strided gather: pack every `stride`-th element of `src`
/// into contiguous `dst`, `count` elements, copied `tile` at a time.
void pack_strided(const Complex* src, Complex* dst, std::size_t count,
                  std::size_t stride, int tile);

/// zvec2vec-like scatter: inverse of pack_strided.
void unpack_strided(const Complex* src, Complex* dst, std::size_t count,
                    std::size_t stride, int tile);

/// cuPairwise-like elementwise product: dst[i] *= other[i], with a manual
/// unroll factor in {1, 2, 4, 8}.
void pairwise_multiply(Complex* dst, const Complex* other, std::size_t count,
                       int unroll);

/// cuDscal-like scaling: dst[i] *= s, with a manual unroll factor.
void scale(Complex* dst, std::size_t count, double s, int unroll);

/// daxpy-like accumulation: acc[i] += w * src[i].
void accumulate(Complex* acc, const Complex* src, std::size_t count, double w);

}  // namespace tunekit::minislater
