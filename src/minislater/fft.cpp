#include "minislater/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tunekit::minislater {

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft1d(Complex* data, std::size_t n, int sign) {
  if (!is_pow2(n)) throw std::invalid_argument("fft1d: n must be a power of two");
  if (sign != 1 && sign != -1) throw std::invalid_argument("fft1d: sign must be +-1");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = static_cast<double>(sign) * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

Grid3d::Grid3d(std::size_t n) : n_(n), data_(n * n * n) {
  if (!is_pow2(n)) throw std::invalid_argument("Grid3d: n must be a power of two");
}

void transpose_xy(Grid3d& grid, int block) {
  const std::size_t n = grid.n();
  if (block < 1) throw std::invalid_argument("transpose_xy: block < 1");
  const auto b = static_cast<std::size_t>(block);
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t by = 0; by < n; by += b) {
      for (std::size_t bx = by; bx < n; bx += b) {
        const std::size_t y_end = std::min(by + b, n);
        const std::size_t x_end = std::min(bx + b, n);
        for (std::size_t y = by; y < y_end; ++y) {
          const std::size_t x_start = bx == by ? y + 1 : bx;
          for (std::size_t x = x_start; x < x_end; ++x) {
            std::swap(grid.at(x, y, z), grid.at(y, x, z));
          }
        }
      }
    }
  }
}

void fft3d(Grid3d& grid, int sign, const Fft3dTuning& tuning) {
  const std::size_t n = grid.n();
  Complex* data = grid.data();

  // Pass 1: x lines are contiguous.
  for (std::size_t line = 0; line < n * n; ++line) fft1d(data + line * n, n, sign);

  // Pass 2: transpose x<->y, FFT the (now contiguous) y lines, transpose
  // back. The transpose block size is a genuine cache knob.
  transpose_xy(grid, tuning.transpose_block);
  for (std::size_t line = 0; line < n * n; ++line) fft1d(data + line * n, n, sign);
  transpose_xy(grid, tuning.transpose_block);

  // Pass 3: z lines are strided by n^2; gather z_tile of them at a time
  // into a contiguous scratch, FFT, scatter back.
  const auto tile = static_cast<std::size_t>(std::max(1, tuning.z_tile));
  std::vector<Complex> scratch(tile * n);
  const std::size_t stride = n * n;
  for (std::size_t base = 0; base < n * n; base += tile) {
    const std::size_t lines = std::min(tile, n * n - base);
    for (std::size_t l = 0; l < lines; ++l) {
      for (std::size_t z = 0; z < n; ++z) scratch[l * n + z] = data[base + l + z * stride];
    }
    for (std::size_t l = 0; l < lines; ++l) fft1d(scratch.data() + l * n, n, sign);
    for (std::size_t l = 0; l < lines; ++l) {
      for (std::size_t z = 0; z < n; ++z) data[base + l + z * stride] = scratch[l * n + z];
    }
  }
}

}  // namespace tunekit::minislater
