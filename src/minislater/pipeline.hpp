#pragma once
// MiniSlater: a real, executing miniature of the paper's dominant
// computational pattern (Fig. 4) on the host CPU —
//
//   Group 1: pack band coefficients into the FFT grid, backward 3-D FFT
//   Group 2: pairwise multiplication with the potential grid
//   Group 3: forward 3-D FFT, scaling, unpack
//   then an accumulation (daxpy) over bands.
//
// Runtimes are measured, not modeled: tuning knobs (pack tile, transpose
// block, z-gather tile, unroll factors, band batch) change real memory
// access patterns and ILP, and the timer sees real cache effects and noise.
// This grounds the methodology in genuine kernel tuning, complementing the
// tddft/ performance-model simulator.

#include <cstddef>

#include "minislater/fft.hpp"
#include "minislater/kernels.hpp"

namespace tunekit::minislater {

struct PipelineTuning {
  int pack_tile = 256;       // shared by pack and unpack (the cuZcopy analogue)
  int transpose_block = 16;  // fft3d transpose blocking (shared by both FFTs)
  int z_tile = 4;            // fft3d z-axis gather tile (shared by both FFTs)
  int pair_unroll = 1;
  int scale_unroll = 1;
  int batch = 1;             // bands processed back-to-back per potential reuse
};

struct PipelineTimes {
  /// Seconds per full run over all bands.
  double group1 = 0.0;  // pack + backward FFT
  double group2 = 0.0;  // pairwise multiply
  double group3 = 0.0;  // forward FFT + scale + unpack
  double slater = 0.0;  // groups + accumulation
  double total = 0.0;   // slater + fixed post-processing
  /// Energy-like checksum of the accumulated result (for correctness
  /// assertions: tuning must never change the numbers).
  double checksum = 0.0;
};

class MiniSlaterPipeline {
 public:
  /// `n`: FFT grid side (power of two). `bands`: wavefunction bands.
  /// `reps`: timing repetitions; region times are the minimum over reps.
  MiniSlaterPipeline(std::size_t n, std::size_t bands, int reps = 2,
                     std::uint64_t seed = 7);

  std::size_t n() const { return n_; }
  std::size_t bands() const { return bands_; }

  bool valid(const PipelineTuning& tuning) const;

  /// Execute the pipeline with the given tuning and measure region times.
  PipelineTimes run(const PipelineTuning& tuning) const;

 private:
  std::size_t n_;
  std::size_t bands_;
  int reps_;
  /// Band coefficients in a strided "G-space" layout plus the potential.
  std::vector<Complex> coefficients_;
  std::vector<Complex> potential_;
  std::size_t band_coeffs_;  // coefficients per band
  std::size_t stride_ = 2;
};

}  // namespace tunekit::minislater
