#pragma once
// Real, executing FFT kernels for the MiniSlater application: an iterative
// radix-2 complex FFT and a 3-D FFT built from axis passes with tunable
// blocking. Unlike the tddft/ performance models, these run actual floating
// point work so the methodology can be exercised against genuinely measured
// runtimes (real cache effects, real timer noise).

#include <complex>
#include <cstddef>
#include <vector>

namespace tunekit::minislater {

using Complex = std::complex<double>;

/// In-place iterative radix-2 Cooley-Tukey FFT. `n` must be a power of two.
/// sign = -1 forward, +1 inverse (unnormalized; divide by n to invert).
void fft1d(Complex* data, std::size_t n, int sign);

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

/// A cubic n x n x n complex grid, stored x-fastest.
class Grid3d {
 public:
  explicit Grid3d(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t size() const { return data_.size(); }
  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

  Complex& at(std::size_t x, std::size_t y, std::size_t z) {
    return data_[(z * n_ + y) * n_ + x];
  }
  Complex at(std::size_t x, std::size_t y, std::size_t z) const {
    return data_[(z * n_ + y) * n_ + x];
  }

 private:
  std::size_t n_;
  std::vector<Complex> data_;
};

struct Fft3dTuning {
  /// Blocked in-slice transpose tile (elements per side).
  int transpose_block = 16;
  /// Lines gathered per z-axis pass.
  int z_tile = 4;
};

/// In-place 3-D FFT over the grid: x passes are contiguous; y via blocked
/// transpose; z via tiled line gathers. The tuning parameters change the
/// memory access pattern (and therefore the measured runtime), not the
/// result.
void fft3d(Grid3d& grid, int sign, const Fft3dTuning& tuning);

/// Blocked transpose of the x/y planes for every z (used by fft3d; exposed
/// for tests and direct tuning).
void transpose_xy(Grid3d& grid, int block);

}  // namespace tunekit::minislater
