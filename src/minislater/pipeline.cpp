#include "minislater/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace tunekit::minislater {

MiniSlaterPipeline::MiniSlaterPipeline(std::size_t n, std::size_t bands, int reps,
                                       std::uint64_t seed)
    : n_(n), bands_(bands), reps_(std::max(1, reps)) {
  if (!is_pow2(n)) throw std::invalid_argument("MiniSlaterPipeline: n not a power of 2");
  if (bands == 0) throw std::invalid_argument("MiniSlaterPipeline: no bands");

  const std::size_t grid_size = n * n * n;
  band_coeffs_ = grid_size / stride_;

  tunekit::Rng rng(seed);
  coefficients_.resize(bands * band_coeffs_ * stride_);
  for (auto& c : coefficients_) c = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  potential_.resize(grid_size);
  for (auto& c : potential_) c = Complex(rng.uniform(0.5, 1.5), 0.0);
}

bool MiniSlaterPipeline::valid(const PipelineTuning& t) const {
  if (t.pack_tile < 1 || t.transpose_block < 1 || t.z_tile < 1 || t.batch < 1) {
    return false;
  }
  const auto unrolls_ok = [](int u) { return u == 1 || u == 2 || u == 4 || u == 8; };
  return unrolls_ok(t.pair_unroll) && unrolls_ok(t.scale_unroll);
}

PipelineTimes MiniSlaterPipeline::run(const PipelineTuning& tuning) const {
  if (!valid(tuning)) {
    throw std::invalid_argument("MiniSlaterPipeline::run: invalid tuning");
  }
  const std::size_t grid_size = n_ * n_ * n_;
  const Fft3dTuning fft_tuning{tuning.transpose_block, tuning.z_tile};
  const double inv_scale = 1.0 / static_cast<double>(grid_size);

  PipelineTimes best;
  best.slater = std::numeric_limits<double>::infinity();

  Grid3d grid(n_);
  std::vector<Complex> accumulator(grid_size);

  for (int rep = 0; rep < reps_; ++rep) {
    PipelineTimes t;
    std::fill(accumulator.begin(), accumulator.end(), Complex(0.0, 0.0));
    Stopwatch slater_watch;

    for (std::size_t band0 = 0; band0 < bands_;
         band0 += static_cast<std::size_t>(tuning.batch)) {
      const std::size_t band_end =
          std::min(band0 + static_cast<std::size_t>(tuning.batch), bands_);
      for (std::size_t band = band0; band < band_end; ++band) {
        const Complex* coeffs = coefficients_.data() + band * band_coeffs_ * stride_;

        // --- Group 1: pack + backward FFT (reciprocal -> real space). ---
        Stopwatch w1;
        std::fill(grid.data(), grid.data() + grid_size, Complex(0.0, 0.0));
        pack_strided(coeffs, grid.data(), band_coeffs_, stride_, tuning.pack_tile);
        fft3d(grid, +1, fft_tuning);
        t.group1 += w1.seconds();

        // --- Group 2: pairwise multiplication with the potential. ---
        Stopwatch w2;
        pairwise_multiply(grid.data(), potential_.data(), grid_size,
                          tuning.pair_unroll);
        t.group2 += w2.seconds();

        // --- Group 3: forward FFT + scaling + unpack-style accumulate. ---
        Stopwatch w3;
        fft3d(grid, -1, fft_tuning);
        scale(grid.data(), grid_size, inv_scale, tuning.scale_unroll);
        t.group3 += w3.seconds();

        // Accumulation over bands (the daxpy of the pseudo-code). Qualified
        // call: ADL on std::complex* would otherwise find std::accumulate.
        minislater::accumulate(accumulator.data(), grid.data(), grid_size,
                               1.0 / static_cast<double>(bands_));
      }
    }
    t.slater = slater_watch.seconds();
    t.total = t.slater + 1e-5;  // fixed post-processing epsilon

    double checksum = 0.0;
    for (std::size_t i = 0; i < grid_size; i += 97) {
      checksum += accumulator[i].real() + accumulator[i].imag();
    }
    t.checksum = checksum;

    if (t.slater < best.slater) best = t;
  }
  return best;
}

}  // namespace tunekit::minislater
