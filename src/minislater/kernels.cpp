#include "minislater/kernels.hpp"

#include <algorithm>
#include <stdexcept>

namespace tunekit::minislater {

void pack_strided(const Complex* src, Complex* dst, std::size_t count,
                  std::size_t stride, int tile) {
  if (tile < 1) throw std::invalid_argument("pack_strided: tile < 1");
  const auto t = static_cast<std::size_t>(tile);
  for (std::size_t base = 0; base < count; base += t) {
    const std::size_t end = std::min(base + t, count);
    for (std::size_t i = base; i < end; ++i) dst[i] = src[i * stride];
  }
}

void unpack_strided(const Complex* src, Complex* dst, std::size_t count,
                    std::size_t stride, int tile) {
  if (tile < 1) throw std::invalid_argument("unpack_strided: tile < 1");
  const auto t = static_cast<std::size_t>(tile);
  for (std::size_t base = 0; base < count; base += t) {
    const std::size_t end = std::min(base + t, count);
    for (std::size_t i = base; i < end; ++i) dst[i * stride] = src[i];
  }
}

namespace {

template <int Unroll>
void pairwise_impl(Complex* dst, const Complex* other, std::size_t count) {
  std::size_t i = 0;
  for (; i + Unroll <= count; i += Unroll) {
    for (int k = 0; k < Unroll; ++k) dst[i + k] *= other[i + k];
  }
  for (; i < count; ++i) dst[i] *= other[i];
}

template <int Unroll>
void scale_impl(Complex* dst, std::size_t count, double s) {
  std::size_t i = 0;
  for (; i + Unroll <= count; i += Unroll) {
    for (int k = 0; k < Unroll; ++k) dst[i + k] *= s;
  }
  for (; i < count; ++i) dst[i] *= s;
}

}  // namespace

void pairwise_multiply(Complex* dst, const Complex* other, std::size_t count,
                       int unroll) {
  switch (unroll) {
    case 1: pairwise_impl<1>(dst, other, count); break;
    case 2: pairwise_impl<2>(dst, other, count); break;
    case 4: pairwise_impl<4>(dst, other, count); break;
    case 8: pairwise_impl<8>(dst, other, count); break;
    default: throw std::invalid_argument("pairwise_multiply: unroll must be 1/2/4/8");
  }
}

void scale(Complex* dst, std::size_t count, double s, int unroll) {
  switch (unroll) {
    case 1: scale_impl<1>(dst, count, s); break;
    case 2: scale_impl<2>(dst, count, s); break;
    case 4: scale_impl<4>(dst, count, s); break;
    case 8: scale_impl<8>(dst, count, s); break;
    default: throw std::invalid_argument("scale: unroll must be 1/2/4/8");
  }
}

void accumulate(Complex* acc, const Complex* src, std::size_t count, double w) {
  for (std::size_t i = 0; i < count; ++i) acc[i] += w * src[i];
}

}  // namespace tunekit::minislater
