#include "minislater/minislater_app.hpp"

namespace tunekit::minislater {

MiniSlaterApp::MiniSlaterApp(std::size_t n, std::size_t bands, int reps,
                             std::uint64_t seed)
    : pipeline_(n, bands, reps, seed) {
  using search::ParamSpec;
  space_.add(ParamSpec::ordinal("pack_tile", {16, 64, 256, 1024, 4096}, 256));
  space_.add(ParamSpec::ordinal("transpose_block", {4, 8, 16, 32, 64}, 16));
  space_.add(ParamSpec::ordinal("z_tile", {1, 2, 4, 8, 16}, 4));
  space_.add(ParamSpec::ordinal("pair_unroll", {1, 2, 4, 8}, 1));
  space_.add(ParamSpec::ordinal("scale_unroll", {1, 2, 4, 8}, 1));
  space_.add(ParamSpec::ordinal("batch", {1, 2, 4, 8}, 1));
}

PipelineTuning MiniSlaterApp::decode(const search::Config& config) const {
  if (config.size() != kNumParams) {
    throw std::invalid_argument("MiniSlaterApp::decode: expected 6 parameters");
  }
  PipelineTuning t;
  t.pack_tile = static_cast<int>(config[kPackTile]);
  t.transpose_block = static_cast<int>(config[kTransposeBlock]);
  t.z_tile = static_cast<int>(config[kZTile]);
  t.pair_unroll = static_cast<int>(config[kPairUnroll]);
  t.scale_unroll = static_cast<int>(config[kScaleUnroll]);
  t.batch = static_cast<int>(config[kBatch]);
  return t;
}

std::vector<core::RoutineSpec> MiniSlaterApp::routines() const {
  std::vector<core::RoutineSpec> out(3);
  out[0].name = "Group1";
  out[0].params = {kPackTile, kTransposeBlock, kZTile};
  out[1].name = "Group2";
  out[1].params = {kPairUnroll};
  out[2].name = "Group3";
  out[2].params = {kPackTile, kTransposeBlock, kZTile, kScaleUnroll};
  return out;
}

std::map<std::string, std::vector<double>> MiniSlaterApp::expert_variations() const {
  return {
      {"pack_tile", {16, 64, 1024, 4096}},
      {"transpose_block", {4, 8, 32, 64}},
      {"z_tile", {1, 2, 8, 16}},
      {"pair_unroll", {2, 4, 8}},
      {"scale_unroll", {2, 4, 8}},
      {"batch", {2, 4, 8}},
  };
}

std::string MiniSlaterApp::name() const {
  return "MiniSlater " + std::to_string(pipeline_.n()) + "^3 x " +
         std::to_string(pipeline_.bands()) + " bands (measured)";
}

search::RegionTimes MiniSlaterApp::evaluate_regions(const search::Config& config) {
  const PipelineTimes t = pipeline_.run(decode(config));
  search::RegionTimes out;
  out.regions["Group1"] = t.group1;
  out.regions["Group2"] = t.group2;
  out.regions["Group3"] = t.group3;
  out.regions["Slater"] = t.slater;
  out.total = t.total;
  return out;
}

}  // namespace tunekit::minislater
