#pragma once
// Telemetry: nested tracing spans plus a metrics registry behind one facade.
//
// A span is a named interval with an explicit parent id, forming the tree
//
//   methodology.run
//     ├─ phase.sensitivity ── eval ── worker.rpc ── worker.objective
//     ├─ phase.importance  ── eval ...
//     ├─ phase.partition
//     └─ phase.execution ── search.<name> ── bo.iteration ── eval ── ...
//
// Parents propagate two ways:
//   * implicitly — each thread carries a "current span" (set by ScopedSpan /
//     CurrentSpanScope), and begin_span() defaults its parent to it; or
//   * explicitly — cross-thread and cross-process work passes the parent id
//     by hand (the scheduler hands its batch span to pool threads, the
//     worker protocol carries the rpc span id over the pipe).
//
// Telemetry is DISABLED by default and every layer takes it as a nullable
// pointer: the disabled/null hot path is one branch (guarded by a test to
// cost < 1 µs per evaluation). When enabled, finished spans are moved into a
// bounded in-memory buffer; once full, new spans are counted as dropped
// rather than growing memory during a long tuning run.
//
// Spans measured in another process (the worker reports setup/objective/
// teardown timings relative to its own request handling) are stitched in via
// record_span() with supervisor-side anchoring — see WorkerPool::evaluate.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace tunekit::obs {

/// Span identifier; 0 means "no span".
using SpanId = std::uint64_t;

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  /// Nanoseconds since the Telemetry instance's (steady-clock) epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Dense per-process thread index (stable across Telemetry instances).
  std::uint32_t tid = 0;
  /// 0 = this process; a worker's OS pid for imported worker-side spans.
  std::int64_t pid = 0;
  std::string name;
  std::string category;
};

class Telemetry {
 public:
  /// Sentinel parent meaning "use the calling thread's current span".
  static constexpr SpanId kInheritParent = ~SpanId{0};

  Telemetry() = default;  // disabled until enable()
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Shared always-disabled instance for call sites that want a reference.
  static Telemetry& noop();

  void enable(std::size_t max_spans = 1 << 20);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds since this instance's epoch.
  std::uint64_t now_ns() const;

  /// Open a span. Returns 0 (and records nothing) when disabled.
  SpanId begin_span(std::string_view name, SpanId parent = kInheritParent,
                    std::string_view category = {});
  /// Close a span opened by begin_span(); unknown/zero ids are ignored.
  void end_span(SpanId id);

  /// Record a complete span measured elsewhere (worker-side timings). Returns
  /// the id assigned to it, 0 when disabled.
  SpanId record_span(std::string_view name, SpanId parent, std::uint64_t start_ns,
                     std::uint64_t dur_ns, std::int64_t pid = 0,
                     std::string_view category = {});

  /// The calling thread's ambient span (0 if none). Static so cross-layer
  /// code can read/seed it without holding a Telemetry reference.
  static SpanId current_span();
  static SpanId exchange_current_span(SpanId id);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Snapshot of finished spans (open spans are not included).
  std::vector<SpanRecord> spans() const;
  std::uint64_t dropped_spans() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct OpenSpan {
    SpanRecord record;
  };

  void finish(SpanRecord&& record);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t epoch_ns_ = 0;
  std::size_t max_spans_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<SpanId, OpenSpan> open_;
  std::vector<SpanRecord> done_;
  MetricsRegistry metrics_;
};

/// RAII span. Safe with a null or disabled Telemetry (then a no-op). While
/// alive it is the calling thread's current span, so nested spans inherit it.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Telemetry* telemetry, std::string_view name,
             SpanId parent = Telemetry::kInheritParent, std::string_view category = {});
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }
  /// Close early (idempotent); also restores the previous current span.
  void end();

 private:
  Telemetry* telemetry_ = nullptr;
  SpanId id_ = 0;
  SpanId saved_ = 0;
};

/// Seeds the calling thread's current span (for work handed to another
/// thread: capture the parent id, then open one of these in the worker).
class CurrentSpanScope {
 public:
  explicit CurrentSpanScope(SpanId id) : saved_(Telemetry::exchange_current_span(id)) {}
  ~CurrentSpanScope() { Telemetry::exchange_current_span(saved_); }
  CurrentSpanScope(const CurrentSpanScope&) = delete;
  CurrentSpanScope& operator=(const CurrentSpanScope&) = delete;

 private:
  SpanId saved_;
};

// Canonical metric names (Prometheus conventions: *_total counters, *_seconds
// histograms, plain gauges). Shared by the instrumented layers and exporters.
namespace metric {
inline constexpr const char* kEvalsStarted = "tunekit_evals_started_total";
inline constexpr const char* kWorkerRestarts = "tunekit_worker_restarts_total";
inline constexpr const char* kEvalsQuarantined = "tunekit_evals_quarantined_total";
inline constexpr const char* kQueueDepth = "tunekit_queue_depth";
inline constexpr const char* kEvalSeconds = "tunekit_eval_seconds";
inline constexpr const char* kGpFitSeconds = "tunekit_gp_fit_seconds";
inline constexpr const char* kAcqArgmaxSeconds = "tunekit_acq_argmax_seconds";
inline constexpr const char* kJournalFsyncSeconds = "tunekit_journal_fsync_seconds";
inline constexpr const char* kFleetNodesUp = "tunekit_fleet_nodes_up";
inline constexpr const char* kFleetSlotsBusy = "tunekit_fleet_slots_busy";
inline constexpr const char* kFleetSteals = "tunekit_fleet_steals_total";
inline constexpr const char* kFleetRedispatches = "tunekit_fleet_redispatches_total";
/// Queue-to-result dispatch latency; per-node variants append "_node_<id>".
inline constexpr const char* kFleetEvalSeconds = "tunekit_fleet_eval_seconds";
// Storage integrity: journal poisoning, segment rotation, salvage.
inline constexpr const char* kStoragePoisoned = "tunekit_storage_poisoned_total";
inline constexpr const char* kStorageSegmentsSealed =
    "tunekit_storage_segments_sealed_total";
inline constexpr const char* kStorageCorruptSegments =
    "tunekit_storage_corrupt_segments_total";
inline constexpr const char* kStorageSalvagedRecords =
    "tunekit_storage_salvaged_records_total";
inline constexpr const char* kStorageLostRecords =
    "tunekit_storage_lost_records_total";
// Fleet circuit breaker: open transitions, currently-open gauge, shed load.
inline constexpr const char* kBreakerOpens = "tunekit_breaker_open_total";
inline constexpr const char* kBreakerNodesOpen = "tunekit_breaker_nodes_open";
inline constexpr const char* kBreakerShed = "tunekit_breaker_shed_total";
// Exactly-once retries: replay-cache hits (a retried request answered from
// the journaled response), client-side retry attempts/exhaustions.
inline constexpr const char* kReplayHits = "tunekit_retry_replayed_total";
inline constexpr const char* kRetryAttempts = "tunekit_retry_attempts_total";
inline constexpr const char* kRetryExhausted = "tunekit_retry_exhausted_total";
// Adaptive admission control: requests shed (by cap or queue delay) and the
// queue-delay / advertised-Retry-After distributions behind those decisions.
inline constexpr const char* kShedRequests = "tunekit_shed_requests_total";
inline constexpr const char* kShedQueueDelay = "tunekit_shed_queue_delay_seconds";
inline constexpr const char* kShedRetryAfter = "tunekit_shed_retry_after_seconds";
// Deadline propagation: budgets rejected before dispatch, expired while
// queued, scheduler loops stopped by budget, and the budget distribution.
inline constexpr const char* kDeadlineRejected = "tunekit_deadline_rejected_total";
inline constexpr const char* kDeadlineExpiredInQueue =
    "tunekit_deadline_expired_queue_total";
inline constexpr const char* kDeadlineStopped = "tunekit_deadline_stopped_total";
inline constexpr const char* kDeadlineBudgetSeconds =
    "tunekit_deadline_budget_seconds";
}  // namespace metric

/// Counter for a classified evaluation outcome: "ok" → tunekit_evals_ok_total,
/// "timed-out" → tunekit_evals_timed_out_total, etc. (non-alnum → '_').
Counter& outcome_counter(MetricsRegistry& metrics, std::string_view outcome);

}  // namespace tunekit::obs
