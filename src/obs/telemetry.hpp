#pragma once
// Telemetry: nested tracing spans plus a metrics registry behind one facade.
//
// A span is a named interval with an explicit parent id, forming the tree
//
//   methodology.run
//     ├─ phase.sensitivity ── eval ── worker.rpc ── worker.objective
//     ├─ phase.importance  ── eval ...
//     ├─ phase.partition
//     └─ phase.execution ── search.<name> ── bo.iteration ── eval ── ...
//
// Parents propagate two ways:
//   * implicitly — each thread carries a "current span" (set by ScopedSpan /
//     CurrentSpanScope), and begin_span() defaults its parent to it; or
//   * explicitly — cross-thread and cross-process work passes the parent id
//     by hand (the scheduler hands its batch span to pool threads, the
//     worker protocol carries the rpc span id over the pipe).
//
// Telemetry is DISABLED by default and every layer takes it as a nullable
// pointer: the disabled/null hot path is one branch (guarded by a test to
// cost < 1 µs per evaluation). When enabled, finished spans are moved into a
// bounded in-memory buffer; once full, new spans are counted as dropped
// rather than growing memory during a long tuning run.
//
// Spans measured in another process (the worker reports setup/objective/
// teardown timings relative to its own request handling) are stitched in via
// record_span() with supervisor-side anchoring — see WorkerPool::evaluate.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace tunekit::obs {

/// Span identifier; 0 means "no span".
using SpanId = std::uint64_t;

/// 128-bit trace identifier (W3C trace-context shape); hi == lo == 0 means
/// "no trace". Every root span mints a fresh random one; children inherit.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) { return !(a == b); }
};

/// What crosses a process boundary: which trace, and which remote span the
/// next local span should hang from. The wire form is a W3C-style
/// traceparent header: "00-<32 hex trace id>-<16 hex parent span id>-01".
struct TraceContext {
  TraceId trace;
  SpanId parent = 0;

  bool valid() const { return trace.valid(); }
};

/// "00-<32 hex>-<16 hex>-01" (lower-case hex, zero-padded).
std::string to_traceparent(const TraceContext& context);
/// Parse a traceparent header. Returns nullopt on malformed input, an
/// all-zero trace id, or an unknown version prefix.
std::optional<TraceContext> parse_traceparent(std::string_view header);
/// 32 lower-case hex chars (the Prometheus-exemplar / JSON wire form).
std::string trace_id_hex(const TraceId& trace);
/// 16 lower-case hex chars. Span ids are full 64-bit values, so JSON
/// exports carry them as hex strings — a double-typed JSON number silently
/// collides distinct ids past 2^53.
std::string span_id_hex(SpanId id);

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  /// Trace this span belongs to (inherited from the parent, adopted from a
  /// remote TraceContext, or freshly minted for roots).
  TraceId trace;
  /// Nanoseconds since the Telemetry instance's (steady-clock) epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Dense per-process thread index (stable across Telemetry instances).
  std::uint32_t tid = 0;
  /// 0 = this process; a worker's OS pid for imported worker-side spans.
  std::int64_t pid = 0;
  std::string name;
  std::string category;
};

/// A point annotation attached to a span ("replayed=true", shed decisions…).
/// Events are bounded by the same buffer cap as spans.
struct SpanEvent {
  SpanId span = 0;
  TraceId trace;
  std::uint64_t t_ns = 0;
  std::string name;
  std::string detail;
};

class Telemetry {
 public:
  /// Sentinel parent meaning "use the calling thread's current span".
  static constexpr SpanId kInheritParent = ~SpanId{0};

  Telemetry() = default;  // disabled until enable()
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Shared always-disabled instance for call sites that want a reference.
  static Telemetry& noop();

  void enable(std::size_t max_spans = 1 << 20);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds since this instance's epoch.
  std::uint64_t now_ns() const;

  /// Open a span. Returns 0 (and records nothing) when disabled. The trace
  /// id is inherited from the resolved parent when it is open locally, then
  /// from the thread's ambient trace; a parentless span mints a fresh one.
  SpanId begin_span(std::string_view name, SpanId parent = kInheritParent,
                    std::string_view category = {});
  /// Open a span adopted into a remote trace (the parent span lives in
  /// another process — e.g. the client span named by a traceparent header).
  SpanId begin_span(std::string_view name, const TraceContext& context,
                    std::string_view category = {});
  /// Close a span opened by begin_span(); unknown/zero ids are ignored.
  void end_span(SpanId id);

  /// Record a complete span measured elsewhere (worker-side timings). Returns
  /// the id assigned to it, 0 when disabled. Trace inheritance follows
  /// begin_span(); pass `trace` to pin it explicitly.
  SpanId record_span(std::string_view name, SpanId parent, std::uint64_t start_ns,
                     std::uint64_t dur_ns, std::int64_t pid = 0,
                     std::string_view category = {}, TraceId trace = {});

  /// Attach a point annotation to a span (no-op when disabled or span == 0).
  void add_event(SpanId span, std::string_view name, std::string_view detail = {});

  /// The trace/parent pair to stamp on outgoing requests for `span` (looks
  /// up the open span; falls back to the ambient trace). Invalid when the
  /// span is unknown and no ambient trace is set.
  TraceContext context_of(SpanId span) const;

  /// The calling thread's ambient span (0 if none). Static so cross-layer
  /// code can read/seed it without holding a Telemetry reference.
  static SpanId current_span();
  static SpanId exchange_current_span(SpanId id);
  /// The calling thread's ambient trace (maintained by ScopedSpan; seeded
  /// manually at process-boundary adoption points).
  static TraceId current_trace();
  static TraceId exchange_current_trace(TraceId trace);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Snapshot of finished spans (open spans are not included).
  std::vector<SpanRecord> spans() const;
  /// Snapshot of span events recorded via add_event().
  std::vector<SpanEvent> events() const;
  std::uint64_t dropped_spans() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct OpenSpan {
    SpanRecord record;
  };

  void finish(SpanRecord&& record);
  /// Trace for a new span: open parent's trace → ambient trace → fresh.
  /// Caller must hold mutex_.
  TraceId resolve_trace_locked(SpanId parent) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t epoch_ns_ = 0;
  std::size_t max_spans_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<SpanId, OpenSpan> open_;
  std::vector<SpanRecord> done_;
  std::vector<SpanEvent> events_;
  MetricsRegistry metrics_;
};

/// RAII span. Safe with a null or disabled Telemetry (then a no-op). While
/// alive it is the calling thread's current span, so nested spans inherit it.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Telemetry* telemetry, std::string_view name,
             SpanId parent = Telemetry::kInheritParent, std::string_view category = {});
  /// Adopt a remote trace (traceparent from a request header / wire message).
  ScopedSpan(Telemetry* telemetry, std::string_view name, const TraceContext& context,
             std::string_view category = {});
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }
  /// The trace/span pair to propagate downstream from this span (invalid
  /// when the span recorded nothing — disabled or null telemetry).
  TraceContext context() const { return TraceContext{trace_, id_}; }
  /// Close early (idempotent); also restores the previous current span.
  void end();

 private:
  Telemetry* telemetry_ = nullptr;
  SpanId id_ = 0;
  SpanId saved_ = 0;
  TraceId trace_;
  TraceId saved_trace_;
};

/// Seeds the calling thread's current span (for work handed to another
/// thread: capture the parent id, then open one of these in the worker).
/// Pass the trace too when the parent span may have closed by the time the
/// child opens; while the parent is still open its trace is found directly.
class CurrentSpanScope {
 public:
  explicit CurrentSpanScope(SpanId id) : saved_(Telemetry::exchange_current_span(id)) {}
  CurrentSpanScope(SpanId id, TraceId trace)
      : saved_(Telemetry::exchange_current_span(id)),
        saved_trace_(Telemetry::exchange_current_trace(trace)),
        restore_trace_(true) {}
  ~CurrentSpanScope() {
    Telemetry::exchange_current_span(saved_);
    if (restore_trace_) Telemetry::exchange_current_trace(saved_trace_);
  }
  CurrentSpanScope(const CurrentSpanScope&) = delete;
  CurrentSpanScope& operator=(const CurrentSpanScope&) = delete;

 private:
  SpanId saved_;
  TraceId saved_trace_;
  bool restore_trace_ = false;
};

// Canonical metric names (Prometheus conventions: *_total counters, *_seconds
// histograms, plain gauges). Shared by the instrumented layers and exporters.
namespace metric {
inline constexpr const char* kEvalsStarted = "tunekit_evals_started_total";
inline constexpr const char* kWorkerRestarts = "tunekit_worker_restarts_total";
inline constexpr const char* kEvalsQuarantined = "tunekit_evals_quarantined_total";
inline constexpr const char* kQueueDepth = "tunekit_queue_depth";
inline constexpr const char* kEvalSeconds = "tunekit_eval_seconds";
inline constexpr const char* kGpFitSeconds = "tunekit_gp_fit_seconds";
inline constexpr const char* kAcqArgmaxSeconds = "tunekit_acq_argmax_seconds";
inline constexpr const char* kJournalFsyncSeconds = "tunekit_journal_fsync_seconds";
inline constexpr const char* kFleetNodesUp = "tunekit_fleet_nodes_up";
inline constexpr const char* kFleetSlotsBusy = "tunekit_fleet_slots_busy";
inline constexpr const char* kFleetSteals = "tunekit_fleet_steals_total";
inline constexpr const char* kFleetRedispatches = "tunekit_fleet_redispatches_total";
/// Queue-to-result dispatch latency; per-node variants append "_node_<id>".
inline constexpr const char* kFleetEvalSeconds = "tunekit_fleet_eval_seconds";
// Storage integrity: journal poisoning, segment rotation, salvage.
inline constexpr const char* kStoragePoisoned = "tunekit_storage_poisoned_total";
inline constexpr const char* kStorageSegmentsSealed =
    "tunekit_storage_segments_sealed_total";
inline constexpr const char* kStorageCorruptSegments =
    "tunekit_storage_corrupt_segments_total";
inline constexpr const char* kStorageSalvagedRecords =
    "tunekit_storage_salvaged_records_total";
inline constexpr const char* kStorageLostRecords =
    "tunekit_storage_lost_records_total";
// Fleet circuit breaker: open transitions, currently-open gauge, shed load.
inline constexpr const char* kBreakerOpens = "tunekit_breaker_open_total";
inline constexpr const char* kBreakerNodesOpen = "tunekit_breaker_nodes_open";
inline constexpr const char* kBreakerShed = "tunekit_breaker_shed_total";
// Exactly-once retries: replay-cache hits (a retried request answered from
// the journaled response), client-side retry attempts/exhaustions.
inline constexpr const char* kReplayHits = "tunekit_retry_replayed_total";
inline constexpr const char* kRetryAttempts = "tunekit_retry_attempts_total";
inline constexpr const char* kRetryExhausted = "tunekit_retry_exhausted_total";
// Adaptive admission control: requests shed (by cap or queue delay) and the
// queue-delay / advertised-Retry-After distributions behind those decisions.
inline constexpr const char* kShedRequests = "tunekit_shed_requests_total";
inline constexpr const char* kShedQueueDelay = "tunekit_shed_queue_delay_seconds";
inline constexpr const char* kShedRetryAfter = "tunekit_shed_retry_after_seconds";
// Deadline propagation: budgets rejected before dispatch, expired while
// queued, scheduler loops stopped by budget, and the budget distribution.
inline constexpr const char* kDeadlineRejected = "tunekit_deadline_rejected_total";
inline constexpr const char* kDeadlineExpiredInQueue =
    "tunekit_deadline_expired_queue_total";
inline constexpr const char* kDeadlineStopped = "tunekit_deadline_stopped_total";
inline constexpr const char* kDeadlineBudgetSeconds =
    "tunekit_deadline_budget_seconds";
// Tracing plumbing: spans dropped by the bounded buffer (also surfaced in
// the Chrome export), HTTP request latency (carries trace-id exemplars).
inline constexpr const char* kDroppedSpans = "tunekit_dropped_spans_total";
inline constexpr const char* kHttpRequestSeconds = "tunekit_http_request_seconds";
// Fleet clock sync: |estimated offset| per node is exported as a gauge with
// the "tunekit_fleet_clock_offset_seconds_node_<id>" suffix convention.
inline constexpr const char* kFleetClockOffsetSeconds =
    "tunekit_fleet_clock_offset_seconds";
// Online structure learning: affinity refits, adopted repartitions, refit
// latency, and the active-partition shape (block count / largest block /
// observations since the last repartition) surfaced by `tunekit_cli top`.
inline constexpr const char* kStructureRefits = "tunekit_structure_refits_total";
inline constexpr const char* kStructureRepartitions =
    "tunekit_structure_repartitions_total";
inline constexpr const char* kStructureRefitSeconds =
    "tunekit_structure_refit_seconds";
inline constexpr const char* kStructureBlocks = "tunekit_structure_blocks";
inline constexpr const char* kStructureLargestBlock =
    "tunekit_structure_largest_block";
inline constexpr const char* kStructureEvalsSinceRepartition =
    "tunekit_structure_evals_since_repartition";
}  // namespace metric

/// Counter for a classified evaluation outcome: "ok" → tunekit_evals_ok_total,
/// "timed-out" → tunekit_evals_timed_out_total, etc. (non-alnum → '_').
Counter& outcome_counter(MetricsRegistry& metrics, std::string_view outcome);

}  // namespace tunekit::obs
