#pragma once
// FlightRecorder: a bounded ring of structured events kept per session — the
// black box that survives until something goes wrong. Layers append cheap
// one-line events (state transitions, retries, replay hits, shed/breaker
// decisions, journal rotations); the ring overwrites its oldest entry when
// full, so a quiet session costs a few KB and a busy one never grows.
//
// Two consumers: GET /v1/sessions/{id}/debug serves to_json() on demand, and
// SessionManager dumps the whole ring into the log when a session 503s or
// its store is poisoned — the events leading up to the failure are exactly
// what the ring still holds.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::obs {

class FlightRecorder {
 public:
  struct Event {
    /// Monotonic sequence number (1-based; total_ - ring position).
    std::uint64_t seq = 0;
    /// Steady-clock nanoseconds (process epoch; comparable across events).
    std::uint64_t t_ns = 0;
    /// Short machine-readable kind: "create", "resume", "ask", "tell",
    /// "replay", "shed", "breaker", "rotate", "poison", "evict", "close"…
    std::string kind;
    /// Free-form human detail ("eval_id=3 outcome=ok", "segment 4 sealed").
    std::string detail;
    /// Trace active when the event was recorded (invalid when none).
    TraceId trace;
  };

  explicit FlightRecorder(std::size_t capacity = 256);

  /// Append one event; the calling thread's ambient trace is attached.
  void record(std::string_view kind, std::string_view detail = {});

  /// Events oldest-first (at most `capacity` of them).
  std::vector<Event> dump() const;

  /// Events ever recorded (>= dump().size(); the difference was overwritten).
  std::uint64_t total() const;

  /// {"events": [{seq, t_ns, kind, detail, trace_id?}...],
  ///  "recorded_total": n, "capacity": n}
  json::Value to_json() const;

  /// One line per event, oldest first — what gets dumped into the log.
  std::string format_dump() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;      ///< grows to capacity_, then cycles
  std::size_t next_ = 0;         ///< ring slot the next event lands in
  std::uint64_t total_ = 0;
};

}  // namespace tunekit::obs
