#include "obs/export.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

namespace tunekit::obs {

namespace {

// Prometheus float formatting: shortest round-trippable representation is
// overkill here; %.17g round-trips doubles and %g keeps integers clean.
std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    // Try a shorter form that still round-trips.
    char short_buf[64];
    std::snprintf(short_buf, sizeof(short_buf), "%g", v);
    std::sscanf(short_buf, "%lg", &parsed);
    if (parsed == v) return short_buf;
  }
  return buf;
}

// OpenMetrics exemplar suffix for one bucket line, or "" when none recorded.
std::string exemplar_suffix(const Histogram& histogram, std::size_t bucket) {
  const Histogram::Exemplar ex = histogram.exemplar(bucket);
  if (ex.trace_hex.empty()) return "";
  return " # {trace_id=\"" + escape_label_value(ex.trace_hex) + "\"} " +
         format_number(ex.value);
}

void append_histogram(std::ostringstream& out, const std::string& raw_name,
                      const std::string& help, const Histogram& histogram) {
  const std::string name = sanitize_metric_name(raw_name);
  if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << " histogram\n";
  const auto& bounds = histogram.bounds();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += histogram.bucket_count(i);
    out << name << "_bucket{le=\"" << format_number(bounds[i]) << "\"} " << cumulative
        << exemplar_suffix(histogram, i) << '\n';
  }
  cumulative += histogram.bucket_count(bounds.size());
  out << name << "_bucket{le=\"+Inf\"} " << cumulative
      << exemplar_suffix(histogram, bounds.size()) << '\n';
  out << name << "_sum " << format_number(histogram.sum()) << '\n';
  out << name << "_count " << histogram.count() << '\n';
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

json::Value chrome_trace(const Telemetry& telemetry) {
  const std::int64_t self_pid = static_cast<std::int64_t>(::getpid());
  json::Array events;
  for (const SpanRecord& span : telemetry.spans()) {
    json::Object event;
    event["name"] = span.name;
    event["cat"] = span.category.empty() ? std::string("tunekit") : span.category;
    event["ph"] = "X";
    // trace_event timestamps are microseconds; keep sub-microsecond precision
    // as a fraction (Perfetto accepts non-integer ts/dur).
    event["ts"] = static_cast<double>(span.start_ns) / 1e3;
    event["dur"] = static_cast<double>(span.dur_ns) / 1e3;
    event["pid"] = span.pid != 0 ? span.pid : self_pid;
    event["tid"] = static_cast<std::size_t>(span.tid);
    json::Object args;
    // Hex strings, not numbers: span ids use the full 64 bits and a JSON
    // double would collide distinct ids past 2^53.
    args["span"] = span_id_hex(span.id);
    if (span.parent != 0) args["parent"] = span_id_hex(span.parent);
    if (span.trace.valid()) args["trace_id"] = trace_id_hex(span.trace);
    event["args"] = json::Value(std::move(args));
    events.push_back(json::Value(std::move(event)));
  }
  json::Object doc;
  doc["traceEvents"] = json::Value(std::move(events));
  doc["displayTimeUnit"] = "ms";
  if (telemetry.dropped_spans() > 0) {
    doc["tunekit_dropped_spans"] = static_cast<std::size_t>(telemetry.dropped_spans());
  }
  return json::Value(std::move(doc));
}

void write_chrome_trace(const Telemetry& telemetry, const std::string& path) {
  json::save_atomic(path, chrome_trace(telemetry), /*indent=*/-1);
}

std::string prometheus_text(const MetricsRegistry& metrics) {
  std::ostringstream out;
  for (const auto& [raw_name, counter] : metrics.counters()) {
    const std::string name = sanitize_metric_name(raw_name);
    const std::string help = metrics.help(raw_name);
    if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [raw_name, gauge] : metrics.gauges()) {
    const std::string name = sanitize_metric_name(raw_name);
    const std::string help = metrics.help(raw_name);
    if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << format_number(gauge->value()) << '\n';
  }
  for (const auto& [raw_name, histogram] : metrics.histograms()) {
    append_histogram(out, raw_name, metrics.help(raw_name), *histogram);
  }
  return out.str();
}

std::string prometheus_text(const Telemetry& telemetry) {
  std::string out = prometheus_text(telemetry.metrics());
  // The span-buffer drop counter lives on Telemetry, not in the registry —
  // emit it here so saturation of the trace buffer is visible to scrapes.
  out += "# HELP ";
  out += metric::kDroppedSpans;
  out += " Spans discarded because the bounded trace buffer was full.\n# TYPE ";
  out += metric::kDroppedSpans;
  out += " counter\n";
  out += metric::kDroppedSpans;
  out += ' ';
  out += std::to_string(telemetry.dropped_spans());
  out += '\n';
  return out;
}

void write_prometheus_text(const MetricsRegistry& metrics, const std::string& path) {
  // Reuse the JSON module's atomic-write behavior by writing via a temp file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open " + tmp + " for writing");
  const std::string text = prometheus_text(metrics);
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed writing metrics to " + path);
  }
}

json::Value metrics_to_json(const MetricsRegistry& metrics) {
  json::Object counters;
  for (const auto& [name, counter] : metrics.counters()) {
    counters[name] = static_cast<std::size_t>(counter->value());
  }
  json::Object gauges;
  for (const auto& [name, gauge] : metrics.gauges()) {
    gauges[name] = gauge->value();
  }
  json::Object histograms;
  for (const auto& [name, histogram] : metrics.histograms()) {
    json::Array bounds;
    for (double b : histogram->bounds()) bounds.push_back(b);
    json::Array counts;
    for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
      counts.push_back(static_cast<std::size_t>(histogram->bucket_count(i)));
    }
    json::Object h;
    h["bounds"] = json::Value(std::move(bounds));
    h["counts"] = json::Value(std::move(counts));
    h["sum"] = histogram->sum();
    h["count"] = static_cast<std::size_t>(histogram->count());
    histograms[name] = json::Value(std::move(h));
  }
  json::Object doc;
  doc["counters"] = json::Value(std::move(counters));
  doc["gauges"] = json::Value(std::move(gauges));
  doc["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(doc));
}

json::Value traces_json(const Telemetry& telemetry, std::size_t max_traces) {
  const std::vector<SpanRecord> spans = telemetry.spans();
  const std::vector<SpanEvent> events = telemetry.events();

  // Group finished spans by trace id, remembering arrival order so "recent"
  // means "trace whose spans finished last".
  struct Tree {
    std::vector<const SpanRecord*> spans;
    std::size_t last_seen = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Tree> trees;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (!span.trace.valid()) continue;
    Tree& tree = trees[{span.trace.hi, span.trace.lo}];
    tree.spans.push_back(&span);
    tree.last_seen = i;
  }

  std::unordered_map<std::uint64_t, std::vector<const SpanEvent*>> events_by_span;
  for (const SpanEvent& event : events) events_by_span[event.span].push_back(&event);

  // Newest-first ordering by the index of each trace's last finished span.
  std::vector<std::pair<std::size_t, const decltype(trees)::value_type*>> order;
  order.reserve(trees.size());
  for (const auto& entry : trees) order.emplace_back(entry.second.last_seen, &entry);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  json::Array out_traces;
  for (const auto& [last_seen, entry] : order) {
    (void)last_seen;
    if (out_traces.size() >= max_traces) break;
    const Tree& tree = entry->second;
    // A tree is complete when its root (a span whose parent is not in the
    // tree) has finished; open roots are simply absent from spans().
    std::unordered_map<std::uint64_t, bool> in_tree;
    for (const SpanRecord* span : tree.spans) in_tree[span->id] = true;
    const SpanRecord* root = nullptr;
    std::size_t root_count = 0;
    for (const SpanRecord* span : tree.spans) {
      if (span->parent == 0 || !in_tree.count(span->parent)) {
        root = span;
        ++root_count;
      }
    }
    if (root == nullptr || root_count != 1) continue;  // incomplete or forest

    json::Array out_spans;
    for (const SpanRecord* span : tree.spans) {
      json::Object s;
      s["id"] = span_id_hex(span->id);
      if (span->parent != 0) s["parent"] = span_id_hex(span->parent);
      s["name"] = span->name;
      if (!span->category.empty()) s["cat"] = span->category;
      s["start_ns"] = static_cast<std::size_t>(span->start_ns);
      s["dur_ns"] = static_cast<std::size_t>(span->dur_ns);
      if (span->pid != 0) s["pid"] = span->pid;
      const auto ev_it = events_by_span.find(span->id);
      if (ev_it != events_by_span.end()) {
        json::Array out_events;
        for (const SpanEvent* event : ev_it->second) {
          json::Object e;
          e["name"] = event->name;
          if (!event->detail.empty()) e["detail"] = event->detail;
          e["t_ns"] = static_cast<std::size_t>(event->t_ns);
          out_events.push_back(json::Value(std::move(e)));
        }
        s["events"] = json::Value(std::move(out_events));
      }
      out_spans.push_back(json::Value(std::move(s)));
    }
    json::Object t;
    t["trace_id"] = trace_id_hex(root->trace);
    t["root"] = root->name;
    t["start_ns"] = static_cast<std::size_t>(root->start_ns);
    t["dur_ns"] = static_cast<std::size_t>(root->dur_ns);
    t["span_count"] = out_spans.size();
    t["spans"] = json::Value(std::move(out_spans));
    out_traces.push_back(json::Value(std::move(t)));
  }

  json::Object doc;
  doc["traces"] = json::Value(std::move(out_traces));
  doc["dropped_spans"] = static_cast<std::size_t>(telemetry.dropped_spans());
  return json::Value(std::move(doc));
}

}  // namespace tunekit::obs
