#include "obs/export.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tunekit::obs {

namespace {

// Prometheus float formatting: shortest round-trippable representation is
// overkill here; %.17g round-trips doubles and %g keeps integers clean.
std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lg", &parsed);
  if (parsed == v) {
    // Try a shorter form that still round-trips.
    char short_buf[64];
    std::snprintf(short_buf, sizeof(short_buf), "%g", v);
    std::sscanf(short_buf, "%lg", &parsed);
    if (parsed == v) return short_buf;
  }
  return buf;
}

}  // namespace

json::Value chrome_trace(const Telemetry& telemetry) {
  const std::int64_t self_pid = static_cast<std::int64_t>(::getpid());
  json::Array events;
  for (const SpanRecord& span : telemetry.spans()) {
    json::Object event;
    event["name"] = span.name;
    event["cat"] = span.category.empty() ? std::string("tunekit") : span.category;
    event["ph"] = "X";
    // trace_event timestamps are microseconds; keep sub-microsecond precision
    // as a fraction (Perfetto accepts non-integer ts/dur).
    event["ts"] = static_cast<double>(span.start_ns) / 1e3;
    event["dur"] = static_cast<double>(span.dur_ns) / 1e3;
    event["pid"] = span.pid != 0 ? span.pid : self_pid;
    event["tid"] = static_cast<std::size_t>(span.tid);
    json::Object args;
    args["span"] = static_cast<std::size_t>(span.id);
    if (span.parent != 0) args["parent"] = static_cast<std::size_t>(span.parent);
    event["args"] = json::Value(std::move(args));
    events.push_back(json::Value(std::move(event)));
  }
  json::Object doc;
  doc["traceEvents"] = json::Value(std::move(events));
  doc["displayTimeUnit"] = "ms";
  if (telemetry.dropped_spans() > 0) {
    doc["tunekit_dropped_spans"] = static_cast<std::size_t>(telemetry.dropped_spans());
  }
  return json::Value(std::move(doc));
}

void write_chrome_trace(const Telemetry& telemetry, const std::string& path) {
  json::save_atomic(path, chrome_trace(telemetry), /*indent=*/-1);
}

std::string prometheus_text(const MetricsRegistry& metrics) {
  std::ostringstream out;
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string help = metrics.help(name);
    if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    const std::string help = metrics.help(name);
    if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << format_number(gauge->value()) << '\n';
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const std::string help = metrics.help(name);
    if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
    out << "# TYPE " << name << " histogram\n";
    const auto& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += histogram->bucket_count(i);
      out << name << "_bucket{le=\"" << format_number(bounds[i]) << "\"} " << cumulative
          << '\n';
    }
    cumulative += histogram->bucket_count(bounds.size());
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << name << "_sum " << format_number(histogram->sum()) << '\n';
    out << name << "_count " << histogram->count() << '\n';
  }
  return out.str();
}

void write_prometheus_text(const MetricsRegistry& metrics, const std::string& path) {
  // Reuse the JSON module's atomic-write behavior by writing via a temp file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open " + tmp + " for writing");
  const std::string text = prometheus_text(metrics);
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed writing metrics to " + path);
  }
}

json::Value metrics_to_json(const MetricsRegistry& metrics) {
  json::Object counters;
  for (const auto& [name, counter] : metrics.counters()) {
    counters[name] = static_cast<std::size_t>(counter->value());
  }
  json::Object gauges;
  for (const auto& [name, gauge] : metrics.gauges()) {
    gauges[name] = gauge->value();
  }
  json::Object histograms;
  for (const auto& [name, histogram] : metrics.histograms()) {
    json::Array bounds;
    for (double b : histogram->bounds()) bounds.push_back(b);
    json::Array counts;
    for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
      counts.push_back(static_cast<std::size_t>(histogram->bucket_count(i)));
    }
    json::Object h;
    h["bounds"] = json::Value(std::move(bounds));
    h["counts"] = json::Value(std::move(counts));
    h["sum"] = histogram->sum();
    h["count"] = static_cast<std::size_t>(histogram->count());
    histograms[name] = json::Value(std::move(h));
  }
  json::Object doc;
  doc["counters"] = json::Value(std::move(counters));
  doc["gauges"] = json::Value(std::move(gauges));
  doc["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(doc));
}

}  // namespace tunekit::obs
