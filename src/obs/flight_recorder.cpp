#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace tunekit::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 8)) {}

void FlightRecorder::record(std::string_view kind, std::string_view detail) {
  Event event;
  event.t_ns = steady_now_ns();
  event.kind.assign(kind.data(), kind.size());
  event.detail.assign(detail.data(), detail.size());
  event.trace = Telemetry::current_trace();
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Event> FlightRecorder::dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ points at the oldest entry once the ring has cycled.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::uint64_t FlightRecorder::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

json::Value FlightRecorder::to_json() const {
  json::Array events;
  for (const Event& event : dump()) {
    json::Object e;
    e["seq"] = static_cast<std::size_t>(event.seq);
    e["t_ns"] = static_cast<std::size_t>(event.t_ns);
    e["kind"] = event.kind;
    if (!event.detail.empty()) e["detail"] = event.detail;
    if (event.trace.valid()) e["trace_id"] = trace_id_hex(event.trace);
    events.push_back(json::Value(std::move(e)));
  }
  json::Object doc;
  doc["events"] = json::Value(std::move(events));
  doc["recorded_total"] = static_cast<std::size_t>(total());
  doc["capacity"] = capacity_;
  return json::Value(std::move(doc));
}

std::string FlightRecorder::format_dump() const {
  std::ostringstream out;
  for (const Event& event : dump()) {
    out << "  #" << event.seq << ' ' << event.kind;
    if (!event.detail.empty()) out << ' ' << event.detail;
    if (event.trace.valid()) out << " trace=" << trace_id_hex(event.trace);
    out << '\n';
  }
  return out.str();
}

}  // namespace tunekit::obs
