#include "obs/telemetry.hpp"

#include <cctype>
#include <chrono>

namespace tunekit::obs {

namespace {

thread_local SpanId t_current_span = 0;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Dense thread index for trace readability (0 = first thread seen).
std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

Telemetry& Telemetry::noop() {
  static Telemetry instance;
  return instance;
}

void Telemetry::enable(std::size_t max_spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    epoch_ns_ = steady_now_ns();
    done_.reserve(std::min<std::size_t>(max_spans, 4096));
  }
  max_spans_ = max_spans;
  enabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t Telemetry::now_ns() const {
  const std::uint64_t now = steady_now_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

SpanId Telemetry::begin_span(std::string_view name, SpanId parent,
                             std::string_view category) {
  if (!enabled()) return 0;
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent = (parent == kInheritParent) ? t_current_span : parent;
  record.start_ns = now_ns();
  record.tid = this_thread_index();
  record.name.assign(name.data(), name.size());
  record.category.assign(category.data(), category.size());
  const SpanId id = record.id;
  std::lock_guard<std::mutex> lock(mutex_);
  open_.emplace(id, OpenSpan{std::move(record)});
  return id;
}

void Telemetry::end_span(SpanId id) {
  if (id == 0 || !enabled()) return;
  const std::uint64_t end_ns = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  SpanRecord record = std::move(it->second.record);
  open_.erase(it);
  record.dur_ns = end_ns >= record.start_ns ? end_ns - record.start_ns : 0;
  if (done_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  done_.push_back(std::move(record));
}

SpanId Telemetry::record_span(std::string_view name, SpanId parent,
                              std::uint64_t start_ns, std::uint64_t dur_ns,
                              std::int64_t pid, std::string_view category) {
  if (!enabled()) return 0;
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent = (parent == kInheritParent) ? t_current_span : parent;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.tid = this_thread_index();
  record.pid = pid;
  record.name.assign(name.data(), name.size());
  record.category.assign(category.data(), category.size());
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const SpanId id = record.id;
  done_.push_back(std::move(record));
  return id;
}

SpanId Telemetry::current_span() { return t_current_span; }

SpanId Telemetry::exchange_current_span(SpanId id) {
  const SpanId previous = t_current_span;
  t_current_span = id;
  return previous;
}

std::vector<SpanRecord> Telemetry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

ScopedSpan::ScopedSpan(Telemetry* telemetry, std::string_view name, SpanId parent,
                       std::string_view category) {
  if (telemetry == nullptr || !telemetry->enabled()) return;
  telemetry_ = telemetry;
  id_ = telemetry->begin_span(name, parent, category);
  saved_ = Telemetry::exchange_current_span(id_);
}

void ScopedSpan::end() {
  if (telemetry_ == nullptr) return;
  Telemetry::exchange_current_span(saved_);
  telemetry_->end_span(id_);
  telemetry_ = nullptr;
  id_ = 0;
}

Counter& outcome_counter(MetricsRegistry& metrics, std::string_view outcome) {
  std::string name = "tunekit_evals_";
  for (char c : outcome) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  name += "_total";
  return metrics.counter(name);
}

}  // namespace tunekit::obs
