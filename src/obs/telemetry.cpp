#include "obs/telemetry.hpp"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <random>

namespace tunekit::obs {

namespace {

thread_local SpanId t_current_span = 0;
thread_local TraceId t_current_trace = {};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Dense thread index for trace readability (0 = first thread seen).
std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Process-unique nonzero random 64-bit values. Span ids live in trace trees
// that merge records from several processes (client, server, fleet nodes),
// so sequential-from-1 ids would collide across processes; a random base
// plus a random trace-id generator makes cross-process collisions
// negligible.
std::uint64_t random_u64() {
  static std::atomic<std::uint64_t> state = [] {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<std::uint64_t>(::getpid()) << 17;
    seed ^= steady_now_ns();
    return seed;
  }();
  std::uint64_t s = state.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  return splitmix64(s);
}

TraceId fresh_trace_id() {
  TraceId trace;
  while (!trace.valid()) {
    trace.hi = random_u64();
    trace.lo = random_u64();
  }
  return trace;
}

void append_hex16(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  out.append(buf, 16);
}

bool parse_hex(std::string_view hex, std::uint64_t& out) {
  out = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

}  // namespace

std::string to_traceparent(const TraceContext& context) {
  std::string out = "00-";
  append_hex16(out, context.trace.hi);
  append_hex16(out, context.trace.lo);
  out += '-';
  append_hex16(out, context.parent);
  out += "-01";
  return out;
}

std::optional<TraceContext> parse_traceparent(std::string_view header) {
  // "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex flags = 55 chars.
  if (header.size() != 55) return std::nullopt;
  if (header.substr(0, 3) != "00-" || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  TraceContext context;
  std::uint64_t flags = 0;
  if (!parse_hex(header.substr(3, 16), context.trace.hi) ||
      !parse_hex(header.substr(19, 16), context.trace.lo) ||
      !parse_hex(header.substr(36, 16), context.parent) ||
      !parse_hex(header.substr(53, 2), flags)) {
    return std::nullopt;
  }
  if (!context.trace.valid()) return std::nullopt;
  return context;
}

std::string trace_id_hex(const TraceId& trace) {
  std::string out;
  out.reserve(32);
  append_hex16(out, trace.hi);
  append_hex16(out, trace.lo);
  return out;
}

std::string span_id_hex(SpanId id) {
  std::string out;
  out.reserve(16);
  append_hex16(out, id);
  return out;
}

Telemetry& Telemetry::noop() {
  static Telemetry instance;
  return instance;
}

void Telemetry::enable(std::size_t max_spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    epoch_ns_ = steady_now_ns();
    done_.reserve(std::min<std::size_t>(max_spans, 4096));
    // Random id base: ids from different processes land in the same trace
    // tree, so they must not all count up from 1. Clear the top bit so a
    // long run can never wrap into the kInheritParent sentinel.
    next_id_.store((random_u64() & 0x7fffffffffffffffull) | 1,
                   std::memory_order_relaxed);
  }
  max_spans_ = max_spans;
  enabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t Telemetry::now_ns() const {
  const std::uint64_t now = steady_now_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

TraceId Telemetry::resolve_trace_locked(SpanId parent) const {
  if (parent != 0) {
    const auto it = open_.find(parent);
    if (it != open_.end()) return it->second.record.trace;
  }
  if (t_current_trace.valid()) return t_current_trace;
  return parent != 0 ? TraceId{} : fresh_trace_id();
}

SpanId Telemetry::begin_span(std::string_view name, SpanId parent,
                             std::string_view category) {
  if (!enabled()) return 0;
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent = (parent == kInheritParent) ? t_current_span : parent;
  record.start_ns = now_ns();
  record.tid = this_thread_index();
  record.name.assign(name.data(), name.size());
  record.category.assign(category.data(), category.size());
  const SpanId id = record.id;
  std::lock_guard<std::mutex> lock(mutex_);
  record.trace = resolve_trace_locked(record.parent);
  if (!record.trace.valid()) record.trace = fresh_trace_id();
  open_.emplace(id, OpenSpan{std::move(record)});
  return id;
}

SpanId Telemetry::begin_span(std::string_view name, const TraceContext& context,
                             std::string_view category) {
  if (!enabled()) return 0;
  if (!context.valid()) return begin_span(name, context.parent, category);
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent = context.parent;
  record.trace = context.trace;
  record.start_ns = now_ns();
  record.tid = this_thread_index();
  record.name.assign(name.data(), name.size());
  record.category.assign(category.data(), category.size());
  const SpanId id = record.id;
  std::lock_guard<std::mutex> lock(mutex_);
  open_.emplace(id, OpenSpan{std::move(record)});
  return id;
}

void Telemetry::end_span(SpanId id) {
  if (id == 0 || !enabled()) return;
  const std::uint64_t end_ns = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  SpanRecord record = std::move(it->second.record);
  open_.erase(it);
  record.dur_ns = end_ns >= record.start_ns ? end_ns - record.start_ns : 0;
  if (done_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  done_.push_back(std::move(record));
}

SpanId Telemetry::record_span(std::string_view name, SpanId parent,
                              std::uint64_t start_ns, std::uint64_t dur_ns,
                              std::int64_t pid, std::string_view category,
                              TraceId trace) {
  if (!enabled()) return 0;
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent = (parent == kInheritParent) ? t_current_span : parent;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.tid = this_thread_index();
  record.pid = pid;
  record.name.assign(name.data(), name.size());
  record.category.assign(category.data(), category.size());
  std::lock_guard<std::mutex> lock(mutex_);
  record.trace = trace.valid() ? trace : resolve_trace_locked(record.parent);
  if (!record.trace.valid()) record.trace = fresh_trace_id();
  if (done_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const SpanId id = record.id;
  done_.push_back(std::move(record));
  return id;
}

void Telemetry::add_event(SpanId span, std::string_view name,
                          std::string_view detail) {
  if (span == 0 || !enabled()) return;
  SpanEvent event;
  event.span = span;
  event.t_ns = now_ns();
  event.name.assign(name.data(), name.size());
  event.detail.assign(detail.data(), detail.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_.find(span);
  event.trace = it != open_.end() ? it->second.record.trace : t_current_trace;
  if (events_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

TraceContext Telemetry::context_of(SpanId span) const {
  TraceContext context;
  context.parent = span;
  if (span != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = open_.find(span);
    if (it != open_.end()) {
      context.trace = it->second.record.trace;
      return context;
    }
  }
  context.trace = t_current_trace;
  return context;
}

SpanId Telemetry::current_span() { return t_current_span; }

SpanId Telemetry::exchange_current_span(SpanId id) {
  const SpanId previous = t_current_span;
  t_current_span = id;
  return previous;
}

TraceId Telemetry::current_trace() { return t_current_trace; }

TraceId Telemetry::exchange_current_trace(TraceId trace) {
  const TraceId previous = t_current_trace;
  t_current_trace = trace;
  return previous;
}

std::vector<SpanRecord> Telemetry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::vector<SpanEvent> Telemetry::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

ScopedSpan::ScopedSpan(Telemetry* telemetry, std::string_view name, SpanId parent,
                       std::string_view category) {
  if (telemetry == nullptr || !telemetry->enabled()) return;
  telemetry_ = telemetry;
  id_ = telemetry->begin_span(name, parent, category);
  trace_ = telemetry->context_of(id_).trace;
  saved_ = Telemetry::exchange_current_span(id_);
  saved_trace_ = Telemetry::exchange_current_trace(trace_);
}

ScopedSpan::ScopedSpan(Telemetry* telemetry, std::string_view name,
                       const TraceContext& context, std::string_view category) {
  if (telemetry == nullptr || !telemetry->enabled()) return;
  telemetry_ = telemetry;
  id_ = telemetry->begin_span(name, context, category);
  trace_ = telemetry->context_of(id_).trace;
  saved_ = Telemetry::exchange_current_span(id_);
  saved_trace_ = Telemetry::exchange_current_trace(trace_);
}

void ScopedSpan::end() {
  if (telemetry_ == nullptr) return;
  Telemetry::exchange_current_span(saved_);
  Telemetry::exchange_current_trace(saved_trace_);
  telemetry_->end_span(id_);
  telemetry_ = nullptr;
  id_ = 0;
}

Counter& outcome_counter(MetricsRegistry& metrics, std::string_view outcome) {
  std::string name = "tunekit_evals_";
  for (char c : outcome) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  name += "_total";
  return metrics.counter(name);
}

}  // namespace tunekit::obs
