#pragma once
// Lock-cheap metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order:
//   1. Observation is wait-free: counters and gauges are single relaxed
//      atomics, histogram observe() is one binary search plus two relaxed
//      atomic adds (the sum uses a CAS loop, uncontended in practice).
//   2. References returned by the registry are stable for its lifetime, so
//      hot paths resolve a metric by name once and then only touch atomics.
//   3. Export (Prometheus text, JSON snapshot) tolerates concurrent
//      observation — readers may see a histogram whose bucket counts are a
//      line behind its total count, which is the usual Prometheus contract.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and is expected
// at setup time, not per evaluation.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tunekit::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending upper bounds; values above
/// the last bound land in an implicit +inf overflow bucket, so there are
/// bounds.size() + 1 buckets in total.
class Histogram {
 public:
  /// One sampled observation kept per bucket for the OpenMetrics exemplar
  /// syntax: the latest value that landed in the bucket plus the trace it
  /// belonged to (32 hex chars; empty = no exemplar recorded).
  struct Exemplar {
    double value = 0.0;
    std::string trace_hex;
  };

  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  /// observe() plus exemplar capture. Taking a short mutex, this is meant
  /// for per-request latency observations, not per-iteration hot loops.
  void observe_with_exemplar(double v, const std::string& trace_hex);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the +inf overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  /// Exemplar for bucket i (empty trace_hex when none was recorded).
  Exemplar exemplar(std::size_t i) const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank — the histogram_quantile() convention.
  /// The first bucket interpolates from 0; ranks in the overflow bucket clamp
  /// to the last finite bound. Returns NaN for an empty histogram.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex exemplar_mutex_;
  std::vector<Exemplar> exemplars_;  ///< lazily sized on first capture
};

/// Bucket bounds suited to latencies from microseconds to minutes.
std::vector<double> default_time_buckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime. `help` is kept from the first registration.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` is used only when the histogram does not exist yet; empty means
  /// default_time_buckets().
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {},
                       const std::string& help = "");

  std::string help(const std::string& name) const;

  /// Stable-name snapshots for exporters (pointers stay valid, values live).
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace tunekit::obs
