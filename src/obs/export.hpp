#pragma once
// Telemetry exporters: Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev), Prometheus text exposition, a JSON metrics
// snapshot (the shape journaled into SessionStore "metrics" records), and a
// trace-tree JSON view (what GET /v1/debug/traces serves).

#include <string>

#include "common/json.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::obs {

/// Chrome trace_event "JSON object format": {"traceEvents": [...]} where every
/// span becomes a complete "X" event with microsecond ts/dur. Worker-side
/// spans carry their worker pid; supervisor spans use the supervisor pid.
json::Value chrome_trace(const Telemetry& telemetry);

/// Write chrome_trace() to `path` (atomically, via a temp file + rename).
void write_chrome_trace(const Telemetry& telemetry, const std::string& path);

/// Prometheus text exposition format (# HELP / # TYPE, histogram _bucket
/// cumulative counts with le labels, _sum, _count). Metric names are
/// sanitized, label values escaped, and histogram buckets carry OpenMetrics
/// exemplars ("# {trace_id=\"...\"} v") when one was recorded.
std::string prometheus_text(const MetricsRegistry& metrics);
/// Same, plus telemetry-level series the registry cannot see (the span
/// buffer's tunekit_dropped_spans_total).
std::string prometheus_text(const Telemetry& telemetry);

void write_prometheus_text(const MetricsRegistry& metrics, const std::string& path);

/// Valid Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid chars
/// become '_', a leading digit gets a '_' prefix, empty becomes "_".
std::string sanitize_metric_name(std::string_view name);

/// Escape a label value for the text exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string escape_label_value(std::string_view value);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"bounds": [...],
/// "counts": [...], "sum": s, "count": n}}}. Counts has bounds.size()+1
/// entries (last = overflow bucket).
json::Value metrics_to_json(const MetricsRegistry& metrics);

/// Recent completed trace trees, newest first:
/// {"traces": [{"trace_id": hex, "root": name-of-root, "start_ns": n,
///   "dur_ns": n, "spans": [{id, parent, name, cat, start_ns, dur_ns, pid,
///   "events": [...]}...]}], "dropped_spans": n}.
/// A trace is "completed" once its spans are in the done buffer; trees still
/// missing their root (open spans) are skipped. At most `max_traces` trees.
json::Value traces_json(const Telemetry& telemetry, std::size_t max_traces = 32);

}  // namespace tunekit::obs
