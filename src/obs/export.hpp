#pragma once
// Telemetry exporters: Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev), Prometheus text exposition, and a JSON metrics
// snapshot (the shape journaled into SessionStore "metrics" records).

#include <string>

#include "common/json.hpp"
#include "obs/telemetry.hpp"

namespace tunekit::obs {

/// Chrome trace_event "JSON object format": {"traceEvents": [...]} where every
/// span becomes a complete "X" event with microsecond ts/dur. Worker-side
/// spans carry their worker pid; supervisor spans use the supervisor pid.
json::Value chrome_trace(const Telemetry& telemetry);

/// Write chrome_trace() to `path` (atomically, via a temp file + rename).
void write_chrome_trace(const Telemetry& telemetry, const std::string& path);

/// Prometheus text exposition format (# HELP / # TYPE, histogram _bucket
/// cumulative counts with le labels, _sum, _count).
std::string prometheus_text(const MetricsRegistry& metrics);

void write_prometheus_text(const MetricsRegistry& metrics, const std::string& path);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"bounds": [...],
/// "counts": [...], "sum": s, "count": n}}}. Counts has bounds.size()+1
/// entries (last = overflow bucket).
json::Value metrics_to_json(const MetricsRegistry& metrics);

}  // namespace tunekit::obs
