#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace tunekit::obs {

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram bounds must be ascending");
  }
  for (double b : bounds_) {
    if (!std::isfinite(b)) throw std::invalid_argument("Histogram bounds must be finite");
  }
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe_with_exemplar(double v, const std::string& trace_hex) {
  observe(v);
  if (std::isnan(v) || trace_hex.empty()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_.empty()) exemplars_.resize(buckets_.size());
  exemplars_[bucket].value = v;
  exemplars_[bucket].trace_hex = trace_hex;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

Histogram::Exemplar Histogram::exemplar(std::size_t i) const {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (i >= exemplars_.size()) return {};
  return exemplars_[i];
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const double total = static_cast<double>(count());
  if (total == 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (bounds_.empty()) return std::numeric_limits<double>::quiet_NaN();

  const double rank = q * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_count(i));
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket: clamp
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - cumulative) / in_bucket;
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::vector<double> default_time_buckets() {
  return {1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
          0.1,  0.25, 0.5,  1.0,  2.5,  5.0,  10.0, 30.0, 60.0, 300.0};
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
    if (!help.empty()) help_[name] = help;
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    if (!help.empty()) help_[name] = help;
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? default_time_buckets()
                                                      : std::move(bounds));
    if (!help.empty()) help_[name] = help;
  }
  return *slot;
}

std::string MetricsRegistry::help(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

}  // namespace tunekit::obs
